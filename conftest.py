"""Make the in-tree package importable when it is not installed.

Allows ``pytest tests/`` and ``pytest benchmarks/`` to run straight from a
source checkout (e.g. on machines where an editable install is unavailable
because the ``wheel`` package is missing offline).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
