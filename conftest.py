"""Make the in-tree package importable when it is not installed.

Allows ``pytest tests/`` and ``pytest benchmarks/`` to run straight from a
source checkout (e.g. on machines where an editable install is unavailable
because the ``wheel`` package is missing offline).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Register the benchmark smoke-mode flag (must live in an initial conftest).

    ``--quick`` forces the perf-kernel benchmark into smoke mode: tiny
    problem sizes, correctness assertions only, no timing thresholds.  The
    same smoke mode is applied automatically when the benchmark is swept up
    by the plain tier-1 ``pytest`` invocation (see ``benchmarks/conftest.py``).
    """
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run perf benchmarks in smoke mode (small sizes, no speedup assertions)",
    )
