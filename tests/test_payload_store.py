"""Payload-carrying shards end-to-end, plus manifest-lifecycle hardening.

Covers the widened ``payload_columns`` pipeline — sinks accepting
``(m, 2 + k)`` blocks, the streaming pipeline evaluating the named columns
per block, compaction carrying rows unchanged, and :class:`ShardStore`
serving the ground truth — and the manifest lifecycle fixes: atomic
manifest writes (truncated files fail with a clear :class:`ValueError`),
crash-recovery re-runs of ``compact_shards``, stale-destination cleanup, and
the shard vertex-range sanity checks that now live in the shared manifest
validator.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    KroneckerGraph,
    KroneckerTriangleStats,
    kron_truss_decomposition,
)
from repro.graphs import (
    NpyShardSink,
    iter_edge_shards,
    load_edge_shards,
    normalize_payload_columns,
    read_shard_manifest,
    write_edge_shards,
)
from repro.parallel import distributed_generate
from repro.store import (
    KNOWN_PAYLOAD_COLUMNS,
    AsyncShardSink,
    PayloadEvaluator,
    ShardStore,
    compact_shards,
)
import repro.store.compaction as compaction_mod

PAYLOAD = ("triangles", "trussness")


def _sorted_rows(rows: np.ndarray) -> np.ndarray:
    return rows[np.lexsort((rows[:, 1], rows[:, 0]))]


@pytest.fixture
def product(weblike_small, delta_le_one_factor) -> KroneckerGraph:
    return KroneckerGraph(weblike_small, delta_le_one_factor)


@pytest.fixture
def payload_spill(tmp_path, product, weblike_small, delta_le_one_factor):
    """A 4-rank spill carrying triangles + trussness payload columns."""
    sink = NpyShardSink(tmp_path / "spill", name=product.name,
                        n_vertices=product.n_vertices, payload_columns=PAYLOAD)
    distributed_generate(weblike_small, delta_le_one_factor, 4,
                         streaming=True, a_edges_per_block=8, sink=sink,
                         payload_columns=PAYLOAD)
    return tmp_path / "spill"


@pytest.fixture
def payload_store(tmp_path, payload_spill):
    compact_shards(payload_spill, tmp_path / "store", target_shard_edges=1500)
    return tmp_path / "store"


@pytest.fixture
def expected_rows(product, weblike_small, delta_le_one_factor) -> np.ndarray:
    """(src, dst, triangles, trussness) ground truth from the closed forms."""
    edges = _sorted_rows(product.edges())
    stats = KroneckerTriangleStats.from_factors(weblike_small, delta_le_one_factor)
    truss = kron_truss_decomposition(weblike_small, delta_le_one_factor)
    return np.column_stack([
        edges,
        stats.edge_values(edges[:, 0], edges[:, 1]),
        truss.edge_trussness_batch(edges[:, 0], edges[:, 1]),
    ])


class TestPayloadColumnNames:
    def test_normalize_accepts_both_spellings(self):
        assert normalize_payload_columns(("triangles",)) == ("triangles",)
        assert normalize_payload_columns(["src", "dst", "triangles"]) == ("triangles",)
        assert normalize_payload_columns(()) == ()

    def test_normalize_rejects_reserved_and_duplicates(self):
        with pytest.raises(ValueError, match="reserved"):
            normalize_payload_columns(("triangles", "src"))
        with pytest.raises(ValueError, match="duplicate"):
            normalize_payload_columns(("triangles", "triangles"))
        with pytest.raises(ValueError, match="non-empty strings"):
            normalize_payload_columns(("", "triangles"))

    def test_evaluator_rejects_unknown_columns(self, weblike_small,
                                               delta_le_one_factor):
        with pytest.raises(ValueError, match="unknown payload columns"):
            PayloadEvaluator.from_factors(weblike_small, delta_le_one_factor,
                                          ("pagerank",))
        assert set(PAYLOAD) <= set(KNOWN_PAYLOAD_COLUMNS)


class TestPayloadSpill:
    def test_v1_manifest_records_columns(self, payload_spill):
        manifest = read_shard_manifest(payload_spill)
        assert manifest["format_version"] == 1
        assert manifest["payload_columns"] == ["src", "dst", *PAYLOAD]

    def test_spilled_rows_carry_exact_ground_truth(self, payload_spill,
                                                   expected_rows):
        rows = load_edge_shards(payload_spill)
        assert rows.shape == expected_rows.shape
        assert np.array_equal(_sorted_rows(rows), expected_rows)

    def test_sink_rejects_wrong_width(self, tmp_path):
        sink = NpyShardSink(tmp_path / "s", payload_columns=("triangles",))
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            sink.write(0, 0, np.asarray([[1, 2], [3, 4]], dtype=np.int64))
        sink.write(0, 0, np.asarray([[1, 2, 9]], dtype=np.int64))

    def test_async_sink_rejects_wrong_width_synchronously(self, tmp_path):
        sink = AsyncShardSink(tmp_path / "s", payload_columns=PAYLOAD)
        with pytest.raises(ValueError, match=r"\(m, 4\)"):
            sink.write(0, 0, np.asarray([[1, 2]], dtype=np.int64))
        sink.finalize()

    def test_async_sink_payload_spill_equivalent(self, tmp_path, payload_spill,
                                                 product, weblike_small,
                                                 delta_le_one_factor):
        sink = AsyncShardSink(tmp_path / "aspill", queue_blocks=3,
                              n_vertices=product.n_vertices,
                              payload_columns=PAYLOAD)
        assert sink.payload_columns == PAYLOAD
        distributed_generate(weblike_small, delta_le_one_factor, 4,
                             streaming=True, a_edges_per_block=8, sink=sink,
                             payload_columns=PAYLOAD)
        assert (read_shard_manifest(tmp_path / "aspill")["shards"]
                == read_shard_manifest(payload_spill)["shards"])
        assert np.array_equal(load_edge_shards(tmp_path / "aspill"),
                              load_edge_shards(payload_spill))

    def test_payload_requires_streaming_sink(self, weblike_small,
                                             delta_le_one_factor):
        with pytest.raises(ValueError, match="streaming=True and a sink"):
            distributed_generate(weblike_small, delta_le_one_factor, 2,
                                 payload_columns=PAYLOAD)
        with pytest.raises(ValueError, match="streaming=True and a sink"):
            distributed_generate(weblike_small, delta_le_one_factor, 2,
                                 streaming=True, payload_columns=PAYLOAD)

    def test_triangles_payload_requires_statistics(self, tmp_path,
                                                   weblike_small,
                                                   delta_le_one_factor):
        sink = NpyShardSink(tmp_path / "s", payload_columns=("triangles",))
        with pytest.raises(ValueError, match="with_statistics"):
            distributed_generate(weblike_small, delta_le_one_factor, 2,
                                 streaming=True, sink=sink,
                                 with_statistics=False,
                                 payload_columns=("triangles",))

    def test_trussness_payload_implies_census(self, payload_spill, product,
                                              weblike_small,
                                              delta_le_one_factor):
        """Naming 'trussness' turns the trussness census on for free."""
        result = distributed_generate(
            weblike_small, delta_le_one_factor, 2, streaming=True,
            a_edges_per_block=16,
            sink=lambda rank, block, edges: None)
        assert result.total.trussness_census() == {}
        assert read_shard_manifest(payload_spill)  # spill fixture streamed
        # trussness payload ⇒ census folded into the aggregates
        sink = NpyShardSink(payload_spill.parent / "s2",
                            payload_columns=("trussness",))
        result = distributed_generate(
            weblike_small, delta_le_one_factor, 2, streaming=True,
            a_edges_per_block=16, sink=sink,
            payload_columns=("trussness",))
        census = result.total.trussness_census()
        assert census and sum(census.values()) == product.nnz

    def test_write_edge_shards_with_evaluator(self, tmp_path, product,
                                              weblike_small,
                                              delta_le_one_factor,
                                              expected_rows):
        evaluator = PayloadEvaluator.from_factors(
            weblike_small, delta_le_one_factor, PAYLOAD)
        write_edge_shards(product, tmp_path / "spill", a_edges_per_block=32,
                          payload=evaluator)
        rows = load_edge_shards(tmp_path / "spill")
        assert np.array_equal(_sorted_rows(rows), expected_rows)

    def test_process_pool_payload_spill(self, tmp_path, weblike_small,
                                        delta_le_one_factor, expected_rows):
        """payload columns survive the multiprocessing worker path."""
        sink = NpyShardSink(tmp_path / "spill", payload_columns=PAYLOAD)
        distributed_generate(weblike_small, delta_le_one_factor, 2,
                             streaming=True, a_edges_per_block=64, sink=sink,
                             payload_columns=PAYLOAD, use_processes=True,
                             max_workers=2)
        rows = load_edge_shards(tmp_path / "spill")
        assert np.array_equal(_sorted_rows(rows), expected_rows)


class TestPayloadCompaction:
    def test_manifest_carries_columns_forward(self, payload_store):
        manifest = read_shard_manifest(payload_store)
        assert manifest["format_version"] == 2
        assert manifest["payload_columns"] == ["src", "dst", *PAYLOAD]

    def test_rows_survive_compaction_exactly(self, payload_store, expected_rows):
        assert np.array_equal(load_edge_shards(payload_store), expected_rows)

    def test_tiny_merge_chunk_keeps_rows_attached(self, tmp_path, payload_spill,
                                                  expected_rows):
        """Many bounded merge rounds (including destination-level tie merges)
        must never detach a payload from its edge."""
        compact_shards(payload_spill, tmp_path / "tiny", target_shard_edges=700,
                       merge_chunk_edges=7)
        assert np.array_equal(load_edge_shards(tmp_path / "tiny"), expected_rows)

    def test_recompaction_byte_idempotent(self, tmp_path, payload_store):
        manifest = compact_shards(payload_store, tmp_path / "again",
                                  target_shard_edges=1500)
        first = read_shard_manifest(payload_store)
        assert manifest["shards"] == first["shards"]
        for shard in first["shards"]:
            assert ((payload_store / shard["file"]).read_bytes()
                    == (tmp_path / "again" / shard["file"]).read_bytes())

    def test_width_mismatch_names_file(self, tmp_path, payload_spill):
        manifest_path = payload_spill / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["payload_columns"] = ["src", "dst", "triangles"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="require 3 columns"):
            compact_shards(payload_spill, tmp_path / "d")


class TestShardStorePayloadQueries:
    def test_store_exposes_columns(self, payload_store):
        store = ShardStore(payload_store)
        assert store.payload_columns == PAYLOAD
        assert store.payload_index("trussness") == 1
        with pytest.raises(ValueError, match="no payload column"):
            store.payload_index("pagerank")
        assert "payload_columns=['triangles', 'trussness']" in repr(store)

    def test_edges_in_range_with_payload(self, payload_store, expected_rows):
        store = ShardStore(payload_store)
        assert np.array_equal(
            store.edges_in_range(0, store.n_vertices, with_payload=True),
            expected_rows)
        lo, hi = store.n_vertices // 3, 2 * store.n_vertices // 3
        window = expected_rows[(expected_rows[:, 0] >= lo)
                               & (expected_rows[:, 0] < hi)]
        assert np.array_equal(store.edges_in_range(lo, hi, with_payload=True),
                              window)
        # Topology-only answers are unchanged by the wider rows.
        assert np.array_equal(store.edges_in_range(lo, hi), window[:, :2])
        assert store.edges_in_range(5, 5, with_payload=True).shape == (0, 4)

    def test_edges_for_sources_with_payload(self, payload_store, expected_rows,
                                            rng):
        store = ShardStore(payload_store)
        vs = rng.choice(store.n_vertices, 40, replace=False)
        got = store.edges_for_sources(vs, with_payload=True)
        mask = np.isin(expected_rows[:, 0], vs)
        assert np.array_equal(got, expected_rows[mask])

    def test_edge_payloads_match_and_validate(self, payload_store,
                                              expected_rows, rng):
        store = ShardStore(payload_store)
        picks = rng.choice(expected_rows.shape[0], 50)
        got = store.edge_payloads(expected_rows[picks, 0],
                                  expected_rows[picks, 1])
        assert np.array_equal(got, expected_rows[picks, 2:])
        scalar = store.edge_payload(int(expected_rows[0, 0]),
                                    int(expected_rows[0, 1]))
        assert scalar == {"triangles": int(expected_rows[0, 2]),
                          "trussness": int(expected_rows[0, 3])}
        with pytest.raises(ValueError, match="not stored"):
            store.edge_payloads([0], [0])
        with pytest.raises(ValueError, match="matching shapes"):
            store.edge_payloads([0, 1], [2])
        assert store.edge_payloads([], []).shape == (0, 2)

    def test_egonet_and_subgraph_payload_variants(self, payload_store,
                                                  expected_rows, rng):
        store = ShardStore(payload_store)
        for v in map(int, rng.choice(store.n_vertices, 5, replace=False)):
            ego, rows = store.egonet(v, with_payload=True)
            members = np.isin(expected_rows[:, 0], ego.vertices) \
                & np.isin(expected_rows[:, 1], ego.vertices)
            assert np.array_equal(rows, expected_rows[members])
            # plain call still returns the bare egonet
            assert store.egonet(v).n_vertices == ego.n_vertices
        vs = rng.choice(store.n_vertices, 30, replace=False)
        graph, rows = store.subgraph(vs, with_payload=True)
        members = np.isin(expected_rows[:, 0], vs) & np.isin(expected_rows[:, 1], vs)
        assert np.array_equal(rows, expected_rows[members])
        assert graph.adjacency.nnz == rows.shape[0]

    def test_lru_caches_payload_with_topology(self, payload_store):
        """One decode serves topology and payload queries for a shard."""
        store = ShardStore(payload_store, cache_shards=4)
        rows = store.edges_in_range(0, 3, with_payload=True)
        reads = store.shard_reads
        store.edge_payloads(rows[:5, 0], rows[:5, 1])
        store.edges_in_range(0, 3)
        store.neighbors(int(rows[0, 0]))
        assert store.shard_reads == reads
        assert store.cache_hits >= 3

    def test_payload_free_store_rejects_payload_queries(self, tmp_path,
                                                        product,
                                                        weblike_small,
                                                        delta_le_one_factor):
        write_edge_shards(product, tmp_path / "spill", a_edges_per_block=64)
        compact_shards(tmp_path / "spill", tmp_path / "store")
        store = ShardStore(tmp_path / "store")
        assert store.payload_columns == ()
        with pytest.raises(ValueError, match="no payload columns"):
            store.edges_in_range(0, 5, with_payload=True)
        with pytest.raises(ValueError, match="no payload columns"):
            store.edge_payloads([0], [1])
        with pytest.raises(ValueError, match="no payload columns"):
            store.egonet(0, with_payload=True)


# ---------------------------------------------------------------------------
# Property tests: payload columns survive compaction permutation-identically
# ---------------------------------------------------------------------------
@st.composite
def payload_spills(draw):
    """Random multi-shard spills of (src, dst, payload...) rows."""
    n_vertices = draw(st.integers(4, 40))
    n_payload = draw(st.integers(1, 3))
    n_shards = draw(st.integers(1, 5))
    shards = []
    for _ in range(n_shards):
        m = draw(st.integers(0, 30))
        rows = draw(st.lists(
            st.tuples(*(
                [st.integers(0, n_vertices - 1)] * 2
                + [st.integers(-5, 5)] * n_payload)),
            min_size=m, max_size=m))
        shards.append(np.asarray(rows, dtype=np.int64).reshape(m, 2 + n_payload))
    return n_vertices, n_payload, shards


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(spill=payload_spills(), target=st.integers(1, 50), chunk=st.integers(1, 16))
def test_compaction_permutes_rows_identically(tmp_path, spill, target, chunk):
    """Compaction is exactly a row permutation: every (edge, payload) row of
    the spill appears in the store unchanged, in (src, dst) order."""
    n_vertices, n_payload, shards = spill
    spill_dir = tmp_path / f"spill-{target}-{chunk}"
    names = tuple(f"c{i}" for i in range(n_payload))
    sink = NpyShardSink(spill_dir, n_vertices=n_vertices, payload_columns=names)
    for index, rows in enumerate(shards):
        sink.write(0, index, rows)
    sink.finalize()
    store_dir = tmp_path / f"store-{target}-{chunk}"
    manifest = compact_shards(spill_dir, store_dir, target_shard_edges=target,
                              merge_chunk_edges=chunk)
    got = load_edge_shards(store_dir)
    everything = np.concatenate(shards) if shards else \
        np.zeros((0, 2 + n_payload), dtype=np.int64)
    # Permutation identity over full rows (duplicates included): sort both
    # sides by every column and compare exactly.
    def canon(rows):
        return rows[np.lexsort(rows.T[::-1])]
    assert np.array_equal(canon(got), canon(everything))
    # and the store order is (src, dst)-sorted with payloads attached
    assert np.array_equal(got[:, :2], _sorted_rows(got[:, :2].copy()))
    assert manifest["payload_columns"] == ["src", "dst", *names]


# ---------------------------------------------------------------------------
# Manifest lifecycle: atomic writes, crash recovery, stale-shard cleanup
# ---------------------------------------------------------------------------
class TestManifestLifecycle:
    def test_truncated_manifest_clear_error(self, payload_store):
        """A torn manifest write surfaces as a ValueError naming the file,
        never a raw json.JSONDecodeError."""
        manifest_path = payload_store / "manifest.json"
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="manifest.json.*not valid JSON"):
            read_shard_manifest(payload_store)
        with pytest.raises(ValueError, match="truncated or interrupted"):
            ShardStore(payload_store)

    def test_manifest_write_is_atomic(self, tmp_path, payload_spill,
                                      monkeypatch):
        """A crash mid-publish leaves no manifest.json at all (the bytes only
        ever land in the temp file)."""
        import repro.graphs.io as io_mod

        def exploding_replace(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(io_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            compact_shards(payload_spill, tmp_path / "dest")
        assert not (tmp_path / "dest" / "manifest.json").exists()
        monkeypatch.undo()
        # the interrupted destination recompacts cleanly
        manifest = compact_shards(payload_spill, tmp_path / "dest")
        store_files = {p.name for p in (tmp_path / "dest").glob("*.npy")}
        assert store_files == {s["file"] for s in manifest["shards"]}

    def test_killed_between_shards_and_manifest_rerun(self, tmp_path,
                                                      payload_spill,
                                                      expected_rows,
                                                      monkeypatch):
        """Simulate a kill after the shards are cut but before the manifest is
        published; the rerun must produce a complete, correct store."""
        dest = tmp_path / "dest"
        calls = {"n": 0}
        real_write = compaction_mod.write_shard_manifest

        def dying_write(directory, manifest):
            calls["n"] += 1
            raise KeyboardInterrupt  # the kill

        monkeypatch.setattr(compaction_mod, "write_shard_manifest", dying_write)
        with pytest.raises(KeyboardInterrupt):
            compact_shards(payload_spill, dest, target_shard_edges=700)
        assert calls["n"] == 1
        assert list(dest.glob("*.npy"))  # shards landed...
        assert not (dest / "manifest.json").exists()  # ...manifest did not
        with pytest.raises(FileNotFoundError):
            read_shard_manifest(dest)
        monkeypatch.setattr(compaction_mod, "write_shard_manifest", real_write)
        compact_shards(payload_spill, dest, target_shard_edges=1500)
        assert np.array_equal(load_edge_shards(dest), expected_rows)
        files = {p.name for p in dest.glob("*.npy")}
        assert files == {s["file"] for s in read_shard_manifest(dest)["shards"]}

    def test_recompaction_removes_orphaned_shards(self, tmp_path, payload_spill,
                                                  expected_rows):
        """A coarser re-compaction into a reused destination must delete the
        finer run's now-unlisted shard files (and any stray .npy)."""
        dest = tmp_path / "dest"
        compact_shards(payload_spill, dest, target_shard_edges=300)
        n_fine = len(read_shard_manifest(dest)["shards"])
        stray = dest / "not-a-listed-shard.npy"
        np.save(stray, np.zeros((3, 2), dtype=np.int64))
        manifest = compact_shards(payload_spill, dest, target_shard_edges=5000)
        assert len(manifest["shards"]) < n_fine
        assert not stray.exists()
        files = {p.name for p in dest.glob("*.npy")}
        assert files == {s["file"] for s in manifest["shards"]}
        assert np.array_equal(load_edge_shards(dest), expected_rows)


class TestRangeSanityInValidator:
    """The shard vertex-range checks moved into _validate_shard_manifest:
    every consumer fails with the same field-naming ValueError."""

    def _corrupt(self, store_dir, mutate):
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        mutate(manifest)
        manifest_path.write_text(json.dumps(manifest))

    def test_src_min_exceeds_src_max(self, payload_store):
        def mutate(manifest):
            manifest["shards"][0]["src_min"] = \
                manifest["shards"][0]["src_max"] + 1
        self._corrupt(payload_store, mutate)
        with pytest.raises(ValueError, match=r"src_min.*exceeds src_max"):
            read_shard_manifest(payload_store)

    def test_negative_range_field(self, payload_store):
        self._corrupt(payload_store,
                      lambda m: m["shards"][0].update(src_min=-1))
        with pytest.raises(ValueError, match=r"src_min.*non-negative"):
            read_shard_manifest(payload_store)

    def test_non_integer_range_field(self, payload_store):
        self._corrupt(payload_store,
                      lambda m: m["shards"][0].update(src_max="ten"))
        with pytest.raises(ValueError, match=r"src_max.*non-negative integer"):
            read_shard_manifest(payload_store)

    def test_decreasing_ranges_fail_for_every_consumer(self, payload_store):
        def swap(manifest):
            shards = manifest["shards"]
            if len(shards) >= 2:
                shards[0], shards[1] = shards[1], shards[0]
        assert len(read_shard_manifest(payload_store)["shards"]) >= 2
        self._corrupt(payload_store, swap)
        with pytest.raises(ValueError, match="nondecreasing"):
            read_shard_manifest(payload_store)
        with pytest.raises(ValueError, match="nondecreasing"):
            ShardStore(payload_store)
        with pytest.raises(ValueError, match="nondecreasing"):
            next(iter_edge_shards(payload_store))
        from repro.cli import main
        with pytest.raises(ValueError, match="nondecreasing"):
            main(["query", str(payload_store), "--degree", "0"])
