"""Tests for multi-factor Kronecker products (C = A₁ ⊗ … ⊗ A_k)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import generators
from repro.core import (
    MultiKroneckerGraph,
    multi_kron_degrees,
    multi_kron_edge_triangles,
    multi_kron_triangle_count,
    multi_kron_vertex_triangles,
)
from repro.graphs import egonet
from repro.triangles import edge_triangles, total_triangles, vertex_triangles


@pytest.fixture
def three_loop_free():
    return [
        generators.erdos_renyi(6, 0.5, seed=1),
        generators.complete_graph(4),
        generators.webgraph_like(8, edges_per_vertex=2, seed=2),
    ]


@pytest.fixture
def three_with_loops():
    return [
        generators.erdos_renyi(5, 0.5, seed=3),
        generators.looped_clique(3),
        generators.erdos_renyi(4, 0.6, seed=4, self_loops=True),
    ]


class TestFormulaFolding:
    def test_degrees_loop_free(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        assert np.array_equal(multi_kron_degrees(three_loop_free),
                              product.materialize().degrees())

    def test_degrees_with_loops(self, three_with_loops):
        product = MultiKroneckerGraph(three_with_loops)
        assert np.array_equal(multi_kron_degrees(three_with_loops),
                              product.materialize().degrees())

    def test_vertex_triangles_loop_free(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        assert np.array_equal(multi_kron_vertex_triangles(three_loop_free),
                              vertex_triangles(product.materialize()))

    def test_vertex_triangles_with_loops(self, three_with_loops):
        product = MultiKroneckerGraph(three_with_loops)
        assert np.array_equal(multi_kron_vertex_triangles(three_with_loops),
                              vertex_triangles(product.materialize()))

    def test_edge_triangles_loop_free(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        assert (multi_kron_edge_triangles(three_loop_free)
                != edge_triangles(product.materialize())).nnz == 0

    def test_edge_triangles_with_loops(self, three_with_loops):
        product = MultiKroneckerGraph(three_with_loops)
        assert (multi_kron_edge_triangles(three_with_loops)
                != edge_triangles(product.materialize())).nnz == 0

    def test_triangle_count(self, three_loop_free, three_with_loops):
        for factors in (three_loop_free, three_with_loops):
            product = MultiKroneckerGraph(factors)
            assert multi_kron_triangle_count(factors) == total_triangles(product.materialize())

    def test_global_count_factorization(self, three_loop_free):
        """τ(C) = 6^{k-1} Π τ(A_i) for loop-free factors."""
        expected = 6 ** 2
        for factor in three_loop_free:
            expected *= total_triangles(factor)
        assert multi_kron_triangle_count(three_loop_free) == expected

    def test_two_factor_consistency(self, small_er, k4):
        """The multi-factor functions agree with the two-factor formulas."""
        from repro.core import kron_triangle_count, kron_vertex_triangles

        assert np.array_equal(multi_kron_vertex_triangles([small_er, k4]),
                              kron_vertex_triangles(small_er, k4))
        assert multi_kron_triangle_count([small_er, k4]) == kron_triangle_count(small_er, k4)

    def test_requires_two_factors(self, k4):
        with pytest.raises(ValueError):
            multi_kron_degrees([k4])

    def test_rejects_directed_factor(self, k4, directed_small):
        with pytest.raises(TypeError):
            multi_kron_degrees([k4, directed_small])


class TestMultiKroneckerGraphObject:
    def test_sizes(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        assert product.n_factors == 3
        assert product.n_vertices == 6 * 4 * 8
        expected_nnz = 1
        for f in three_loop_free:
            expected_nnz *= f.nnz
        assert product.nnz == expected_nnz
        assert product.n_edges == product.materialize().n_edges

    def test_self_loop_accounting(self, three_with_loops):
        product = MultiKroneckerGraph(three_with_loops)
        materialized = product.materialize()
        assert product.n_self_loops == materialized.n_self_loops
        assert product.n_edges == materialized.n_edges

    def test_index_round_trip(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        p = np.arange(product.n_vertices)
        digits = product.factor_indices(p)
        assert np.array_equal(product.product_index(digits), p)

    def test_index_consistent_with_two_factor(self, small_er, k4):
        from repro.core import KroneckerGraph

        two = KroneckerGraph(small_er, k4)
        multi = MultiKroneckerGraph([small_er, k4])
        p = np.arange(two.n_vertices)
        i2, k2 = two.factor_indices(p)
        im, km = multi.factor_indices(p)
        assert np.array_equal(i2, im)
        assert np.array_equal(k2, km)

    def test_product_index_wrong_arity(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        with pytest.raises(ValueError):
            product.product_index([0, 1])

    def test_has_edge_and_degree(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        dense = product.materialize().to_dense()
        degrees = product.materialize().degrees()
        rng = np.random.default_rng(0)
        for _ in range(30):
            p, q = rng.integers(0, product.n_vertices, size=2)
            assert product.has_edge(int(p), int(q)) == bool(dense[p, q])
        for p in (0, 17, 100, product.n_vertices - 1):
            assert product.degree(p) == degrees[p]

    def test_neighbors_match_materialized(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        materialized = product.materialize()
        for p in (0, 33, 101):
            assert product.neighbors(p).tolist() == materialized.neighbors(p).tolist()

    def test_subgraph_and_egonet(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        materialized = product.materialize()
        vertices = [0, 5, 44, 120]
        assert product.subgraph(vertices) == materialized.subgraph(vertices)
        t = vertex_triangles(materialized)
        for p in (12, 80):
            assert egonet(product, p).triangles_at_center() == t[p]

    def test_statistics_methods(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        materialized = product.materialize()
        assert np.array_equal(product.vertex_triangles(), vertex_triangles(materialized))
        assert (product.edge_triangles() != edge_triangles(materialized)).nnz == 0
        assert product.triangle_count() == total_triangles(materialized)
        assert np.array_equal(product.degrees(), materialized.degrees())

    def test_materialize_guard(self):
        factors = [generators.webgraph_like(60, seed=i) for i in range(3)]
        product = MultiKroneckerGraph(factors)
        with pytest.raises(MemoryError):
            product.materialize(max_nnz=100)

    def test_edge_streaming_covers_product(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free)
        total = 0
        rebuilt_rows, rebuilt_cols = [], []
        for block in product.iter_edge_blocks(first_factor_edges_per_block=5):
            total += block.shape[0]
            rebuilt_rows.append(block[:, 0])
            rebuilt_cols.append(block[:, 1])
        assert total == product.nnz
        adj = sp.csr_matrix(
            (np.ones(total, dtype=np.int64),
             (np.concatenate(rebuilt_rows), np.concatenate(rebuilt_cols))),
            shape=(product.n_vertices, product.n_vertices),
        )
        assert (adj != product.materialize_adjacency()).nnz == 0

    def test_repr_and_name(self, three_loop_free):
        product = MultiKroneckerGraph(three_loop_free, name="demo")
        assert "demo" in repr(product)
        auto = MultiKroneckerGraph(three_loop_free)
        assert "⊗" in auto.name

    def test_four_factors(self):
        factors = [generators.complete_graph(3) for _ in range(4)]
        product = MultiKroneckerGraph(factors)
        assert product.n_vertices == 81
        assert product.triangle_count() == total_triangles(product.materialize())
