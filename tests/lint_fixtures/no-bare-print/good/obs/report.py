"""Known-good corpus for no-bare-print: library code that routes
diagnostics properly, plus builtin-print look-alikes that must not fire."""


def announce(count, events):
    # Operational facts go to the flight recorder, not stdout.
    events.emit("store.compacted", shards=count)
    return count


def render(table):
    # A *method* named print is not the builtin call.
    table.print()
    return table


def emit_via_writer(writer, lines):
    for line in lines:
        writer.write(line + "\n")
