"""Known-good corpus for no-bare-print: cli.py is the one module whose
job is console output — excluded from the rule by path."""


def show(result):
    print(result)  # allowed: this file IS the console surface
    return 0
