"""Known-bad corpus for no-bare-print: builtin print() calls in a
library module (stdout belongs to the CLI alone)."""


def announce(count):
    print(f"processed {count} shards")  # BAD: bare print in a library
    if count == 0:
        print("nothing to do")  # BAD: even the degenerate branch
    return count


def debug_dump(payload):
    for key in sorted(payload):
        print(key, payload[key])  # BAD: debug spew on stdout
