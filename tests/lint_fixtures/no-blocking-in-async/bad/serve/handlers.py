"""Known-bad corpus for no-blocking-in-async: blocking work inlined in
async handlers instead of going through the decode pool."""

import socket
import time
from time import sleep as pause


class Handler:
    def __init__(self, store):
        self.store = store

    async def op_range(self, lo, hi):
        # BAD: store decode directly on the event loop
        return self.store.edges_in_range(lo, hi)

    async def op_degree(self, vertex):
        time.sleep(0.01)  # BAD: blocks every connection
        return self._store.degree(vertex)  # BAD: decode via _store too

    async def op_probe(self, host, port):
        pause(0.01)  # BAD: aliased time.sleep
        # BAD: blocking socket call inside the loop
        return socket.create_connection((host, port))
