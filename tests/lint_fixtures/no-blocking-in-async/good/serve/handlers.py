"""Known-good corpus for no-blocking-in-async: the decode-pool idiom —
blocking work wrapped in a lambda/def handed to the executor — and
non-blocking awaits."""

import asyncio
import time


class Handler:
    def __init__(self, store, loop, executor):
        self.store = store
        self._loop = loop
        self._executor = executor

    async def _run_store(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def op_range(self, lo, hi):
        # The sanctioned idiom: the decode happens on the pool; the
        # lambda body is a sync scope, exempt by design.
        return await self._run_store(
            lambda: self.store.edges_in_range(lo, hi))

    async def op_degree(self, vertex):
        await asyncio.sleep(0)  # async sleep never blocks the loop
        return await self._run_store(self.store.degree, vertex)

    def sync_helper(self, lo, hi):
        # Sync scope: runs on the executor, allowed to block.
        time.sleep(0)
        return self.store.edges_in_range(lo, hi)

    async def op_meta(self):
        # Attribute *reads* on the store are manifest-sized, not decodes.
        return {"vertices": self.store.n_vertices}
