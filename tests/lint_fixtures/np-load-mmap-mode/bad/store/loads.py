"""Known-bad corpus for np-load-mmap-mode: every load here must be
flagged — including the aliased forms the old grep could not see."""

import numpy as np
import numpy as renamed_numpy
from numpy import load
from numpy import load as np_load


def plain(path):
    return np.load(path)  # BAD: bare call, no memory-mode decision


def keyword_but_not_mmap(path):
    return np.load(path, allow_pickle=False)  # BAD: decision still unstated


def aliased_module(path):
    return renamed_numpy.load(path)  # BAD: module alias hides it from greps


def from_import(path):
    return load(path)  # BAD: from-import, no "np.load" text at all


def from_import_aliased(path):
    return np_load(path)  # BAD: aliased from-import


def multiline(path):
    return np.load(  # BAD: call wraps across lines
        path,
        allow_pickle=False,
    )
