"""Known-good corpus for np-load-mmap-mode: none of these may be
flagged.  Includes the parenthesis-in-string regression the old textual
span scanner got wrong."""

import numpy as np
from numpy import load as np_load


def mapped(path):
    return np.load(path, mmap_mode="r")


def eager_stated(path):
    # mmap_mode=None is a statement: an eager private copy is the point.
    return np.load(path, mmap_mode=None)


def aliased_with_mode(path):
    return np_load(path, mmap_mode="r")


def shard_name(stem):
    return f"{stem}-)weird(.npy"


def paren_in_string_regression(stem):
    # The old scanner matched parens textually: the ")" inside the string
    # argument ended its span before mmap_mode, so this compliant call was
    # reported as bare.  The AST rule reads the call's keywords instead.
    return np.load(shard_name(")"), mmap_mode="r")


def not_numpy_load(store, path):
    # A .load attribute on something that is not numpy is out of scope.
    return store.load(path)
