"""Known-bad corpus for no-ad-hoc-telemetry: aliased imports included —
the forms the old grep missed entirely."""

import collections
import time
from collections import Counter as Tally
from collections import defaultdict
from time import perf_counter as clock


def count_hits(keys):
    hits = Tally()  # BAD: aliased collections.Counter tally
    misses = collections.Counter()  # BAD: module-attribute form
    per_op = defaultdict(int)  # BAD: the counter-dict idiom
    for key in keys:
        hits[key] += 1
        per_op[key] += 1
    return hits, misses, per_op


def time_request(fn):
    start = clock()  # BAD: aliased raw perf_counter timing
    fn()
    other = time.perf_counter()  # BAD: module-attribute form
    return other - start
