"""Known-good corpus for no-ad-hoc-telemetry: registry series own the
numbers; ordinary data-structure uses of collections stay legal."""

import time
from collections import OrderedDict, defaultdict


def count_hits(registry, keys):
    hits = registry.counter("store.cache_hits")
    for _ in keys:
        hits.inc()
    return hits


def time_request(registry, fn):
    with registry.histogram("store.request_us", (100, 1000), unit="us").time():
        fn()


def data_structures():
    lru = OrderedDict()  # plain LRU bookkeeping, not telemetry
    groups = defaultdict(list)  # defaultdict of *lists* is not a tally
    wall = time.time()  # wall-clock timestamps are not latency timing
    return lru, groups, wall
