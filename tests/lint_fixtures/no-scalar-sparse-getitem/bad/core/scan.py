"""Known-bad corpus for no-scalar-sparse-getitem: per-edge scalar
lookups inside Python loops — the pattern PR 1 vectorized away."""


def edge_values_loop(adj, edges):
    total = 0
    for u, v in edges:
        total += adj[u, v]  # BAD: one 1x1 sparse getitem per edge
    return total


def comprehension_loop(adj, edges):
    return [adj[u, v] for u, v in edges]  # BAD: same pattern, comprehension


def half_carried(adj, centre, neighbors):
    values = []
    for w in neighbors:
        values.append(adj[centre, w])  # BAD: one index is loop-carried
    return values
