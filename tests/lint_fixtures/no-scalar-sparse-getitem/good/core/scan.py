"""Known-good corpus for no-scalar-sparse-getitem: batched index-array
gathers, slices, and writes into preallocated outputs all pass."""

import numpy as np


def edge_values_batched(adj, edges):
    rows, cols = edges[:, 0], edges[:, 1]
    return np.asarray(adj[rows, cols]).ravel()  # index arrays, no loop


def block_scan(adj, blocks):
    total = 0
    for lo, hi in blocks:
        total += adj[lo:hi].sum()  # slice per block, not scalar per edge
    return total


def fill_output(out, edges, values):
    for index, value in enumerate(values):
        # Store context: writing into a preallocated dense output is not
        # a scalar sparse read.
        out[index, 0] = value
    return out


def gather_once_then_loop(adj, edges):
    values = np.asarray(adj[edges[:, 0], edges[:, 1]]).ravel()
    total = 0
    for value in values:  # looping over *gathered* values is fine
        total += int(value)
    return total
