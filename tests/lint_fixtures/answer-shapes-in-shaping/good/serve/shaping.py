"""Known-good corpus for answer-shapes-in-shaping: shaping.py is the one
home allowed to build answer shapes, and non-literal "query" values are
not shapes."""


def degree_shape(vertex, degree):
    # Allowed: this file IS serve/shaping.py, the shapes' home.
    return {"query": "degree", "vertex": vertex, "degree": degree}
