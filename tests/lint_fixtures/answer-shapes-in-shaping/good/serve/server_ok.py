"""Known-good corpus: dispatch tables and dynamic values are not answer
shapes — the discriminator's value must be a string literal."""


def _cmd_query(args):
    return 0


#: A dispatch table maps the same key to a *function* — structurally not
#: an answer shape, so the AST rule leaves it alone (the old grep needed
#: a prose exemption for exactly this dict).
COMMANDS = {"query": _cmd_query}


def relay(op, body):
    # Dynamic value: the shape was built elsewhere (by shaping); this
    # dict just wraps it.
    return {"query": op, "body": body}
