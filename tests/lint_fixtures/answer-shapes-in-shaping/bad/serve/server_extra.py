"""Known-bad corpus for answer-shapes-in-shaping: a consumer hand-builds
an answer dict instead of calling a shaping function."""


def answer_degree(vertex, degree):
    return {"query": "degree", "vertex": vertex, "degree": degree}  # BAD


def answer_nested(vertex):
    return {
        "meta": {},
        # BAD: the discriminator makes this an answer shape wherever it is
        "body": {"query": "neighbors", "vertex": vertex, "neighbors": []},
    }
