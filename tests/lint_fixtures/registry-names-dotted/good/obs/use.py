"""Known-good corpus for registry-names-dotted: dotted layer.noun[_unit]
snake_case names, labels, and non-registry .counter attributes."""


def register(registry):
    a = registry.counter("serve.requests", op="degree")
    b = registry.counter("fleet.worker_failovers", worker=3)
    c = registry.gauge("store.cached_shards")
    d = registry.histogram("serve.latency_us", (100, 1000), unit="us")
    return a, b, c, d


def dynamic_name(registry, layer):
    # Dynamic names are validated by the registry at runtime; the static
    # rule only judges literals.
    return registry.counter(f"{layer}.requests")
