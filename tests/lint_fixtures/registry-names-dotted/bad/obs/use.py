"""Known-bad corpus for registry-names-dotted: metric names that break
the layer.noun[_unit] dotted snake_case scheme."""


def register(registry):
    a = registry.counter("Requests")  # BAD: no layer prefix, capitalized
    b = registry.counter("serve.Total-Requests")  # BAD: dash + capitals
    c = registry.gauge("cachedshards")  # BAD: single undotted segment
    d = registry.histogram("serve latency us", (1, 10))  # BAD: spaces
    return a, b, c, d
