"""Integration tests reproducing the paper's worked examples and Section VI experiment.

Each test mirrors one experiment id from DESIGN.md / EXPERIMENTS.md at a scale
small enough for CI; the benchmarks re-run the same pipelines at larger scale
and print the tables.
"""

import numpy as np
import pytest
from math import comb

from repro import generators
from repro.analysis import format_table, graph_summary, kronecker_summary
from repro.core import (
    KroneckerGraph,
    kron_degrees,
    kron_triangle_count,
    kron_vertex_triangles,
    validate_egonets,
)
from repro.graphs import egonet
from repro.triangles import edge_triangles, total_triangles, vertex_triangles
from repro.truss import truss_decomposition


class TestFig1Sanity:
    """E1: triangle statistics of a product vertex/edge are products of factor stats."""

    def test_vertex_statistic_multiplies(self):
        a = generators.webgraph_like(30, seed=1)
        b = generators.webgraph_like(25, seed=2)
        t_a, t_b = vertex_triangles(a), vertex_triangles(b)
        t_c = kron_vertex_triangles(a, b)
        for i in (0, 7, 19):
            for k in (0, 5, 20):
                p = i * b.n_vertices + k
                assert t_c[p] == 2 * t_a[i] * t_b[k]

    def test_edge_statistic_multiplies(self):
        a = generators.hub_cycle_graph()
        b = generators.complete_graph(4)
        delta_a, delta_b = edge_triangles(a), edge_triangles(b)
        from repro.core import kron_edge_triangles

        delta_c = kron_edge_triangles(a, b)
        n_b = 4
        for (i, j) in ((0, 1), (1, 2)):
            for (k, l) in ((0, 1), (2, 3)):
                p, q = i * n_b + k, j * n_b + l
                assert delta_c[p, q] == delta_a[i, j] * delta_b[k, l]


class TestExample1CliqueFormulas:
    """E2: the closed forms of Example 1(a)-(c) (deeper parametrization lives in
    test_triangle_formulas; here we lock down the exact paper wording once more)."""

    def test_case_a(self):
        n_a, n_b = 5, 6
        a, b = generators.complete_graph(n_a), generators.complete_graph(n_b)
        degree = n_a * n_b + 1 - n_a - n_b
        assert set(kron_degrees(a, b).tolist()) == {degree}
        assert set(kron_vertex_triangles(a, b).tolist()) == {
            degree * (n_a * n_b + 4 - 2 * n_a - 2 * n_b) // 2
        }

    def test_case_b(self):
        n_a, n_b = 5, 4
        a, b = generators.complete_graph(n_a), generators.looped_clique(n_b)
        assert set(kron_vertex_triangles(a, b).tolist()) == {
            (n_a * n_b - n_b) * (n_a * n_b - 2 * n_b) // 2
        }

    def test_case_c(self):
        n_a, n_b = 4, 5
        a, b = generators.looped_clique(n_a), generators.looped_clique(n_b)
        assert set(kron_vertex_triangles(a, b).tolist()) == {comb(n_a * n_b - 1, 2)}
        # The product minus its self loops is exactly the full clique.
        product = KroneckerGraph(a, b).materialize().without_self_loops()
        assert product == generators.complete_graph(n_a * n_b)


class TestExample2TrussStructure:
    """E4: the hub-cycle square's truss decomposition (Fig. 3 / Example 2)."""

    def test_factor_structure(self, hub_cycle):
        assert (hub_cycle.n_vertices, hub_cycle.n_edges) == (5, 8)
        assert total_triangles(hub_cycle) == 4
        decomp = truss_decomposition(hub_cycle)
        assert decomp.truss_sizes() == {3: 8}

    def test_product_structure(self, hub_cycle):
        product = KroneckerGraph(hub_cycle, hub_cycle)
        materialized = product.materialize()
        assert materialized.n_vertices == 25
        assert materialized.n_edges == 128
        assert total_triangles(materialized) == 96
        assert kron_triangle_count(hub_cycle, hub_cycle) == 96

    def test_edge_participation_classes(self, hub_cycle):
        from repro.core import kron_edge_triangles

        delta = kron_edge_triangles(hub_cycle, hub_cycle)
        undirected_counts = {
            value: int(count) // 2
            for value, count in zip(*np.unique(delta.data, return_counts=True))
        }
        assert undirected_counts == {1: 32, 2: 64, 4: 32}

    def test_truss_sizes(self, hub_cycle):
        product = KroneckerGraph(hub_cycle, hub_cycle).materialize()
        sizes = truss_decomposition(product).truss_sizes()
        assert sizes == {3: 128, 4: 80}


class TestSectionVITable:
    """E9: the Section VI summary table with the synthetic web-NotreDame stand-in."""

    @pytest.fixture(scope="class")
    def factor(self):
        return generators.web_notredame_substitute(scale=0.002, seed=7)

    def test_table_rows_consistent(self, factor):
        factor_b = factor.with_self_loops()
        rows = [
            graph_summary(factor, name="A"),
            graph_summary(factor_b, name="B = A + I"),
            kronecker_summary(factor, factor, name="A ⊗ A"),
            kronecker_summary(factor, factor_b, name="A ⊗ B"),
        ]
        # Structural identities of the paper's table:
        a_row, b_row, aa_row, ab_row = rows
        assert b_row.n_edges == a_row.n_edges + a_row.n_vertices
        assert b_row.n_triangles == a_row.n_triangles  # adding loops adds no triangles
        assert aa_row.n_vertices == a_row.n_vertices ** 2
        assert aa_row.n_edges == (2 * a_row.n_edges) ** 2 // 2
        assert aa_row.n_triangles == 6 * a_row.n_triangles ** 2
        assert ab_row.n_triangles > aa_row.n_triangles  # self loops boost triangles
        table = format_table(rows)
        assert "A ⊗ B" in table

    def test_product_triangle_count_matches_direct_at_this_scale(self, factor):
        """At the reduced CI scale the product is materializable, so cross-check."""
        product = KroneckerGraph(factor, factor)
        if product.nnz <= 2_000_000:
            assert kron_triangle_count(factor, factor) == total_triangles(product.materialize())


class TestFig7Egonets:
    """E10: degree-3 vertices of A with 1, 2, 3 triangles map to product vertices
    whose egonet degree/triangle counts match Theorem 1 / Corollary 1."""

    @pytest.fixture(scope="class")
    def factor(self):
        return generators.web_notredame_substitute(scale=0.002, seed=7)

    def _pick_probe_vertices(self, factor):
        degrees = factor.degrees()
        triangles = vertex_triangles(factor)
        picks = {}
        for wanted in (1, 2, 3):
            candidates = np.flatnonzero((degrees == 3) & (triangles == wanted))
            if candidates.size:
                picks[wanted] = int(candidates[0])
        return picks

    def test_product_with_itself(self, factor):
        picks = self._pick_probe_vertices(factor)
        assert picks, "synthetic factor should contain degree-3 probe vertices"
        t_a = vertex_triangles(factor)
        product = KroneckerGraph(factor, factor)
        n_b = factor.n_vertices
        for tri_i, i in picks.items():
            for tri_k, k in picks.items():
                p = i * n_b + k
                ego = egonet(product, p)
                assert ego.degree_of_center() == 9  # 3 × 3
                assert ego.triangles_at_center() == 2 * t_a[i] * t_a[k]

    def test_product_with_looped_factor(self, factor):
        from repro.core import diag_of_cube

        picks = self._pick_probe_vertices(factor)
        factor_b = factor.with_self_loops()
        t_a = vertex_triangles(factor)
        cube_b = diag_of_cube(factor_b)
        product = KroneckerGraph(factor, factor_b)
        n_b = factor_b.n_vertices
        for tri_i, i in picks.items():
            for tri_k, k in picks.items():
                p = i * n_b + k
                ego = egonet(product, p)
                assert ego.degree_of_center() == 3 * 4  # d_A (d_B + 1)
                assert ego.triangles_at_center() == t_a[i] * cube_b[k]

    def test_validation_harness_agrees(self, factor):
        report = validate_egonets(factor, factor.with_self_loops(), n_samples=4, seed=2)
        assert report.passed


class TestRemark1StochasticComparison:
    """E12: stochastic Kronecker/R-MAT graphs are triangle-poor relative to the
    non-stochastic product of the same scale."""

    def test_triangle_density_gap(self):
        """Per-edge triangle density: the independent-edge stochastic Kronecker
        model closes far fewer triangles than the non-stochastic product of the
        same vertex count (Remark 1 / Seshadhri et al.)."""
        factor = generators.webgraph_like(64, seed=3)
        nonstochastic_tau = kron_triangle_count(factor, factor)
        nonstochastic_edges = (factor.nnz ** 2) // 2

        skg = generators.stochastic_kronecker_graph(k=12, seed=5)  # 4096 = 64² vertices
        skg_tau = total_triangles(skg)
        skg_density = skg_tau / max(1, skg.n_edges)

        density_nonstochastic = nonstochastic_tau / nonstochastic_edges
        assert density_nonstochastic > 10 * skg_density

    def test_tunability_by_self_loops(self):
        """Remark 1's flip side: adding self loops to a factor *boosts* the
        product's triangle count, giving the generator a tuning knob."""
        factor = generators.webgraph_like(40, seed=4)
        plain = kron_triangle_count(factor, factor)
        boosted = kron_triangle_count(factor, factor.with_self_loops())
        assert boosted > plain
