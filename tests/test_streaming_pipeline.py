"""Tests for the streaming rank pipeline: bounded blocks, aggregates, validation.

The pipeline contract under test (the paper's trillion-edge use case scaled
down): a rank streams its slice in bounded blocks, folds them into
factor-free aggregates, the aggregates allreduce across ranks, and the
reduced aggregate validates against the closed-form factor statistics — all
without any rank ever materializing its slice or the driver merging edge
lists.
"""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    KroneckerTriangleStats,
    ValidationAccumulator,
    kron_truss_decomposition,
)
from repro.graphs import NpyShardSink, load_edge_shards, read_shard_manifest
from repro.parallel import (
    SimulatedComm,
    StreamingRankAccumulator,
    distributed_generate,
    generate_rank_edges,
    iter_rank_edge_blocks,
    merge_rank_outputs,
    partition_edges,
    partition_vertex_blocks,
    stream_rank_aggregate,
)

LAYOUTS = ("edges", "vertex-blocks")


def _total_aggregate(outputs, trussness_fn=None):
    """Materialized-path reference: fold whole rank outputs into one aggregate."""
    total = None
    for out in outputs:
        trussness = trussness_fn(out.edges) if trussness_fn is not None else None
        acc = StreamingRankAccumulator.from_rank_output(out, trussness=trussness)
        total = acc if total is None else total + acc
    return total


class TestRankBlockIterator:
    def test_blocks_reassemble_rank_slice(self, weblike_small, delta_le_one_factor):
        parts = partition_edges(weblike_small.nnz, delta_le_one_factor.nnz, 3)
        stats = KroneckerTriangleStats.from_factors(weblike_small, delta_le_one_factor)
        for part in parts:
            reference = generate_rank_edges(weblike_small, delta_le_one_factor, part,
                                            stats=stats)
            blocks = list(iter_rank_edge_blocks(
                weblike_small, delta_le_one_factor, part,
                a_edges_per_block=5, stats=stats))
            edges = np.concatenate([b.edges for b in blocks], axis=0)
            edge_t = np.concatenate([b.edge_triangles for b in blocks])
            vertex_t = np.concatenate([b.source_vertex_triangles for b in blocks])
            assert np.array_equal(edges, reference.edges)
            assert np.array_equal(edge_t, reference.edge_triangles)
            assert np.array_equal(vertex_t, reference.source_vertex_triangles)

    def test_blocks_respect_memory_bound(self, small_er, triangle):
        part = partition_edges(small_er.nnz, triangle.nnz, 1)[0]
        bound = 4 * triangle.nnz
        for block in iter_rank_edge_blocks(small_er, triangle, part,
                                           a_edges_per_block=4,
                                           with_statistics=False):
            assert block.edges.shape[0] <= bound

    def test_vertex_block_partition_accepted(self, weblike_small, triangle):
        row_nnz = np.diff(weblike_small.adjacency.indptr)
        parts = partition_vertex_blocks(row_nnz, triangle.n_vertices, triangle.nnz, 4)
        total = 0
        for part in parts:
            for block in iter_rank_edge_blocks(weblike_small, triangle, part,
                                               a_edges_per_block=6,
                                               with_statistics=False):
                # every source vertex lies in the rank's product-vertex range
                if block.edges.shape[0]:
                    assert block.edges[:, 0].min() >= part.product_vertex_start
                    assert block.edges[:, 0].max() < part.product_vertex_stop
                total += block.edges.shape[0]
        assert total == weblike_small.nnz * triangle.nnz

    def test_gatherer_matches_edge_values(self, small_er_loops, small_er):
        stats = KroneckerTriangleStats.from_factors(small_er_loops, small_er)
        product = KroneckerGraph(small_er_loops, small_er)
        edges = product.edges()
        gatherer = stats.gatherer()
        assert np.array_equal(gatherer.edge_values(edges[:, 0], edges[:, 1]),
                              stats.edge_values(edges[:, 0], edges[:, 1]))
        assert np.array_equal(gatherer.vertex_values(edges[:, 0]),
                              np.asarray(stats.vertex_value(edges[:, 0])))


class TestStreamingAggregates:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("streamed", [True, False])
    def test_all_four_combinations_agree(self, weblike_small, delta_le_one_factor,
                                         layout, streamed):
        """Acceptance: streamed == materialized aggregates for every layout."""
        reference = _total_aggregate(
            distributed_generate(weblike_small, delta_le_one_factor, 4))
        if streamed:
            result = distributed_generate(weblike_small, delta_le_one_factor, 4,
                                          layout=layout, streaming=True,
                                          a_edges_per_block=7)
            candidate = result.total
            bound = 7 * delta_le_one_factor.nnz
            assert result.max_block_edges <= bound
            for acc in result.rank_aggregates:
                assert acc.max_block_edges <= bound
        else:
            candidate = _total_aggregate(
                distributed_generate(weblike_small, delta_le_one_factor, 4,
                                     layout=layout))
        assert candidate.summary() == reference.summary()

    def test_blocking_schedule_is_invisible(self, small_er, triangle):
        summaries = [
            distributed_generate(small_er, triangle, ranks, streaming=True,
                                 a_edges_per_block=block).total.summary()
            for ranks, block in ((1, 1000), (3, 2), (5, 1))
        ]
        assert summaries[0] == summaries[1] == summaries[2]

    def test_allreduce_through_simulated_comm(self, small_er, triangle):
        parts = partition_edges(small_er.nnz, triangle.nnz, 3)
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        accs = [stream_rank_aggregate(small_er, triangle, part, stats=stats,
                                      a_edges_per_block=4)
                for part in parts]
        comm = SimulatedComm(3)
        total = None
        for acc in accs:
            total = comm.allreduce_sum("agg", acc.rank, acc)
        assert total.n_edges == small_er.nnz * triangle.nnz
        assert total.summary() == (accs[0] + accs[1] + accs[2]).summary()

    def test_process_pool_matches_sequential(self, small_er, triangle):
        sequential = distributed_generate(small_er, triangle, 3, streaming=True,
                                          a_edges_per_block=5)
        parallel = distributed_generate(small_er, triangle, 3, streaming=True,
                                        a_edges_per_block=5,
                                        use_processes=True, max_workers=2)
        assert parallel.total.summary() == sequential.total.summary()
        for seq, par in zip(sequential.rank_aggregates, parallel.rank_aggregates):
            assert par.rank == seq.rank
            assert par.summary() == seq.summary()

    def test_accumulator_holds_no_edges(self, small_er, triangle):
        """The bounded-memory contract: aggregates only, never edge arrays."""
        result = distributed_generate(small_er, triangle, 2, streaming=True,
                                      a_edges_per_block=4)
        acc = result.total
        n_held = sum(
            np.asarray(getattr(acc, slot)).size
            for slot in acc.__slots__
            if isinstance(getattr(acc, slot), np.ndarray)
        )
        assert n_held < acc.n_edges  # value/count tables, not the edge list

    def test_trussness_census_streamed(self, weblike_small, delta_le_one_factor):
        result = distributed_generate(weblike_small, delta_le_one_factor, 3,
                                      streaming=True, a_edges_per_block=6,
                                      with_trussness=True)
        truss = kron_truss_decomposition(weblike_small, delta_le_one_factor)
        reference = _total_aggregate(
            distributed_generate(weblike_small, delta_le_one_factor, 3),
            trussness_fn=lambda e: truss.edge_trussness_batch(e[:, 0], e[:, 1]))
        assert result.total.trussness_census() == reference.trussness_census()
        census = result.total.trussness_census()
        assert sum(census.values()) == result.n_edges
        assert set(census) >= {2}

    def test_trussness_requires_streaming(self, small_er, triangle):
        with pytest.raises(ValueError, match="streaming"):
            distributed_generate(small_er, triangle, 2, with_trussness=True)


class TestValidationAccumulator:
    def test_streamed_run_validates(self, weblike_small, delta_le_one_factor):
        result = distributed_generate(weblike_small, delta_le_one_factor, 4,
                                      streaming=True, a_edges_per_block=9,
                                      with_trussness=True)
        report = ValidationAccumulator(weblike_small, delta_le_one_factor).validate(
            result.total)
        assert report.passed
        assert set(report.checks) == {"edge_count", "degree_histogram",
                                      "triangle_total", "triangle_histogram",
                                      "trussness_census"}

    def test_validates_without_statistics(self, small_er, triangle):
        result = distributed_generate(small_er, triangle, 2, streaming=True,
                                      with_statistics=False)
        report = ValidationAccumulator(small_er, triangle).validate(result.total)
        assert report.passed
        assert set(report.checks) == {"edge_count", "degree_histogram"}

    def test_validates_with_self_loops(self, small_er_loops, small_er):
        result = distributed_generate(small_er_loops, small_er, 3, streaming=True,
                                      a_edges_per_block=5)
        report = ValidationAccumulator(small_er_loops, small_er).validate(result.total)
        assert report.passed

    def test_dropped_block_is_caught(self, small_er, triangle):
        """Corruption: losing one block must fail at least the edge count."""
        parts = partition_edges(small_er.nnz, triangle.nnz, 3)
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        total = None
        for index, part in enumerate(parts):
            acc = StreamingRankAccumulator(part.rank, with_statistics=True)
            for b_index, block in enumerate(iter_rank_edge_blocks(
                    small_er, triangle, part, a_edges_per_block=4, stats=stats)):
                if index == 1 and b_index == 0:
                    continue  # rank 1 silently drops its first block
                acc.update(block.edges, block.edge_triangles)
            total = acc if total is None else total + acc
        report = ValidationAccumulator(small_er, triangle).validate(total)
        assert not report.passed
        assert not report.checks["edge_count"]

    def test_duplicated_block_is_caught(self, small_er, triangle):
        result = distributed_generate(small_er, triangle, 2, streaming=True,
                                      a_edges_per_block=4)
        part = partition_edges(small_er.nnz, triangle.nnz, 2)[0]
        duplicate = stream_rank_aggregate(small_er, triangle, part,
                                          a_edges_per_block=4)
        corrupted = result.total + duplicate
        report = ValidationAccumulator(small_er, triangle).validate(corrupted)
        assert not report.passed

    def test_tampered_payload_is_caught(self, small_er, triangle):
        """A slice whose triangle payload was corrupted fails the triangle checks."""
        outputs = distributed_generate(small_er, triangle, 2)
        total = None
        for index, out in enumerate(outputs):
            acc = StreamingRankAccumulator(out.rank)
            payload = out.edge_triangles.copy()
            if index == 0:
                payload[0] += 1
            acc.update(out.edges, payload)
            total = acc if total is None else total + acc
        report = ValidationAccumulator(small_er, triangle).validate(total)
        assert not report.passed
        assert not report.checks["triangle_total"]

    def test_tampered_edge_source_is_caught(self, small_er, triangle):
        """Rewiring one edge's source breaks the degree histogram."""
        outputs = distributed_generate(small_er, triangle, 2, with_statistics=False)
        edges = outputs[0].edges.copy()
        # move every edge of the first source onto the second source
        sources = np.unique(edges[:, 0])
        edges[edges[:, 0] == sources[0], 0] = sources[1]
        total = StreamingRankAccumulator(0)
        total.update(edges)
        acc1 = StreamingRankAccumulator(1)
        acc1.update(outputs[1].edges)
        report = ValidationAccumulator(small_er, triangle).validate(total + acc1)
        assert not report.passed
        assert not report.checks["degree_histogram"]


class TestSpillSink:
    def test_shards_reassemble_product(self, tmp_path, weblike_small, triangle):
        sink = NpyShardSink(tmp_path / "shards")
        result = distributed_generate(weblike_small, triangle, 3, streaming=True,
                                      a_edges_per_block=8, sink=sink)
        product = KroneckerGraph(weblike_small, triangle)
        edges = load_edge_shards(tmp_path / "shards")
        assert edges.shape[0] == result.n_edges == product.nnz
        merged = merge_rank_outputs(
            [type("O", (), {"edges": edges})()], product.n_vertices)
        assert (merged != product.materialize_adjacency()).nnz == 0

    def test_manifest_records_blocks(self, tmp_path, small_er, triangle):
        sink = NpyShardSink(tmp_path / "shards", name="test", n_vertices=48)
        distributed_generate(small_er, triangle, 2, streaming=True,
                             a_edges_per_block=4, sink=sink)
        manifest = read_shard_manifest(tmp_path / "shards")
        assert manifest["kind"] == "edge-shards"
        assert manifest["n_vertices"] == 48
        assert manifest["total_edges"] == small_er.nnz * triangle.nnz
        assert sum(s["n_edges"] for s in manifest["shards"]) == manifest["total_edges"]
        assert all(s["n_edges"] <= 4 * triangle.nnz for s in manifest["shards"])

    def test_callable_sink(self, small_er, triangle):
        seen = []
        distributed_generate(small_er, triangle, 2, streaming=True,
                             a_edges_per_block=4,
                             sink=lambda rank, block, edges: seen.append(
                                 (rank, block, edges.shape[0])))
        assert sum(m for _, _, m in seen) == small_er.nnz * triangle.nnz
        assert {rank for rank, _, _ in seen} == {0, 1}

    def test_sink_under_process_pool(self, tmp_path, small_er, triangle):
        sink = NpyShardSink(tmp_path / "shards")
        result = distributed_generate(small_er, triangle, 3, streaming=True,
                                      a_edges_per_block=4, sink=sink,
                                      use_processes=True, max_workers=2)
        edges = load_edge_shards(tmp_path / "shards")
        assert edges.shape[0] == result.n_edges


class TestVectorizedTsv:
    def test_byte_identical_to_legacy_savetxt(self, tmp_path, small_er, triangle):
        """Regression: the vectorized TSV writer reproduces the old np.savetxt
        per-row loop byte for byte."""
        from repro.parallel import stream_edges_to_file

        product = KroneckerGraph(small_er, triangle)
        new_path = tmp_path / "new.tsv"
        stream_edges_to_file(product, new_path, a_edges_per_block=7)

        legacy_path = tmp_path / "legacy.tsv"
        with legacy_path.open("w") as handle:
            handle.write(
                f"# kronecker product {product.name} n_vertices={product.n_vertices}\n")
            for block in product.iter_edge_blocks(a_edges_per_block=7):
                np.savetxt(handle, block, fmt="%d", delimiter="\t")
        assert new_path.read_bytes() == legacy_path.read_bytes()

    def test_format_edge_block_empty(self):
        from repro.parallel import format_edge_block_tsv

        assert format_edge_block_tsv(np.zeros((0, 2), dtype=np.int64)) == ""


class TestStreamingOnlyArguments:
    def test_sink_requires_streaming(self, small_er, triangle):
        with pytest.raises(ValueError, match="sink requires streaming"):
            distributed_generate(small_er, triangle, 2, sink=lambda r, b, e: None)

    def test_block_size_requires_streaming(self, small_er, triangle):
        with pytest.raises(ValueError, match="a_edges_per_block requires streaming"):
            distributed_generate(small_er, triangle, 2, a_edges_per_block=8)

    def test_result_exposes_shared_stats(self, small_er, triangle):
        result = distributed_generate(small_er, triangle, 2, streaming=True)
        assert result.stats is not None
        report = ValidationAccumulator(small_er, triangle,
                                      stats=result.stats).validate(result.total)
        assert report.passed
        assert distributed_generate(small_er, triangle, 2, streaming=True,
                                    with_statistics=False).stats is None

    def test_zero_block_size_rejected(self, small_er, triangle):
        with pytest.raises(ValueError, match="a_edges_per_block"):
            distributed_generate(small_er, triangle, 2, a_edges_per_block=0)
        with pytest.raises(ValueError, match=">= 1"):
            distributed_generate(small_er, triangle, 2, streaming=True,
                                 a_edges_per_block=0)

    def test_single_rank_total_is_detached(self, small_er, triangle):
        """Size-1 allreduce must not alias the rank's own accumulator."""
        result = distributed_generate(small_er, triangle, 1, streaming=True)
        assert result.total is not result.rank_aggregates[0]
        assert result.total.rank == -1
        assert result.total.summary() == result.rank_aggregates[0].summary()

    def test_sequential_run_builds_one_gatherer(self, small_er, triangle, monkeypatch):
        from repro.core import TriangleStatsGatherer

        calls = []
        original = TriangleStatsGatherer.__init__

        def counting_init(self, stats):
            calls.append(1)
            original(self, stats)

        monkeypatch.setattr(TriangleStatsGatherer, "__init__", counting_init)
        distributed_generate(small_er, triangle, 4, streaming=True,
                             a_edges_per_block=4)
        assert len(calls) == 1
