"""Tests for edge-list I/O and the compressed Kronecker bundle format."""

import numpy as np
import pytest

from repro.graphs import (
    DirectedGraph,
    Graph,
    NpyShardSink,
    VertexLabeledGraph,
    iter_edge_shards,
    load_edge_shards,
    load_kronecker_bundle,
    read_directed_edge_list,
    read_edge_list,
    read_shard_manifest,
    save_kronecker_bundle,
    write_edge_list,
    write_edge_shards,
)
from repro import generators


class TestEdgeListIO:
    def test_undirected_round_trip(self, tmp_path, small_er):
        path = tmp_path / "er.tsv"
        write_edge_list(small_er, path)
        back = read_edge_list(path)
        assert back == small_er

    def test_directed_round_trip(self, tmp_path, directed_small):
        path = tmp_path / "dir.tsv"
        write_edge_list(directed_small, path)
        back = read_directed_edge_list(path)
        assert back == directed_small

    def test_header_preserves_isolated_vertices(self, tmp_path):
        g = Graph.from_edges([(0, 1)], n_vertices=7)
        path = tmp_path / "iso.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.n_vertices == 7

    def test_no_header(self, tmp_path, triangle):
        path = tmp_path / "tri.tsv"
        write_edge_list(triangle, path, header=False)
        text = path.read_text()
        assert not text.startswith("#")
        assert read_edge_list(path) == triangle

    def test_explicit_n_vertices_override(self, tmp_path, triangle):
        path = tmp_path / "tri.tsv"
        write_edge_list(triangle, path, header=False)
        back = read_edge_list(path, n_vertices=10)
        assert back.n_vertices == 10

    def test_comma_separated_accepted(self, tmp_path):
        path = tmp_path / "csv.txt"
        path.write_text("0,1\n1,2\n")
        g = read_edge_list(path)
        assert g.n_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("0 1\n\n1 2\n")
        assert read_edge_list(path).n_edges == 2

    def test_self_loops_survive_round_trip(self, tmp_path):
        g = generators.looped_clique(3)
        path = tmp_path / "loops.tsv"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestKroneckerBundle:
    def test_undirected_bundle_round_trip(self, tmp_path, weblike_small):
        factor_b = weblike_small.with_self_loops()
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, factor_b, metadata={"purpose": "test"})
        a, b, meta = load_kronecker_bundle(path)
        assert a == weblike_small
        assert b == factor_b
        assert meta["purpose"] == "test"
        assert meta["factor_kinds"] == ["undirected", "undirected"]

    def test_directed_bundle_round_trip(self, tmp_path, directed_small, small_er):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, directed_small, small_er)
        a, b, _ = load_kronecker_bundle(path)
        assert isinstance(a, DirectedGraph)
        assert a == directed_small
        assert isinstance(b, Graph)
        assert b == small_er

    def test_labeled_bundle_round_trip(self, tmp_path, labeled_small, small_er):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, labeled_small, small_er)
        a, b, meta = load_kronecker_bundle(path)
        assert isinstance(a, VertexLabeledGraph)
        assert a.labels.tolist() == labeled_small.labels.tolist()
        assert meta["factor_kinds"][0] == "labeled"

    def test_bundle_stores_names(self, tmp_path, weblike_small, triangle):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, triangle)
        a, b, meta = load_kronecker_bundle(path)
        assert a.name == weblike_small.name
        assert meta["factor_names"][1] == triangle.name

    def test_bundle_is_compressed_representation(self, tmp_path, weblike_small):
        """The bundle is tiny compared to the product it describes."""
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, weblike_small)
        from repro.core import KroneckerGraph

        product_nnz = KroneckerGraph(weblike_small, weblike_small).nnz
        assert path.stat().st_size < product_nnz  # bytes << product entries


class TestEdgeShards:
    def test_write_and_load_round_trip(self, tmp_path, small_er, triangle):
        from repro.core import KroneckerGraph

        product = KroneckerGraph(small_er, triangle)
        written = write_edge_shards(product, tmp_path / "shards",
                                    a_edges_per_block=5)
        assert written == product.nnz
        edges = load_edge_shards(tmp_path / "shards")
        assert np.array_equal(edges, product.edges())

    def test_manifest_contents(self, tmp_path, small_er, triangle):
        from repro.core import KroneckerGraph

        product = KroneckerGraph(small_er, triangle)
        write_edge_shards(product, tmp_path / "shards", a_edges_per_block=5,
                          metadata={"source": "test"})
        manifest = read_shard_manifest(tmp_path / "shards")
        assert manifest["kind"] == "edge-shards"
        assert manifest["name"] == product.name
        assert manifest["n_vertices"] == product.n_vertices
        assert manifest["total_edges"] == product.nnz
        assert manifest["metadata"] == {"source": "test"}
        # every shard is one bounded block
        assert all(s["n_edges"] <= 5 * triangle.nnz for s in manifest["shards"])

    def test_iter_matches_block_schedule(self, tmp_path, small_er, triangle):
        from repro.core import KroneckerGraph

        product = KroneckerGraph(small_er, triangle)
        write_edge_shards(product, tmp_path / "shards", a_edges_per_block=7)
        streamed = list(product.iter_edge_blocks(a_edges_per_block=7))
        loaded = list(iter_edge_shards(tmp_path / "shards"))
        assert len(loaded) == len(streamed)
        for got, expected in zip(loaded, streamed):
            assert np.array_equal(got, expected)

    def test_max_edges_cap(self, tmp_path, small_er, triangle):
        from repro.core import KroneckerGraph

        product = KroneckerGraph(small_er, triangle)
        written = write_edge_shards(product, tmp_path / "shards",
                                    a_edges_per_block=5, max_edges=17)
        assert written == 17
        assert load_edge_shards(tmp_path / "shards").shape[0] == 17

    def test_sink_is_picklable(self, tmp_path):
        import pickle

        sink = NpyShardSink(tmp_path / "shards", name="x", n_vertices=9)
        clone = pickle.loads(pickle.dumps(sink))
        assert clone.directory == sink.directory
        assert clone.name == "x" and clone.n_vertices == 9

    def test_finalize_is_idempotent(self, tmp_path):
        sink = NpyShardSink(tmp_path / "shards")
        sink.write(0, 0, np.asarray([[1, 2], [3, 4]], dtype=np.int64))
        first = sink.finalize()
        second = sink.finalize()
        assert first == second
        assert first["total_edges"] == 2

    def test_finalize_publishes_atomically(self, tmp_path):
        """finalize leaves no temp file behind, and a crash before the
        os.replace leaves no manifest at all (never a torn one)."""
        sink = NpyShardSink(tmp_path / "shards")
        sink.write(0, 0, np.asarray([[1, 2]], dtype=np.int64))
        sink.finalize()
        assert not (tmp_path / "shards" / "manifest.json.tmp").exists()
        assert read_shard_manifest(tmp_path / "shards")["total_edges"] == 1

    def test_truncated_manifest_wrapped_in_value_error(self, tmp_path):
        import json

        sink = NpyShardSink(tmp_path / "shards")
        sink.write(0, 0, np.asarray([[1, 2]], dtype=np.int64))
        sink.finalize()
        manifest_path = tmp_path / "shards" / "manifest.json"
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="manifest.json.*not valid JSON"):
            read_shard_manifest(tmp_path / "shards")
        with pytest.raises(ValueError, match="truncated or interrupted"):
            try:
                read_shard_manifest(tmp_path / "shards")
            except ValueError as exc:
                assert isinstance(exc.__cause__, json.JSONDecodeError)
                raise

    def test_shard_width_must_match_manifest(self, tmp_path):
        sink = NpyShardSink(tmp_path / "shards", payload_columns=("w",))
        sink.write(0, 0, np.asarray([[1, 2, 9]], dtype=np.int64))
        sink.finalize()
        np.save(sink.shard_path(0, 0), np.asarray([[1, 2]], dtype=np.int64))
        with pytest.raises(ValueError, match="require 3 columns"):
            next(iter_edge_shards(tmp_path / "shards"))

    def test_manifest_missing_raises(self, tmp_path):
        (tmp_path / "not-shards").mkdir()
        with pytest.raises(FileNotFoundError):
            read_shard_manifest(tmp_path / "not-shards")

    def test_wrong_manifest_kind_rejected(self, tmp_path):
        import json

        d = tmp_path / "other"
        d.mkdir()
        (d / "manifest.json").write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="edge-shard"):
            read_shard_manifest(d)

    def test_v1_manifest_upgraded_transparently(self, tmp_path, small_er, triangle):
        """The reader fills the v2-era fields so consumers see one shape."""
        from repro.core import KroneckerGraph

        write_edge_shards(KroneckerGraph(small_er, triangle), tmp_path / "shards")
        manifest = read_shard_manifest(tmp_path / "shards")
        assert manifest["format_version"] == 1
        assert manifest["sorted_by"] is None
        assert manifest["payload_columns"] == ["src", "dst"]

    def test_rerun_into_same_directory_discards_stale_shards(self, tmp_path, small_er, triangle):
        """Regression: a re-spill must not fold a previous run's shards in."""
        from repro.core import KroneckerGraph

        product = KroneckerGraph(small_er, triangle)
        write_edge_shards(product, tmp_path / "shards", a_edges_per_block=4)
        first = read_shard_manifest(tmp_path / "shards")
        write_edge_shards(product, tmp_path / "shards", a_edges_per_block=64)
        second = read_shard_manifest(tmp_path / "shards")
        assert second["total_edges"] == first["total_edges"] == product.nnz
        assert len(second["shards"]) < len(first["shards"])
        assert load_edge_shards(tmp_path / "shards").shape[0] == product.nnz


class TestManifestValidation:
    """Corrupted or foreign manifests must fail with a field-naming ValueError
    (never a bare KeyError deep inside a consumer)."""

    @staticmethod
    def _write_manifest(directory, payload):
        import json

        directory.mkdir(exist_ok=True)
        (directory / "manifest.json").write_text(json.dumps(payload))
        return directory

    @staticmethod
    def _valid_v1():
        return {"kind": "edge-shards", "format_version": 1, "name": "x",
                "n_vertices": 4, "total_edges": 1,
                "shards": [{"file": "edges-r00000-b000000.npy", "n_edges": 1}]}

    def test_valid_v1_passes(self, tmp_path):
        d = self._write_manifest(tmp_path / "ok", self._valid_v1())
        assert read_shard_manifest(d)["total_edges"] == 1

    def test_not_an_object(self, tmp_path):
        d = self._write_manifest(tmp_path / "bad", ["not", "a", "dict"])
        with pytest.raises(ValueError, match="JSON object"):
            read_shard_manifest(d)

    def test_missing_kind(self, tmp_path):
        payload = self._valid_v1()
        del payload["kind"]
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match="edge-shard"):
            read_shard_manifest(d)

    @pytest.mark.parametrize("field", ["format_version", "n_vertices",
                                       "total_edges", "shards"])
    def test_missing_required_field_named(self, tmp_path, field):
        payload = self._valid_v1()
        del payload[field]
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match=field):
            read_shard_manifest(d)

    def test_unsupported_version(self, tmp_path):
        payload = self._valid_v1()
        payload["format_version"] = 99
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match="format_version 99"):
            read_shard_manifest(d)

    def test_shards_not_a_list(self, tmp_path):
        payload = self._valid_v1()
        payload["shards"] = {"file": "x.npy"}
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match="shards"):
            read_shard_manifest(d)

    def test_shard_entry_missing_field_named_with_index(self, tmp_path):
        payload = self._valid_v1()
        payload["shards"] = [{"file": "a.npy", "n_edges": 1}, {"file": "b.npy"}]
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match=r"shards\[1\].*n_edges"):
            read_shard_manifest(d)

    def test_v2_requires_ranges_per_shard(self, tmp_path):
        payload = self._valid_v1()
        payload.update(format_version=2, sorted_by="source",
                       payload_columns=["src", "dst"])
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match="src_min"):
            read_shard_manifest(d)

    def test_v2_requires_sort_metadata(self, tmp_path):
        payload = self._valid_v1()
        payload["format_version"] = 2
        payload["shards"][0].update(src_min=0, src_max=3)
        d = self._write_manifest(tmp_path / "bad", payload)
        with pytest.raises(ValueError, match="sorted_by"):
            read_shard_manifest(d)
