"""Tests for edge-list I/O and the compressed Kronecker bundle format."""

import numpy as np
import pytest

from repro.graphs import (
    DirectedGraph,
    Graph,
    VertexLabeledGraph,
    load_kronecker_bundle,
    read_directed_edge_list,
    read_edge_list,
    save_kronecker_bundle,
    write_edge_list,
)
from repro import generators


class TestEdgeListIO:
    def test_undirected_round_trip(self, tmp_path, small_er):
        path = tmp_path / "er.tsv"
        write_edge_list(small_er, path)
        back = read_edge_list(path)
        assert back == small_er

    def test_directed_round_trip(self, tmp_path, directed_small):
        path = tmp_path / "dir.tsv"
        write_edge_list(directed_small, path)
        back = read_directed_edge_list(path)
        assert back == directed_small

    def test_header_preserves_isolated_vertices(self, tmp_path):
        g = Graph.from_edges([(0, 1)], n_vertices=7)
        path = tmp_path / "iso.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.n_vertices == 7

    def test_no_header(self, tmp_path, triangle):
        path = tmp_path / "tri.tsv"
        write_edge_list(triangle, path, header=False)
        text = path.read_text()
        assert not text.startswith("#")
        assert read_edge_list(path) == triangle

    def test_explicit_n_vertices_override(self, tmp_path, triangle):
        path = tmp_path / "tri.tsv"
        write_edge_list(triangle, path, header=False)
        back = read_edge_list(path, n_vertices=10)
        assert back.n_vertices == 10

    def test_comma_separated_accepted(self, tmp_path):
        path = tmp_path / "csv.txt"
        path.write_text("0,1\n1,2\n")
        g = read_edge_list(path)
        assert g.n_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("0 1\n\n1 2\n")
        assert read_edge_list(path).n_edges == 2

    def test_self_loops_survive_round_trip(self, tmp_path):
        g = generators.looped_clique(3)
        path = tmp_path / "loops.tsv"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestKroneckerBundle:
    def test_undirected_bundle_round_trip(self, tmp_path, weblike_small):
        factor_b = weblike_small.with_self_loops()
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, factor_b, metadata={"purpose": "test"})
        a, b, meta = load_kronecker_bundle(path)
        assert a == weblike_small
        assert b == factor_b
        assert meta["purpose"] == "test"
        assert meta["factor_kinds"] == ["undirected", "undirected"]

    def test_directed_bundle_round_trip(self, tmp_path, directed_small, small_er):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, directed_small, small_er)
        a, b, _ = load_kronecker_bundle(path)
        assert isinstance(a, DirectedGraph)
        assert a == directed_small
        assert isinstance(b, Graph)
        assert b == small_er

    def test_labeled_bundle_round_trip(self, tmp_path, labeled_small, small_er):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, labeled_small, small_er)
        a, b, meta = load_kronecker_bundle(path)
        assert isinstance(a, VertexLabeledGraph)
        assert a.labels.tolist() == labeled_small.labels.tolist()
        assert meta["factor_kinds"][0] == "labeled"

    def test_bundle_stores_names(self, tmp_path, weblike_small, triangle):
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, triangle)
        a, b, meta = load_kronecker_bundle(path)
        assert a.name == weblike_small.name
        assert meta["factor_names"][1] == triangle.name

    def test_bundle_is_compressed_representation(self, tmp_path, weblike_small):
        """The bundle is tiny compared to the product it describes."""
        path = tmp_path / "bundle.npz"
        save_kronecker_bundle(path, weblike_small, weblike_small)
        from repro.core import KroneckerGraph

        product_nnz = KroneckerGraph(weblike_small, weblike_small).nnz
        assert path.stat().st_size < product_nnz  # bytes << product entries
