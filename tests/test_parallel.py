"""Tests for the partitioned, communication-free generation and streaming layer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import generators
from repro.core import KroneckerGraph, KroneckerTriangleStats, kron_triangle_count
from repro.parallel import (
    RankContext,
    SimulatedComm,
    balance_statistics,
    distributed_generate,
    generate_rank_edges,
    merge_rank_outputs,
    partition_edges,
    partition_vertex_blocks,
    run_on_ranks,
    stream_degree_histogram,
    stream_edge_count,
    stream_edges_to_file,
)


class TestEdgePartition:
    def test_partitions_cover_all_entries(self):
        parts = partition_edges(nnz_a=103, nnz_b=7, n_ranks=4)
        assert parts[0].a_entry_start == 0
        assert parts[-1].a_entry_stop == 103
        for prev, cur in zip(parts, parts[1:]):
            assert prev.a_entry_stop == cur.a_entry_start

    def test_product_edge_accounting(self):
        parts = partition_edges(nnz_a=50, nnz_b=9, n_ranks=3)
        assert sum(p.product_edges for p in parts) == 50 * 9

    def test_single_rank(self):
        parts = partition_edges(20, 5, 1)
        assert len(parts) == 1
        assert parts[0].n_a_entries == 20

    def test_more_ranks_than_entries(self):
        parts = partition_edges(3, 2, 8)
        assert len(parts) == 8
        assert sum(p.n_a_entries for p in parts) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_edges(10, 5, 0)
        with pytest.raises(ValueError):
            partition_edges(-1, 5, 2)

    def test_balance_statistics(self):
        parts = partition_edges(100, 10, 4)
        stats = balance_statistics(parts)
        assert stats["n_ranks"] == 4
        assert stats["imbalance"] >= 1.0
        assert stats["max"] >= stats["mean"]

    def test_balance_statistics_empty(self):
        assert balance_statistics([])["n_ranks"] == 0


class TestVertexBlockPartition:
    def test_blocks_cover_rows(self, weblike_small):
        row_nnz = np.diff(weblike_small.adjacency.indptr)
        parts = partition_vertex_blocks(row_nnz, n_vertices_b=4, nnz_b=12, n_ranks=5)
        assert parts[0].a_row_start == 0
        assert parts[-1].a_row_stop == weblike_small.n_vertices
        for prev, cur in zip(parts, parts[1:]):
            assert prev.a_row_stop == cur.a_row_start

    def test_edge_load_accounting(self, weblike_small):
        row_nnz = np.diff(weblike_small.adjacency.indptr)
        parts = partition_vertex_blocks(row_nnz, 4, 12, 3)
        assert sum(p.product_edges for p in parts) == int(row_nnz.sum()) * 12

    def test_product_vertex_ranges(self, weblike_small):
        row_nnz = np.diff(weblike_small.adjacency.indptr)
        n_b = 7
        parts = partition_vertex_blocks(row_nnz, n_b, 20, 4)
        for p in parts:
            assert p.product_vertex_start == p.a_row_start * n_b
            assert p.n_product_vertices == (p.a_row_stop - p.a_row_start) * n_b

    def test_reasonable_balance_on_scale_free_factor(self):
        factor = generators.webgraph_like(200, seed=3)
        row_nnz = np.diff(factor.adjacency.indptr)
        parts = partition_vertex_blocks(row_nnz, 10, 100, 8)
        stats = balance_statistics(parts)
        assert stats["imbalance"] < 3.0


class TestDistributedGeneration:
    def test_union_equals_materialized_product(self, weblike_small, delta_le_one_factor):
        product = KroneckerGraph(weblike_small, delta_le_one_factor)
        outputs = distributed_generate(weblike_small, delta_le_one_factor, 5,
                                       with_statistics=False)
        merged = merge_rank_outputs(outputs, product.n_vertices)
        assert (merged != product.materialize_adjacency()).nnz == 0

    def test_no_duplicate_edges_across_ranks(self, small_er, triangle):
        outputs = distributed_generate(small_er, triangle, 4, with_statistics=False)
        merged = merge_rank_outputs(outputs, small_er.n_vertices * 3)
        assert merged.max() == 1  # every edge emitted by exactly one rank

    def test_edge_counts_per_rank(self, small_er, triangle):
        outputs = distributed_generate(small_er, triangle, 3, with_statistics=False)
        assert sum(o.n_edges for o in outputs) == small_er.nnz * triangle.nnz

    def test_rank_statistics_match_formulas(self, small_er, triangle):
        outputs = distributed_generate(small_er, triangle, 2, with_statistics=True)
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        for out in outputs:
            for (p, q), edge_t, vertex_t in zip(out.edges, out.edge_triangles,
                                                out.source_vertex_triangles):
                assert edge_t == stats.edge_value(int(p), int(q))
                assert vertex_t == stats.vertex_value(int(p))

    def test_single_rank_output(self, k4, triangle):
        parts = partition_edges(k4.nnz, triangle.nnz, 1)
        out = generate_rank_edges(k4, triangle, parts[0], with_statistics=False)
        assert out.n_edges == k4.nnz * triangle.nnz

    def test_empty_rank(self, k4, triangle):
        parts = partition_edges(k4.nnz, triangle.nnz, k4.nnz + 5)
        empty_rank = [p for p in parts if p.n_a_entries == 0][0]
        out = generate_rank_edges(k4, triangle, empty_rank, with_statistics=False)
        assert out.n_edges == 0

    def test_merge_empty(self):
        assert merge_rank_outputs([], 10).nnz == 0


class TestSharedStatisticsAndExecutor:
    def test_factor_statistics_built_exactly_once(self, small_er, triangle, monkeypatch):
        """Regression: distributed_generate(..., n_ranks=k) must not rebuild the
        factored statistics per rank — one build, shared by every rank."""
        import repro.parallel.distributed as distributed_mod

        calls = []
        original = KroneckerTriangleStats.from_factors.__func__

        def counting_from_factors(cls, factor_a, factor_b):
            calls.append(1)
            return original(cls, factor_a, factor_b)

        monkeypatch.setattr(distributed_mod.KroneckerTriangleStats, "from_factors",
                            classmethod(counting_from_factors))
        outputs = distributed_generate(small_er, triangle, 6, with_statistics=True)
        assert len(outputs) == 6
        assert len(calls) == 1

    def test_no_statistics_build_when_disabled(self, small_er, triangle, monkeypatch):
        import repro.parallel.distributed as distributed_mod

        calls = []
        monkeypatch.setattr(
            distributed_mod.KroneckerTriangleStats, "from_factors",
            classmethod(lambda cls, a, b: calls.append(1)),
        )
        distributed_generate(small_er, triangle, 3, with_statistics=False)
        assert calls == []

    def test_explicit_stats_reused_by_generate_rank_edges(self, small_er, triangle):
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        parts = partition_edges(small_er.nnz, triangle.nnz, 2)
        for part in parts:
            out = generate_rank_edges(small_er, triangle, part,
                                      with_statistics=True, stats=stats)
            expected = stats.edge_values(out.edges[:, 0], out.edges[:, 1])
            assert np.array_equal(out.edge_triangles, expected)

    def test_rank_statistics_are_vectorized_batches(self, small_er, triangle):
        """The per-rank payload equals the batched kernel output (shape + dtype)."""
        outputs = distributed_generate(small_er, triangle, 2, with_statistics=True)
        for out in outputs:
            assert out.edge_triangles.dtype == np.int64
            assert out.edge_triangles.shape == (out.n_edges,)
            assert out.source_vertex_triangles.shape == (out.n_edges,)

    def test_process_executor_matches_sequential(self, small_er, triangle):
        sequential = distributed_generate(small_er, triangle, 3, with_statistics=True)
        parallel = distributed_generate(small_er, triangle, 3, with_statistics=True,
                                        use_processes=True, max_workers=2)
        assert [o.rank for o in parallel] == [o.rank for o in sequential]
        for seq, par in zip(sequential, parallel):
            assert np.array_equal(seq.edges, par.edges)
            assert np.array_equal(seq.edge_triangles, par.edge_triangles)
            assert np.array_equal(seq.source_vertex_triangles, par.source_vertex_triangles)


class TestLayoutEquivalence:
    def test_vertex_blocks_merge_to_same_product(self, weblike_small, delta_le_one_factor):
        """Edge-partition and vertex-block runs cover the identical CSR product."""
        product = KroneckerGraph(weblike_small, delta_le_one_factor)
        by_edges = distributed_generate(weblike_small, delta_le_one_factor, 5,
                                        with_statistics=False)
        by_blocks = distributed_generate(weblike_small, delta_le_one_factor, 5,
                                         with_statistics=False,
                                         layout="vertex-blocks")
        merged_e = merge_rank_outputs(by_edges, product.n_vertices)
        merged_v = merge_rank_outputs(by_blocks, product.n_vertices)
        assert (merged_e != merged_v).nnz == 0
        assert (merged_v != product.materialize_adjacency()).nnz == 0
        assert merged_v.max() == 1  # every edge generated exactly once

    def test_vertex_block_statistics_match_edge_layout(self, small_er, triangle):
        by_edges = distributed_generate(small_er, triangle, 3)
        by_blocks = distributed_generate(small_er, triangle, 3,
                                         layout="vertex-blocks")
        cat = lambda outs, field: np.concatenate([getattr(o, field) for o in outs])
        # Same multiset of (edge, payload) rows, possibly ordered differently.
        def canon(outs):
            edges = np.concatenate([o.edges for o in outs], axis=0)
            rows = np.stack([edges[:, 0], edges[:, 1],
                             cat(outs, "edge_triangles"),
                             cat(outs, "source_vertex_triangles")], axis=1)
            return rows[np.lexsort(rows.T[::-1])]
        assert np.array_equal(canon(by_edges), canon(by_blocks))

    def test_process_pool_bit_identical_vertex_blocks(self, small_er, triangle):
        sequential = distributed_generate(small_er, triangle, 3,
                                          layout="vertex-blocks")
        parallel = distributed_generate(small_er, triangle, 3,
                                        layout="vertex-blocks",
                                        use_processes=True, max_workers=2)
        for seq, par in zip(sequential, parallel):
            assert np.array_equal(seq.edges, par.edges)
            assert np.array_equal(seq.edge_triangles, par.edge_triangles)
            assert np.array_equal(seq.source_vertex_triangles,
                                  par.source_vertex_triangles)

    def test_unknown_layout_rejected(self, small_er, triangle):
        with pytest.raises(ValueError, match="layout"):
            distributed_generate(small_er, triangle, 2, layout="hilbert-curve")


class TestMergeFailureModes:
    def test_duplicated_rank_slice_detected(self, small_er, triangle):
        """A rank emitting twice shows up as entries > 1 in the merge."""
        outputs = distributed_generate(small_er, triangle, 3, with_statistics=False)
        corrupted = list(outputs) + [outputs[1]]  # rank 1 double-counted
        merged = merge_rank_outputs(corrupted, small_er.n_vertices * 3)
        assert merged.max() == 2
        product = KroneckerGraph(small_er, triangle)
        assert (merged != product.materialize_adjacency()).nnz > 0

    def test_spurious_edges_detected(self, small_er, triangle):
        """An edge no rank should own breaks the merge-vs-product comparison."""
        from repro.parallel import RankOutput

        outputs = list(distributed_generate(small_er, triangle, 2,
                                            with_statistics=False))
        product = KroneckerGraph(small_er, triangle)
        adj = product.materialize_adjacency().tocoo()
        present = set(zip(adj.row.tolist(), adj.col.tolist()))
        spurious = next((p, q) for p in range(product.n_vertices)
                        for q in range(product.n_vertices)
                        if (p, q) not in present)
        empty = np.zeros(0, dtype=np.int64)
        outputs.append(RankOutput(rank=2,
                                  edges=np.asarray([spurious], dtype=np.int64),
                                  edge_triangles=empty,
                                  source_vertex_triangles=empty))
        merged = merge_rank_outputs(outputs, product.n_vertices)
        assert (merged != product.materialize_adjacency()).nnz == 1

    def test_missing_rank_slice_detected(self, small_er, triangle):
        outputs = distributed_generate(small_er, triangle, 3, with_statistics=False)
        merged = merge_rank_outputs(outputs[:-1], small_er.n_vertices * 3)
        product = KroneckerGraph(small_er, triangle)
        assert (merged != product.materialize_adjacency()).nnz > 0


class TestSimulatedComm:
    def test_gather_waits_for_all_ranks(self):
        comm = SimulatedComm(3)
        assert comm.gather("x", 0, "a") is None
        assert comm.gather("x", 2, "c") is None
        assert comm.gather("x", 1, "b") == ["a", "b", "c"]

    def test_allreduce_sum(self):
        comm = SimulatedComm(2)
        assert comm.allreduce_sum("t", 0, 5) is None
        assert comm.allreduce_sum("t", 1, 7) == 12

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)

    def test_run_on_ranks_sequential(self):
        results = run_on_ranks(4, lambda ctx: ctx.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_rank_context_root(self):
        assert RankContext(0, 4).is_root
        assert not RankContext(3, 4).is_root

    def test_run_on_ranks_validation(self):
        with pytest.raises(ValueError):
            run_on_ranks(0, lambda ctx: None)

    def test_distributed_triangle_total_via_allreduce(self, small_er, triangle):
        """Each rank computes the triangle mass of its own edges; the reduction
        over ranks equals 3·τ(C) (each triangle counted once per its 6 directed
        edge slots / 2) — here we just check the per-rank Σ Δ equals the global one."""
        comm = SimulatedComm(3)
        outputs = distributed_generate(small_er, triangle, 3, with_statistics=True)
        total = None
        for out in outputs:
            total = comm.allreduce_sum("delta", out.rank, int(out.edge_triangles.sum()))
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        assert total == int(stats.edge_matrix().sum())
        assert total == 6 * kron_triangle_count(small_er, triangle)


class TestStreaming:
    def test_stream_edge_count(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        assert stream_edge_count(product, a_edges_per_block=11) == product.nnz

    def test_stream_degree_histogram_matches_rowsums(self, small_er, k4):
        product = KroneckerGraph(small_er, k4)
        hist = stream_degree_histogram(product, a_edges_per_block=13)
        rowsums = np.asarray(product.materialize_adjacency().sum(axis=1)).ravel()
        values, counts = np.unique(rowsums, return_counts=True)
        assert hist == {int(v): int(c) for v, c in zip(values, counts)}

    def test_stream_edges_to_file(self, tmp_path, k4, triangle):
        product = KroneckerGraph(k4, triangle)
        path = tmp_path / "edges.tsv"
        written = stream_edges_to_file(product, path, a_edges_per_block=3)
        assert written == product.nnz
        lines = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert len(lines) == product.nnz

    def test_stream_edges_to_file_max_edges(self, tmp_path, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        path = tmp_path / "prefix.tsv"
        written = stream_edges_to_file(product, path, max_edges=50)
        assert written == 50
