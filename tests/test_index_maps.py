"""Tests for the α/β/γ Kronecker index maps (0-based and paper 1-based)."""

import numpy as np
import pytest

from repro.core import index_maps as im


class TestZeroBasedMaps:
    def test_alpha_scalar(self):
        assert im.alpha(7, 3) == 2

    def test_beta_scalar(self):
        assert im.beta(7, 3) == 1

    def test_gamma_scalar(self):
        assert im.gamma(2, 1, 3) == 7

    def test_round_trip_scalar(self):
        for p in range(30):
            i, k = im.factor_indices(p, 4)
            assert im.product_index(i, k, 4) == p

    def test_round_trip_array(self):
        p = np.arange(100)
        i, k = im.factor_indices(p, 7)
        assert np.array_equal(im.product_index(i, k, 7), p)

    def test_alpha_array_dtype(self):
        out = im.alpha(np.arange(10), 3)
        assert out.dtype == np.int64

    def test_factor_indices_ranges(self):
        p = np.arange(6 * 5)
        i, k = im.factor_indices(p, 5)
        assert i.min() == 0 and i.max() == 5
        assert k.min() == 0 and k.max() == 4

    def test_block_size_one(self):
        p = np.arange(10)
        i, k = im.factor_indices(p, 1)
        assert np.array_equal(i, p)
        assert np.array_equal(k, np.zeros_like(p))

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            im.alpha(3, 0)
        with pytest.raises(ValueError):
            im.gamma(1, 1, -2)


class TestOneBasedMaps:
    def test_paper_definitions(self):
        # With n = 3: index 4 (1-based) is block 2, offset 1.
        assert im.alpha_1based(4, 3) == 2
        assert im.beta_1based(4, 3) == 1
        assert im.gamma_1based(2, 1, 3) == 4

    def test_round_trip_1based(self):
        n = 5
        for i in range(1, 26):
            x, y = im.alpha_1based(i, n), im.beta_1based(i, n)
            assert im.gamma_1based(x, y, n) == i

    def test_one_based_vs_zero_based_shift(self):
        n = 4
        idx = np.arange(1, 33)
        assert np.array_equal(im.alpha_1based(idx, n) - 1, im.alpha(idx - 1, n))
        assert np.array_equal(im.beta_1based(idx, n) - 1, im.beta(idx - 1, n))

    def test_one_based_ranges(self):
        idx = np.arange(1, 13)
        assert im.beta_1based(idx, 4).min() == 1
        assert im.beta_1based(idx, 4).max() == 4


class TestKroneckerEntryIdentity:
    def test_entry_identity_small(self):
        """C[γ(i,k), γ(j,l)] == A[i,j] * B[k,l] for a random dense pair."""
        rng = np.random.default_rng(0)
        a = (rng.random((3, 3)) < 0.6).astype(int)
        b = (rng.random((4, 4)) < 0.6).astype(int)
        c = np.kron(a, b)
        for i in range(3):
            for j in range(3):
                for k in range(4):
                    for l in range(4):
                        p = im.product_index(i, k, 4)
                        q = im.product_index(j, l, 4)
                        assert c[p, q] == a[i, j] * b[k, l]
