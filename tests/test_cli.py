"""Tests for the repro-kron command-line interface."""

import json

import numpy as np
import pytest

from repro import cli
from repro.graphs import load_kronecker_bundle, read_edge_list


@pytest.fixture
def bundle_path(tmp_path):
    """A small generated bundle shared by the read-only sub-command tests."""
    path = tmp_path / "bundle.npz"
    rc = cli.main([
        "generate", str(path),
        "--factor-a", "weblike", "--size-a", "80",
        "--factor-b", "tpa", "--size-b", "30",
        "--seed", "5",
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_generate_writes_bundle(self, bundle_path):
        factor_a, factor_b, meta = load_kronecker_bundle(bundle_path)
        assert factor_a.n_vertices == 80
        assert factor_b.n_vertices == 30
        assert meta["cli"] == "generate"

    def test_generate_self_loops_flag(self, tmp_path):
        path = tmp_path / "looped.npz"
        rc = cli.main([
            "generate", str(path),
            "--factor-a", "clique", "--size-a", "5",
            "--factor-b", "clique", "--size-b", "4",
            "--self-loops-b",
        ])
        assert rc == 0
        _, factor_b, _ = load_kronecker_bundle(path)
        assert factor_b.n_self_loops == 4

    @pytest.mark.parametrize("recipe", ["ba", "er", "hub-cycle", "looped-clique"])
    def test_all_recipes(self, tmp_path, recipe):
        path = tmp_path / f"{recipe}.npz"
        rc = cli.main([
            "generate", str(path),
            "--factor-a", recipe, "--size-a", "20",
            "--factor-b", "clique", "--size-b", "4",
        ])
        assert rc == 0
        assert path.exists()

    def test_generate_output_mentions_product(self, tmp_path, capsys):
        path = tmp_path / "b.npz"
        cli.main(["generate", str(path), "--size-a", "30", "--size-b", "20"])
        out = capsys.readouterr().out
        assert "product:" in out
        assert "vertices" in out


class TestStats:
    def test_stats_prints_table(self, bundle_path, capsys):
        rc = cli.main(["stats", str(bundle_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Matrix" in out
        assert "A ⊗ B" in out
        assert "clustering" in out


class TestValidate:
    def test_egonet_validation_passes(self, bundle_path, capsys):
        rc = cli.main(["validate", str(bundle_path), "--egonets", "4", "--seed", "1"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_full_validation_passes(self, bundle_path, capsys):
        rc = cli.main(["validate", str(bundle_path), "--egonets", "2", "--full"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "undirected_product" in out


class TestStream:
    def test_stream_writes_edges(self, bundle_path, tmp_path):
        out_path = tmp_path / "edges.tsv"
        rc = cli.main(["stream", str(bundle_path), str(out_path), "--max-edges", "500"])
        assert rc == 0
        lines = [l for l in out_path.read_text().splitlines() if not l.startswith("#")]
        assert len(lines) == 500

    def test_stream_full_product(self, tmp_path):
        bundle = tmp_path / "tiny.npz"
        cli.main(["generate", str(bundle), "--factor-a", "clique", "--size-a", "4",
                  "--factor-b", "clique", "--size-b", "3"])
        out_path = tmp_path / "edges.tsv"
        rc = cli.main(["stream", str(bundle), str(out_path)])
        assert rc == 0
        factor_a, factor_b, _ = load_kronecker_bundle(bundle)
        lines = [l for l in out_path.read_text().splitlines() if not l.startswith("#")]
        assert len(lines) == factor_a.nnz * factor_b.nnz

    def test_stream_default_is_npy_shards(self, bundle_path, tmp_path):
        """A non-.tsv output spills binary shards with a manifest by default."""
        from repro.graphs import load_edge_shards, read_shard_manifest

        out_dir = tmp_path / "shards"
        rc = cli.main(["stream", str(bundle_path), str(out_dir)])
        assert rc == 0
        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        manifest = read_shard_manifest(out_dir)
        assert manifest["total_edges"] == factor_a.nnz * factor_b.nnz
        assert load_edge_shards(out_dir).shape == (manifest["total_edges"], 2)

    def test_stream_explicit_tsv_format(self, bundle_path, tmp_path):
        out_path = tmp_path / "edges.dat"
        rc = cli.main(["stream", str(bundle_path), str(out_path),
                       "--format", "tsv", "--max-edges", "40"])
        assert rc == 0
        lines = [l for l in out_path.read_text().splitlines() if not l.startswith("#")]
        assert len(lines) == 40

    def test_stream_ranks_pipeline_validates(self, bundle_path, tmp_path, capsys):
        from repro.graphs import read_shard_manifest

        out_dir = tmp_path / "rank-shards"
        rc = cli.main(["stream", str(bundle_path), str(out_dir),
                       "--ranks", "3", "--block", "16"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "PASS" in captured
        assert "peak block" in captured
        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        manifest = read_shard_manifest(out_dir)
        assert manifest["total_edges"] == factor_a.nnz * factor_b.nnz

    def test_stream_ranks_rejects_tsv(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["stream", str(bundle_path), str(tmp_path / "out.tsv"),
                      "--ranks", "2"])

    def test_stream_ranks_rejects_max_edges(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["stream", str(bundle_path), str(tmp_path / "d"),
                      "--ranks", "2", "--max-edges", "10"])

    def test_generate_stream_spills_shards(self, tmp_path):
        from repro.graphs import read_shard_manifest

        bundle = tmp_path / "tiny.npz"
        shards = tmp_path / "spill"
        rc = cli.main(["generate", str(bundle), "--factor-a", "clique",
                       "--size-a", "4", "--factor-b", "clique", "--size-b", "3",
                       "--stream", str(shards)])
        assert rc == 0
        factor_a, factor_b, _ = load_kronecker_bundle(bundle)
        manifest = read_shard_manifest(shards)
        assert manifest["total_edges"] == factor_a.nnz * factor_b.nnz


class TestCompactAndQuery:
    @pytest.fixture
    def store_dir(self, bundle_path, tmp_path):
        """Spill → compact, through the CLI only."""
        spill = tmp_path / "spill"
        rc = cli.main(["stream", str(bundle_path), str(spill),
                       "--ranks", "3", "--block", "16"])
        assert rc == 0
        store = tmp_path / "store"
        rc = cli.main(["compact", str(spill), str(store),
                       "--target-edges", "2000"])
        assert rc == 0
        return store

    def test_compact_writes_manifest_v2(self, store_dir, tmp_path, capsys):
        from repro.graphs import read_shard_manifest

        manifest = read_shard_manifest(store_dir)
        assert manifest["format_version"] == 2
        assert manifest["sorted_by"] == "source"
        # Re-shard through the CLI again to check the reported summary.
        rc = cli.main(["compact", str(store_dir), str(tmp_path / "again"),
                       "--target-edges", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "source-sorted shards" in out
        assert "manifest v2" in out

    def test_query_degree_matches_product(self, store_dir, bundle_path, capsys):
        from repro.core import KroneckerGraph

        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        product = KroneckerGraph(factor_a, factor_b)
        rc = cli.main(["query", str(store_dir), "--degree", "17"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"degree(17) = {product.degree(17)}" in out
        assert "decoded" in out

    def test_query_neighbors(self, store_dir, capsys):
        rc = cli.main(["query", str(store_dir), "--neighbors", "17",
                       "--limit", "4"])
        assert rc == 0
        assert "neighbors(17)" in capsys.readouterr().out

    def test_query_egonet(self, store_dir, capsys):
        rc = cli.main(["query", str(store_dir), "--egonet", "17"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "egonet(17)" in out
        assert "triangles" in out

    def test_query_range(self, store_dir, capsys):
        rc = cli.main(["query", str(store_dir), "--range", "0", "50",
                       "--limit", "3"])
        assert rc == 0
        assert "edges_in_range(0, 50)" in capsys.readouterr().out

    def test_query_requires_exactly_one_operation(self, store_dir):
        with pytest.raises(SystemExit):
            cli.main(["query", str(store_dir)])
        with pytest.raises(SystemExit):
            cli.main(["query", str(store_dir), "--degree", "1",
                      "--egonet", "2"])

    def test_query_rejects_uncompacted_spill(self, bundle_path, tmp_path):
        spill = tmp_path / "spill"
        cli.main(["stream", str(bundle_path), str(spill), "--ranks", "2"])
        with pytest.raises(ValueError, match="compact_shards"):
            cli.main(["query", str(spill), "--degree", "0"])

    def test_stream_async_io(self, bundle_path, tmp_path, capsys):
        from repro.graphs import read_shard_manifest

        out_dir = tmp_path / "async-shards"
        rc = cli.main(["stream", str(bundle_path), str(out_dir),
                       "--ranks", "3", "--block", "16", "--async-io"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "async writer" in out
        assert "PASS" in out
        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        manifest = read_shard_manifest(out_dir)
        assert manifest["total_edges"] == factor_a.nnz * factor_b.nnz

    def test_async_io_requires_ranks(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit, match="--ranks"):
            cli.main(["stream", str(bundle_path), str(tmp_path / "d"),
                      "--async-io"])

    def test_async_io_rejects_processes(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit, match="in-process"):
            cli.main(["stream", str(bundle_path), str(tmp_path / "d"),
                      "--ranks", "2", "--async-io", "--processes"])


class TestPayloadCli:
    @pytest.fixture
    def payload_store_dir(self, bundle_path, tmp_path):
        """stream --payload → compact, through the CLI only."""
        spill = tmp_path / "pspill"
        rc = cli.main(["stream", str(bundle_path), str(spill),
                       "--ranks", "3", "--block", "16",
                       "--payload", "triangles,trussness"])
        assert rc == 0
        store = tmp_path / "pstore"
        rc = cli.main(["compact", str(spill), str(store),
                       "--target-edges", "2000"])
        assert rc == 0
        return store

    def test_stream_payload_records_columns(self, bundle_path, tmp_path, capsys):
        from repro.graphs import load_edge_shards, read_shard_manifest

        spill = tmp_path / "spill"
        rc = cli.main(["stream", str(bundle_path), str(spill),
                       "--ranks", "3", "--block", "16",
                       "--payload", "triangles,trussness"])
        assert rc == 0
        assert "payload columns: triangles, trussness" in capsys.readouterr().out
        manifest = read_shard_manifest(spill)
        assert manifest["payload_columns"] == ["src", "dst",
                                               "triangles", "trussness"]
        assert load_edge_shards(spill).shape[1] == 4

    def test_stream_payload_single_rank(self, bundle_path, tmp_path):
        from repro.core import KroneckerTriangleStats
        from repro.graphs import load_edge_shards

        spill = tmp_path / "spill"
        rc = cli.main(["stream", str(bundle_path), str(spill),
                       "--block", "64", "--payload", "triangles"])
        assert rc == 0
        rows = load_edge_shards(spill)
        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        assert np.array_equal(rows[:, 2],
                              stats.edge_values(rows[:, 0], rows[:, 1]))

    def test_stream_payload_rejects_tsv(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit, match="shard format"):
            cli.main(["stream", str(bundle_path), str(tmp_path / "out.tsv"),
                      "--payload", "triangles"])

    def test_unknown_payload_name_preserves_existing_spill(self, bundle_path,
                                                           tmp_path):
        """A typo'd --payload must fail before the sink clears the output
        directory — an earlier spill stays intact and readable."""
        from repro.graphs import read_shard_manifest

        spill = tmp_path / "spill"
        rc = cli.main(["stream", str(bundle_path), str(spill),
                       "--ranks", "2", "--payload", "triangles"])
        assert rc == 0
        before = read_shard_manifest(spill)
        with pytest.raises(SystemExit, match="pagerank"):
            cli.main(["stream", str(bundle_path), str(spill),
                      "--ranks", "2", "--payload", "pagerank"])
        assert read_shard_manifest(spill) == before
        assert len(list(spill.glob("*.npy"))) == len(before["shards"])

    def test_query_payload_neighbors_and_egonet(self, payload_store_dir, capsys):
        rc = cli.main(["query", str(payload_store_dir), "--neighbors", "17",
                       "--payload", "--limit", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "triangles=" in out and "trussness=" in out
        rc = cli.main(["query", str(payload_store_dir), "--egonet", "17",
                       "--payload"])
        assert rc == 0
        assert "trussness total" in capsys.readouterr().out

    def test_query_json_output_parses(self, payload_store_dir, bundle_path,
                                      capsys):
        import json

        from repro.core import KroneckerGraph, KroneckerTriangleStats

        rc = cli.main(["query", str(payload_store_dir), "--range", "0", "40",
                       "--payload", "--json", "--limit", "5"])
        assert rc == 0
        result = json.loads(capsys.readouterr().out)
        assert result["query"] == "edges_in_range"
        assert result["columns"] == ["src", "dst", "triangles", "trussness"]
        assert len(result["edges"]) == min(5, result["n_edges"])
        factor_a, factor_b, _ = load_kronecker_bundle(bundle_path)
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        for src, dst, triangles, _trussness in result["edges"]:
            assert triangles == int(stats.edge_value(src, dst))
        assert result["store"]["payload_columns"] == ["triangles", "trussness"]

        product = KroneckerGraph(factor_a, factor_b)
        rc = cli.main(["query", str(payload_store_dir), "--degree", "17",
                       "--json"])
        assert rc == 0
        result = json.loads(capsys.readouterr().out)
        assert result["degree"] == product.degree(17)

    def test_query_payload_requires_payload_store(self, bundle_path, tmp_path):
        spill = tmp_path / "spill"
        cli.main(["stream", str(bundle_path), str(spill), "--ranks", "2"])
        store = tmp_path / "store"
        cli.main(["compact", str(spill), str(store)])
        with pytest.raises(SystemExit, match="no payload columns"):
            cli.main(["query", str(store), "--degree", "0", "--payload"])


class TestObservabilityCli:
    """``stats --connect`` (watch loop, Prometheus), ``profile`` and
    ``health`` against a live single-store server."""

    @pytest.fixture(scope="class")
    def served_store(self, tmp_path_factory):
        bundle = tmp_path_factory.mktemp("obs-cli") / "bundle.npz"
        assert cli.main(["generate", str(bundle),
                         "--factor-a", "weblike", "--size-a", "40",
                         "--factor-b", "tpa", "--size-b", "15",
                         "--seed", "5"]) == 0
        spill = bundle.parent / "spill"
        assert cli.main(["stream", str(bundle), str(spill),
                         "--ranks", "2", "--block", "16"]) == 0
        store = bundle.parent / "store"
        assert cli.main(["compact", str(spill), str(store),
                         "--target-edges", "2000"]) == 0
        return store

    @pytest.fixture(scope="class")
    def server(self, served_store):
        from repro.serve import ThreadedServer

        # slow_query_us=0 flags every request, so the flight recorder is
        # never empty — the watch pane has something to show.
        with ThreadedServer(served_store, slow_query_us=0) as handle:
            yield handle

    @pytest.fixture
    def address(self, server):
        return f"{server.host}:{server.port}"

    def test_stats_prometheus_renders_registry(self, address, capsys):
        assert cli.main(["stats", "--connect", address,
                         "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# HELP" in out and "# TYPE" in out
        assert 'le="+Inf"' in out  # cumulative histogram tail

    def test_stats_watch_loop_prints_events_pane(self, address, capsys,
                                                 monkeypatch):
        # One full refresh, then the fake sleep delivers the ctrl-C.
        monkeypatch.setattr(cli.time, "sleep",
                            lambda _s: (_ for _ in ()).throw(
                                KeyboardInterrupt))
        assert cli.main(["stats", "--connect", address,
                         "--watch", "0.1"]) == 0
        out = capsys.readouterr().out
        assert '"query": "stats"' in out
        assert "recent events:" in out
        assert "serve.slow_request" in out

    def test_profile_command_prints_role_ranking(self, address, capsys):
        assert cli.main(["profile", "--connect", address,
                         "--seconds", "0.3", "--hz", "300"]) == 0
        out = capsys.readouterr().out
        assert f"300 Hz x 0.3 s on {address}:" in out
        assert "event_loop" in out

    def test_profile_collapsed_emits_folded_stacks(self, address, capsys):
        assert cli.main(["profile", "--connect", address,
                         "--seconds", "0.3", "--hz", "300",
                         "--collapsed"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack and int(count) > 0

    def test_profile_rejects_nonpositive_window(self, address):
        with pytest.raises(SystemExit, match="--seconds"):
            cli.main(["profile", "--connect", address, "--seconds", "0"])

    def test_health_command_reports_ok(self, address, capsys):
        assert cli.main(["health", "--connect", address]) == 0
        out = capsys.readouterr().out
        assert f"{address}: ok" in out
        assert "profiler:" in out and "events:" in out

    def test_health_json_round_trips(self, address, capsys):
        assert cli.main(["health", "--connect", address, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"] == "health"
        assert payload["status"] == "ok"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_recipe_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["generate", str(tmp_path / "x.npz"), "--factor-a", "nonsense"])

    def test_build_parser_prog_name(self):
        assert cli.build_parser().prog == "repro-kron"


class TestStreamFlagValidation:
    def test_processes_requires_ranks(self, bundle_path, tmp_path):
        with pytest.raises(SystemExit, match="--ranks"):
            cli.main(["stream", str(bundle_path), str(tmp_path / "d"),
                      "--processes"])
