"""Tests for distribution diagnostics and the Section VI summary tables."""

import numpy as np
import pytest

from repro import generators
from repro.analysis import (
    SummaryRow,
    complementary_cdf,
    degree_histogram,
    format_count,
    format_table,
    graph_summary,
    heavy_tail_summary,
    hill_tail_exponent,
    histogram,
    kronecker_summary,
    product_histogram,
)
from repro.core import KroneckerGraph, kron_degrees
from repro.triangles import total_triangles


class TestHistograms:
    def test_histogram_basic(self):
        assert histogram(np.array([1, 1, 2, 5])) == {1: 2, 2: 1, 5: 1}

    def test_degree_histogram_clique(self):
        assert degree_histogram(generators.complete_graph(5)) == {4: 5}

    def test_product_histogram_matches_kron_degrees(self, small_er, k4):
        expected = histogram(kron_degrees(small_er, k4))
        got = product_histogram(degree_histogram(small_er), degree_histogram(k4))
        assert got == expected

    def test_product_histogram_counts_total(self):
        a = {1: 3, 2: 2}
        b = {2: 4, 3: 1}
        hist = product_histogram(a, b)
        assert sum(hist.values()) == 5 * 5

    def test_complementary_cdf(self):
        values, ccdf = complementary_cdf({1: 2, 3: 2})
        assert values.tolist() == [1, 3]
        assert ccdf.tolist() == [1.0, 0.5]

    def test_complementary_cdf_empty(self):
        values, ccdf = complementary_cdf({})
        assert values.size == 0 and ccdf.size == 0


class TestTailDiagnostics:
    def test_hill_on_pareto_sample(self):
        rng = np.random.default_rng(0)
        alpha = 2.5
        sample = (1.0 / rng.random(20000)) ** (1.0 / alpha)
        estimate = hill_tail_exponent(sample, tail_fraction=0.05)
        assert estimate == pytest.approx(alpha, rel=0.2)

    def test_hill_small_sample_nan(self):
        assert np.isnan(hill_tail_exponent(np.array([1.0, 2.0])))

    def test_hill_constant_sample(self):
        assert hill_tail_exponent(np.ones(100)) == float("inf")

    def test_heavy_tail_summary_fields(self, weblike_small):
        summary = heavy_tail_summary(weblike_small.degrees())
        assert summary["n"] == weblike_small.n_vertices
        assert summary["max"] >= summary["mean"]
        assert 0 < summary["max_over_n"] <= 1

    def test_heavy_tail_summary_empty(self):
        summary = heavy_tail_summary(np.array([]))
        assert summary["n"] == 0

    def test_max_ratio_squares_under_product(self):
        """Section III.A: the product's max-degree/n ratio is the factor ratios multiplied."""
        factor = generators.webgraph_like(80, seed=2)
        factor_summary = heavy_tail_summary(factor.degrees())
        product_summary = heavy_tail_summary(kron_degrees(factor, factor))
        assert product_summary["max_over_n"] == pytest.approx(factor_summary["max_over_n"] ** 2)


class TestFormatting:
    def test_format_count_suffixes(self):
        assert format_count(532) == "532"
        assert format_count(325_729) == "325.7K"
        assert format_count(1_090_108) == "1.09M"
        assert format_count(106_099_381_441) == "106.1B"
        assert format_count(2_376_670_903_328) == "2.377T"

    def test_graph_summary(self, hub_cycle):
        row = graph_summary(hub_cycle)
        assert row.n_vertices == 5
        assert row.n_edges == 8
        assert row.n_triangles == 4

    def test_kronecker_summary_matches_materialized(self, weblike_small, triangle):
        row = kronecker_summary(weblike_small, triangle)
        product = KroneckerGraph(weblike_small, triangle).materialize()
        assert row.n_vertices == product.n_vertices
        assert row.n_edges == product.n_edges
        assert row.n_triangles == total_triangles(product)

    def test_kronecker_summary_never_materializes(self):
        """Summary rows are available even for products with ~10^10 entries."""
        factor = generators.webgraph_like(1500, seed=8)
        row = kronecker_summary(factor, factor)
        assert row.n_vertices == 1500 ** 2
        assert row.n_edges == (factor.nnz ** 2) // 2
        assert row.n_triangles == 6 * total_triangles(factor) ** 2

    def test_format_table_alignment(self, hub_cycle, k4):
        table = format_table([graph_summary(hub_cycle), graph_summary(k4)])
        lines = table.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("Matrix")
        assert all(len(line) > 0 for line in lines)

    def test_format_table_without_header(self, k4):
        table = format_table([graph_summary(k4)], header=False)
        assert "Matrix" not in table
