"""Tests for the out-of-core shard store (repro.store).

Covers the three layers — compaction/manifest v2, the ShardStore query
layer, and the async writer sink — plus the spill edge cases: zero-edge
ranks, single-shard directories, and idempotent re-compaction.  The
acceptance-criterion check that queries decode only the manifest-selected
shards uses a counting hook over the store's file loader.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink, load_edge_shards, read_shard_manifest
from repro.graphs.egonet import egonet
from repro.parallel import distributed_generate
from repro.store import AsyncShardSink, ShardStore, compact_shards
import repro.store.query as query_mod


def _sorted_edges(edges: np.ndarray) -> np.ndarray:
    return edges[np.lexsort((edges[:, 1], edges[:, 0]))]


@pytest.fixture
def product(weblike_small, delta_le_one_factor) -> KroneckerGraph:
    return KroneckerGraph(weblike_small, delta_le_one_factor)


@pytest.fixture
def spill_dir(tmp_path, product, weblike_small, delta_le_one_factor):
    """A 4-rank per-block spill of the product (v1 manifest)."""
    sink = NpyShardSink(tmp_path / "spill", name=product.name,
                        n_vertices=product.n_vertices)
    distributed_generate(weblike_small, delta_le_one_factor, 4,
                         streaming=True, a_edges_per_block=8, sink=sink)
    return tmp_path / "spill"


@pytest.fixture
def store_dir(tmp_path, spill_dir):
    compact_shards(spill_dir, tmp_path / "store", target_shard_edges=1500)
    return tmp_path / "store"


class TestCompaction:
    def test_manifest_v2_schema(self, store_dir, product):
        manifest = read_shard_manifest(store_dir)
        assert manifest["format_version"] == 2
        assert manifest["sorted_by"] == "source"
        assert manifest["payload_columns"] == ["src", "dst"]
        assert manifest["total_edges"] == product.nnz
        assert manifest["n_vertices"] == product.n_vertices
        for shard in manifest["shards"]:
            assert shard["src_min"] <= shard["src_max"]

    def test_edges_survive_and_sort(self, store_dir, product):
        edges = load_edge_shards(store_dir)
        assert np.array_equal(edges, _sorted_edges(product.edges()))

    def test_target_shard_size_respected(self, store_dir):
        manifest = read_shard_manifest(store_dir)
        assert all(s["n_edges"] == 1500 for s in manifest["shards"][:-1])
        assert manifest["shards"][-1]["n_edges"] <= 1500

    def test_ranges_match_shard_contents(self, store_dir):
        manifest = read_shard_manifest(store_dir)
        for shard in manifest["shards"]:
            edges = np.load(store_dir / shard["file"])
            assert shard["src_min"] == int(edges[0, 0])
            assert shard["src_max"] == int(edges[-1, 0])
            assert np.all(np.diff(edges[:, 0]) >= 0)

    def test_idempotent_recompaction(self, tmp_path, store_dir):
        """Compacting an already-compacted store reproduces it exactly."""
        compact_shards(store_dir, tmp_path / "again", target_shard_edges=1500)
        first = read_shard_manifest(store_dir)
        second = read_shard_manifest(tmp_path / "again")
        assert second["shards"] == first["shards"]
        for shard in first["shards"]:
            assert np.array_equal(np.load(store_dir / shard["file"]),
                                  np.load(tmp_path / "again" / shard["file"]))

    def test_resharding_to_new_target(self, tmp_path, store_dir, product):
        compact_shards(store_dir, tmp_path / "coarse", target_shard_edges=10_000)
        coarse = read_shard_manifest(tmp_path / "coarse")
        assert len(coarse["shards"]) < len(read_shard_manifest(store_dir)["shards"])
        assert np.array_equal(load_edge_shards(tmp_path / "coarse"),
                              _sorted_edges(product.edges()))

    def test_same_directory_rejected(self, spill_dir):
        with pytest.raises(ValueError, match="different directory"):
            compact_shards(spill_dir, spill_dir)

    def test_stale_output_cleared(self, tmp_path, spill_dir, product):
        dest = tmp_path / "store"
        compact_shards(spill_dir, dest, target_shard_edges=300)
        n_fine = len(read_shard_manifest(dest)["shards"])
        compact_shards(spill_dir, dest, target_shard_edges=5000)
        manifest = read_shard_manifest(dest)
        assert len(manifest["shards"]) < n_fine
        files = {p.name for p in dest.glob("*.npy")}
        assert files == {s["file"] for s in manifest["shards"]}
        assert load_edge_shards(dest).shape[0] == product.nnz

    def test_invalid_parameters(self, spill_dir, tmp_path):
        with pytest.raises(ValueError, match="target_shard_edges"):
            compact_shards(spill_dir, tmp_path / "x", target_shard_edges=0)
        with pytest.raises(ValueError, match="merge_chunk_edges"):
            compact_shards(spill_dir, tmp_path / "x", merge_chunk_edges=0)

    def test_tiny_merge_chunk_still_correct(self, tmp_path, spill_dir, product):
        """A pathological 1-edge merge chunk exercises many merge rounds."""
        compact_shards(spill_dir, tmp_path / "tiny", target_shard_edges=700,
                       merge_chunk_edges=1)
        assert np.array_equal(load_edge_shards(tmp_path / "tiny"),
                              _sorted_edges(product.edges()))

    def test_hub_source_larger_than_merge_chunk(self, tmp_path):
        """A hub vertex whose edge group dwarfs the merge chunk and spans
        every run exercises the bounded destination-level tie merge."""
        rng = np.random.default_rng(3)
        hub_dsts = rng.permutation(90)
        all_edges = [np.stack([np.full(90, 7), hub_dsts], axis=1)]
        sink = NpyShardSink(tmp_path / "spill", n_vertices=100)
        for rank in range(3):
            other = np.stack([rng.integers(0, 100, 20),
                              rng.integers(0, 100, 20)], axis=1)
            block = np.concatenate([all_edges[0][rank * 30:(rank + 1) * 30], other])
            all_edges.append(other)
            sink.write(rank, 0, block.astype(np.int64))
        sink.finalize()
        compact_shards(tmp_path / "spill", tmp_path / "store",
                       target_shard_edges=16, merge_chunk_edges=4)
        expected = _sorted_edges(np.concatenate(all_edges[1:] + all_edges[:1]))
        assert np.array_equal(load_edge_shards(tmp_path / "store"), expected)

    def test_metadata_carried_and_merged(self, tmp_path, product, small_er, triangle):
        from repro.graphs import write_edge_shards

        src = KroneckerGraph(small_er, triangle)
        write_edge_shards(src, tmp_path / "s", a_edges_per_block=5,
                          metadata={"origin": "spill", "keep": True})
        manifest = compact_shards(tmp_path / "s", tmp_path / "d",
                                  metadata={"origin": "compact"})
        assert manifest["metadata"]["origin"] == "compact"
        assert manifest["metadata"]["keep"] is True
        assert manifest["metadata"]["compaction"]["target_shard_edges"] == 262_144

    def test_corrupt_spill_total_detected(self, tmp_path, spill_dir):
        manifest_path = spill_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["total_edges"] += 7
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="corrupt"):
            compact_shards(spill_dir, tmp_path / "d")


class TestSpillEdgeCases:
    def test_zero_edge_rank_shards(self, tmp_path):
        """Ranks that produce zero edges leave empty shards; compaction and
        queries shrug them off."""
        sink = NpyShardSink(tmp_path / "spill", n_vertices=10)
        sink.write(0, 0, np.asarray([[3, 4], [1, 2]], dtype=np.int64))
        sink.write(1, 0, np.zeros((0, 2), dtype=np.int64))
        sink.write(2, 0, np.zeros((0, 2), dtype=np.int64))
        sink.finalize()
        manifest = compact_shards(tmp_path / "spill", tmp_path / "store")
        assert manifest["total_edges"] == 2
        assert len(manifest["shards"]) == 1
        store = ShardStore(tmp_path / "store")
        assert store.neighbors(1).tolist() == [2]
        assert store.degree(5) == 0

    def test_entirely_empty_spill(self, tmp_path):
        sink = NpyShardSink(tmp_path / "spill", n_vertices=6)
        sink.write(0, 0, np.zeros((0, 2), dtype=np.int64))
        sink.finalize()
        manifest = compact_shards(tmp_path / "spill", tmp_path / "store")
        assert manifest["shards"] == [] and manifest["total_edges"] == 0
        store = ShardStore(tmp_path / "store")
        assert store.degree(0) == 0
        assert store.neighbors(3).size == 0
        assert store.edges_in_range(0, 6).shape == (0, 2)
        assert store.egonet(2).n_vertices == 1

    def test_single_shard_directory(self, tmp_path, small_er, triangle):
        from repro.graphs import write_edge_shards

        product = KroneckerGraph(small_er, triangle)
        write_edge_shards(product, tmp_path / "spill", a_edges_per_block=10_000)
        assert len(read_shard_manifest(tmp_path / "spill")["shards"]) == 1
        manifest = compact_shards(tmp_path / "spill", tmp_path / "store")
        assert len(manifest["shards"]) == 1
        store = ShardStore(tmp_path / "store")
        assert np.array_equal(store.edges_in_range(0, product.n_vertices),
                              _sorted_edges(product.edges()))


class TestShardStoreQueries:
    def test_rejects_uncompacted_spill(self, spill_dir):
        with pytest.raises(ValueError, match="compact_shards"):
            ShardStore(spill_dir)

    def test_rejects_bad_cache_size(self, store_dir):
        with pytest.raises(ValueError, match="cache_shards"):
            ShardStore(store_dir, cache_shards=0)

    def test_payload_width_mismatch_detected_on_decode(self, store_dir):
        """A manifest promising payload columns the shard files do not carry
        fails with a file-naming error at first decode, not a silent
        mis-slice."""
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["payload_columns"] = ["src", "dst", "triangles"]
        manifest_path.write_text(json.dumps(manifest))
        store = ShardStore(store_dir)
        assert store.payload_columns == ("triangles",)
        with pytest.raises(ValueError, match="payload_columns"):
            store.degree(0)

    def test_manifest_payload_columns_must_start_with_endpoints(self, store_dir):
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["payload_columns"] = ["dst", "src"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="payload_columns"):
            ShardStore(store_dir)

    def test_rejects_unordered_shard_ranges(self, store_dir):
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][0], manifest["shards"][1] = (
            manifest["shards"][1], manifest["shards"][0])
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="nondecreasing"):
            ShardStore(store_dir)

    def test_edges_in_range_equals_materialized(self, store_dir, product):
        store = ShardStore(store_dir)
        reference = _sorted_edges(product.edges())
        assert np.array_equal(store.edges_in_range(0, product.n_vertices),
                              reference)
        lo, hi = product.n_vertices // 3, 2 * product.n_vertices // 3
        window = reference[(reference[:, 0] >= lo) & (reference[:, 0] < hi)]
        assert np.array_equal(store.edges_in_range(lo, hi), window)
        assert store.edges_in_range(5, 5).shape == (0, 2)
        assert store.edges_in_range(7, 3).shape == (0, 2)

    def test_degrees_match_product(self, store_dir, product):
        store = ShardStore(store_dir)
        vs = np.arange(product.n_vertices)
        assert np.array_equal(store.degrees(vs), product.degrees())
        edges = product.edges()
        assert np.array_equal(store.out_degrees(vs),
                              np.bincount(edges[:, 0],
                                          minlength=product.n_vertices))

    def test_scalar_wrappers_match_batch(self, store_dir, product, rng):
        store = ShardStore(store_dir)
        for v in map(int, rng.choice(product.n_vertices, 10, replace=False)):
            assert store.degree(v) == product.degree(v)
            assert store.out_degree(v) == int(store.out_degrees([v])[0])

    def test_neighbors_match_product(self, store_dir, product, rng):
        store = ShardStore(store_dir)
        for v in map(int, rng.choice(product.n_vertices, 10, replace=False)):
            assert np.array_equal(store.neighbors(v), product.neighbors(v))

    def test_self_loops_excluded_like_kronecker(self, tmp_path, small_er_loops):
        """B with self loops ⇒ product with self loops; degree conventions
        must keep matching KroneckerGraph."""
        from repro.graphs import write_edge_shards

        product = KroneckerGraph(small_er_loops, small_er_loops)
        write_edge_shards(product, tmp_path / "spill", a_edges_per_block=16)
        compact_shards(tmp_path / "spill", tmp_path / "store",
                       target_shard_edges=900)
        store = ShardStore(tmp_path / "store")
        assert product.has_self_loops
        vs = np.arange(product.n_vertices)
        assert np.array_equal(store.degrees(vs), product.degrees())
        loops = np.flatnonzero(store.out_degrees(vs) - store.degrees(vs))
        assert loops.size == product.n_self_loops
        v = int(loops[0])
        assert store.has_edge(v, v)
        assert v not in store.neighbors(v)
        assert v in store.neighbors(v, include_self_loop=True)

    def test_has_edge(self, store_dir, product, rng):
        store = ShardStore(store_dir)
        edges = product.edges()
        for row in rng.choice(edges.shape[0], 10, replace=False):
            p, q = map(int, edges[row])
            assert store.has_edge(p, q)
        assert not store.has_edge(0, 0)

    def test_egonet_matches_product(self, store_dir, product, rng):
        store = ShardStore(store_dir)
        for v in map(int, rng.choice(product.n_vertices, 8, replace=False)):
            ego_store, ego_graph = store.egonet(v), egonet(product, v)
            assert np.array_equal(ego_store.vertices, ego_graph.vertices)
            assert (ego_store.graph.adjacency
                    != ego_graph.graph.adjacency).nnz == 0
            assert ego_store.triangles_at_center() == ego_graph.triangles_at_center()
            assert ego_store.degree_of_center() == product.degree(v)

    def test_subgraph_matches_product(self, store_dir, product, rng):
        store = ShardStore(store_dir)
        vs = rng.choice(product.n_vertices, 25, replace=False)
        got = store.subgraph_adjacency(vs)
        expected = product.subgraph_adjacency(vs)
        assert (got != expected).nnz == 0

    def test_subgraph_rejects_duplicates(self, store_dir):
        store = ShardStore(store_dir)
        with pytest.raises(ValueError, match="duplicates"):
            store.subgraph_adjacency([1, 2, 1])

    def test_vertex_out_of_range(self, store_dir, product):
        store = ShardStore(store_dir)
        with pytest.raises(IndexError):
            store.degree(product.n_vertices)
        with pytest.raises(IndexError):
            store.out_degrees([-1])

    def test_empty_batch(self, store_dir):
        store = ShardStore(store_dir)
        assert store.out_degrees(np.zeros(0, dtype=np.int64)).shape == (0,)
        assert store.edges_for_sources([]).shape == (0, 2)


class TestShardStoreIO:
    def test_only_overlapping_shards_decoded(self, store_dir, monkeypatch):
        """Acceptance criterion: a vertex query touches only the shards the
        manifest's range search selects (counted via a file-open hook)."""
        opened = []
        real_load = query_mod._load_shard_file

        def counting_load(path, mmap_mode=None):
            opened.append(path.name)
            return real_load(path, mmap_mode=mmap_mode)

        monkeypatch.setattr(query_mod, "_load_shard_file", counting_load)
        store = ShardStore(store_dir, cache_shards=2)
        manifest = read_shard_manifest(store_dir)
        v = manifest["shards"][0]["src_max"]  # worst case: a boundary vertex
        expected = [s["file"] for s in manifest["shards"]
                    if s["src_min"] <= v <= s["src_max"]]
        store.degree(v)
        store.neighbors(v)
        assert sorted(set(opened)) == sorted(expected)
        assert len(set(opened)) < len(manifest["shards"])
        assert store.shard_reads == len(opened)

    def test_range_query_decodes_only_window(self, store_dir, monkeypatch):
        opened = []
        real_load = query_mod._load_shard_file
        monkeypatch.setattr(
            query_mod, "_load_shard_file",
            lambda path, **kw: opened.append(path.name) or real_load(path, **kw))
        store = ShardStore(store_dir, cache_shards=8)
        manifest = read_shard_manifest(store_dir)
        lo = manifest["shards"][1]["src_min"]
        hi = manifest["shards"][2]["src_max"] + 1
        store.edges_in_range(lo, hi)
        expected = {s["file"] for s in manifest["shards"]
                    if s["src_min"] < hi and s["src_max"] >= lo}
        assert set(opened) == expected

    def test_lru_serves_repeats_without_disk(self, store_dir):
        store = ShardStore(store_dir, cache_shards=4)
        v = store.n_vertices // 2
        store.neighbors(v)
        reads = store.shard_reads
        for _ in range(5):
            store.neighbors(v)
        assert store.shard_reads == reads
        assert store.cache_hits >= 5

    def test_lru_eviction_bounds_memory(self, store_dir):
        store = ShardStore(store_dir, cache_shards=1)
        store.edges_in_range(0, store.n_vertices)
        assert len(store._cache) == 1
        assert store.shard_reads == store.n_shards

    def test_clear_cache(self, store_dir):
        store = ShardStore(store_dir, cache_shards=4)
        v = store.n_vertices // 2
        store.neighbors(v)
        reads = store.shard_reads
        store.clear_cache()
        store.neighbors(v)
        assert store.shard_reads > reads

    def test_v1_manifest_still_loads(self, spill_dir, product):
        """PR 2 sinks keep working: v1 manifests load, upgrade, and read."""
        manifest = read_shard_manifest(spill_dir)
        assert manifest["format_version"] == 1
        assert manifest["sorted_by"] is None
        assert manifest["payload_columns"] == ["src", "dst"]
        assert load_edge_shards(spill_dir).shape[0] == product.nnz


class TestAsyncShardSink:
    def test_equivalent_to_sync_sink(self, tmp_path, weblike_small,
                                     delta_le_one_factor, spill_dir):
        sink = AsyncShardSink(tmp_path / "aspill", queue_blocks=3,
                              n_vertices=KroneckerGraph(
                                  weblike_small, delta_le_one_factor).n_vertices)
        distributed_generate(weblike_small, delta_le_one_factor, 4,
                             streaming=True, a_edges_per_block=8, sink=sink)
        sync_manifest = read_shard_manifest(spill_dir)
        async_manifest = read_shard_manifest(tmp_path / "aspill")
        assert async_manifest["shards"] == sync_manifest["shards"]
        assert np.array_equal(load_edge_shards(tmp_path / "aspill"),
                              load_edge_shards(spill_dir))
        assert sink.blocks_written == len(async_manifest["shards"])

    def test_write_snapshots_caller_buffer(self, tmp_path):
        """A caller reusing its block buffer must not corrupt queued writes."""
        sink = AsyncShardSink(tmp_path / "s", queue_blocks=4)
        block = np.asarray([[1, 2], [3, 4]], dtype=np.int64)
        sink.write(0, 0, block)
        block[:] = -1
        sink.finalize()
        assert np.array_equal(np.load(tmp_path / "s" / "edges-r00000-b000000.npy"),
                              [[1, 2], [3, 4]])

    def test_flush_waits_for_disk(self, tmp_path):
        sink = AsyncShardSink(tmp_path / "s", queue_blocks=8)
        for i in range(6):
            sink.write(0, i, np.asarray([[i, i + 1]], dtype=np.int64))
        sink.flush()
        assert sink.blocks_written == 6
        assert len(list((tmp_path / "s").glob("edges-*.npy"))) == 6

    def test_finalize_idempotent_and_restartable(self, tmp_path):
        sink = AsyncShardSink(tmp_path / "s")
        sink.write(0, 0, np.asarray([[0, 1]], dtype=np.int64))
        first = sink.finalize()
        assert first == sink.finalize()
        sink.write(0, 1, np.asarray([[1, 2]], dtype=np.int64))
        assert sink.finalize()["total_edges"] == 2

    def test_writer_errors_surface(self, tmp_path, monkeypatch):
        sink = AsyncShardSink(tmp_path / "s", queue_blocks=2)

        class _FailingSink:
            def write(self, rank, block_index, edges):
                raise OSError("disk full")

        monkeypatch.setattr(sink, "_inner", _FailingSink())
        sink.write(0, 0, np.asarray([[0, 1]], dtype=np.int64))
        with pytest.raises(RuntimeError, match="async shard writer"):
            sink.flush()

    def test_not_picklable(self, tmp_path):
        sink = AsyncShardSink(tmp_path / "s")
        with pytest.raises(TypeError, match="NpyShardSink"):
            pickle.dumps(sink)

    def test_full_pipeline_through_store(self, tmp_path, weblike_small,
                                         delta_le_one_factor):
        """generate → async spill → compact → query, never materializing C."""
        product = KroneckerGraph(weblike_small, delta_le_one_factor)
        sink = AsyncShardSink(tmp_path / "spill", name=product.name,
                              n_vertices=product.n_vertices)
        distributed_generate(weblike_small, delta_le_one_factor, 3,
                             streaming=True, a_edges_per_block=16, sink=sink)
        compact_shards(tmp_path / "spill", tmp_path / "store",
                       target_shard_edges=2000)
        store = ShardStore(tmp_path / "store")
        assert store.total_edges == product.nnz
        assert np.array_equal(store.degrees(np.arange(product.n_vertices)),
                              product.degrees())


class TestConcurrentStore:
    """The decoded-shard LRU and its counters are concurrent-safe (PR 5):
    one store instance is shared by every server connection, so cache
    mutation under many reader threads must never corrupt the OrderedDict
    or lose an answer."""

    def test_stats_snapshot_and_reset(self, store_dir):
        store = ShardStore(store_dir, cache_shards=2)
        store.degree(0)
        stats = store.stats()
        assert stats["n_shards"] == store.n_shards
        assert stats["cache_shards"] == 2
        assert stats["shard_reads"] == store.shard_reads >= 1
        assert stats["cache_hits"] == store.cache_hits
        assert stats["cached_shards"] == min(stats["shard_reads"], 2)
        store.reset_stats()
        assert store.stats()["shard_reads"] == 0
        assert store.stats()["cache_hits"] == 0
        # The cache itself survives a reset: the repeat is served from
        # memory and counts as a hit against the fresh counters.
        store.degree(0)
        assert store.stats()["shard_reads"] == 0
        assert store.stats()["cache_hits"] >= 1

    def test_many_threads_share_one_lru(self, store_dir, product):
        """Mixed query types from 16 threads against a 2-slot LRU (constant
        eviction churn): every answer must equal the single-threaded
        reference, and the counters must stay consistent."""
        import threading

        store = ShardStore(store_dir, cache_shards=2)
        reference = ShardStore(store_dir, cache_shards=store.n_shards + 1)
        n = product.n_vertices
        vs = np.arange(0, n, 3)
        expected_degrees = reference.degrees(vs)
        expected_range = reference.edges_in_range(n // 4, n // 2)
        rng = np.random.default_rng(23)
        probes = rng.choice(n, 64, replace=False)
        expected_neighbors = {int(v): reference.neighbors(int(v))
                              for v in probes}
        failures = []

        def worker(thread_index):
            try:
                for round_index in range(4):
                    assert np.array_equal(store.degrees(vs), expected_degrees)
                    assert np.array_equal(
                        store.edges_in_range(n // 4, n // 2), expected_range)
                    for v in probes[thread_index::8]:
                        assert np.array_equal(store.neighbors(int(v)),
                                              expected_neighbors[int(v)])
            except Exception as exc:
                failures.append((thread_index, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:3]
        stats = store.stats()
        # Bounded cache throughout; counters moved and stayed coherent.
        assert stats["cached_shards"] <= 2
        assert stats["shard_reads"] >= store.n_shards
        assert stats["cache_hits"] > 0


class TestMmapLifecycle:
    """Zero-copy decodes: mmap-vs-copy equality, the stats split, and the
    mapping/file-descriptor lifecycle under eviction and ``close``."""

    @staticmethod
    def _open_fds() -> int:
        import os
        return len(os.listdir("/proc/self/fd"))

    def test_mmap_vs_copy_equality_across_query_surface(self, store_dir,
                                                        product):
        mapped = ShardStore(store_dir, cache_shards=4)  # mmap is the default
        copied = ShardStore(store_dir, cache_shards=4, mmap=False)
        assert mapped.stats()["mmap"] is True
        assert copied.stats()["mmap"] is False
        n = product.n_vertices
        vs = np.arange(0, n, 7)
        assert np.array_equal(mapped.degrees(vs), copied.degrees(vs))
        assert np.array_equal(mapped.out_degrees(vs), copied.out_degrees(vs))
        for lo, hi in ((0, n), (n // 4, n // 2), (n - 1, n)):
            rows_mapped = mapped.edges_in_range(lo, hi)
            rows_copied = copied.edges_in_range(lo, hi)
            assert rows_mapped.dtype == rows_copied.dtype == np.int64
            assert np.array_equal(rows_mapped, rows_copied)
        rng = np.random.default_rng(5)
        probes = rng.choice(n, 12, replace=False)
        for v in map(int, probes):
            assert np.array_equal(mapped.neighbors(v), copied.neighbors(v))
            ego_mapped, ego_copied = mapped.egonet(v), copied.egonet(v)
            assert np.array_equal(ego_mapped.vertices, ego_copied.vertices)
            assert (ego_mapped.graph.adjacency
                    != ego_copied.graph.adjacency).nnz == 0
        selection = rng.choice(n, 20, replace=False)
        assert np.array_equal(mapped.subgraph_edges(selection),
                              copied.subgraph_edges(selection))

    def test_stats_split_mapped_vs_resident(self, store_dir):
        mapped = ShardStore(store_dir, cache_shards=4)
        copied = ShardStore(store_dir, cache_shards=4, mmap=False)
        n = mapped.n_vertices
        mapped.edges_in_range(0, n)
        copied.edges_in_range(0, n)
        mapped_stats, copied_stats = mapped.stats(), copied.stats()
        assert mapped_stats["mapped_bytes"] > 0
        assert mapped_stats["resident_bytes"] == 0
        assert copied_stats["resident_bytes"] > 0
        assert copied_stats["mapped_bytes"] == 0

    def test_warm_cache_no_per_query_copies(self, store_dir):
        """Acceptance criterion: warm range scans neither decode shards
        again nor grow the cache's private/mapped footprint."""
        store = ShardStore(store_dir, cache_shards=store_n(store_dir))
        n = store.n_vertices
        store.edges_in_range(0, n)  # warm every shard
        warm = store.stats()
        for _ in range(20):
            store.edges_in_range(n // 4, n // 2)
        after = store.stats()
        assert after["shard_reads"] == warm["shard_reads"]
        assert after["mapped_bytes"] == warm["mapped_bytes"]
        assert after["resident_bytes"] == warm["resident_bytes"] == 0
        assert after["cache_hits"] > warm["cache_hits"]

    def test_lru_churn_releases_mappings(self, store_dir):
        """100-query churn over a 1-slot LRU: evicted mappings are released,
        so the process's open-fd count stays flat."""
        import gc

        store = ShardStore(store_dir, cache_shards=1)
        assert store.n_shards >= 2  # churn needs evictions
        store.edges_in_range(0, store.n_vertices)
        gc.collect()
        baseline = self._open_fds()
        for _ in range(100):
            store.edges_in_range(0, store.n_vertices)
        gc.collect()
        assert self._open_fds() <= baseline + 1
        assert store.stats()["cached_shards"] == 1

    def test_close_releases_mappings(self, store_dir):
        import gc

        store = ShardStore(store_dir, cache_shards=8)
        gc.collect()
        before = self._open_fds()
        store.edges_in_range(0, store.n_vertices)
        assert store.stats()["cached_shards"] > 0
        assert self._open_fds() > before  # cached mappings each hold one fd
        store.close()
        gc.collect()
        assert store.stats()["cached_shards"] == 0
        assert self._open_fds() <= before
        # The store stays usable after close: the next query just decodes.
        assert store.edges_in_range(0, store.n_vertices).shape[0] > 0

    def test_iter_edge_shards_mmap_mode(self, store_dir):
        from repro.graphs import iter_edge_shards

        eager = list(iter_edge_shards(store_dir))
        lazy = list(iter_edge_shards(store_dir, mmap_mode="r"))
        assert len(eager) == len(lazy)
        for block_eager, block_lazy in zip(eager, lazy):
            assert isinstance(block_lazy, np.memmap)
            assert not isinstance(block_eager, np.memmap)
            assert np.array_equal(block_eager, block_lazy)


def store_n(store_dir) -> int:
    """Shard count of a store directory plus one (an LRU that fits it all)."""
    return len(read_shard_manifest(store_dir)["shards"]) + 1
