"""Tests for VertexLabeledGraph, label filters, and label-type enumerations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    VertexLabeledGraph,
    edge_triangle_label_types,
    label_filter,
    vertex_triangle_label_types,
)
from repro import generators


@pytest.fixture
def coloured_triangle():
    """Triangle with labels red=0, green=1, blue=2."""
    base = generators.complete_graph(3)
    return VertexLabeledGraph.from_graph(base, [0, 1, 2])


class TestConstruction:
    def test_labels_length_checked(self):
        base = generators.complete_graph(3)
        with pytest.raises(ValueError):
            VertexLabeledGraph(base.adjacency, [0, 1])

    def test_negative_labels_rejected(self):
        base = generators.complete_graph(3)
        with pytest.raises(ValueError):
            VertexLabeledGraph(base.adjacency, [0, -1, 2])

    def test_n_labels_inferred(self, coloured_triangle):
        assert coloured_triangle.n_labels == 3

    def test_n_labels_explicit_larger(self):
        base = generators.complete_graph(3)
        g = VertexLabeledGraph(base.adjacency, [0, 0, 1], n_labels=5)
        assert g.n_labels == 5
        assert g.label_counts().tolist() == [2, 1, 0, 0, 0]

    def test_n_labels_too_small(self):
        base = generators.complete_graph(3)
        with pytest.raises(ValueError):
            VertexLabeledGraph(base.adjacency, [0, 1, 2], n_labels=2)

    def test_from_graph_preserves_structure(self, labeled_small):
        assert labeled_small.n_vertices == 12
        assert labeled_small.labels.shape == (12,)


class TestFilters:
    def test_label_filter_diagonal(self):
        f = label_filter(np.array([0, 1, 0, 2]), 0)
        assert np.array_equal(f.diagonal(), [1, 0, 1, 0])

    def test_filters_partition_identity(self, labeled_small):
        total = sum(labeled_small.filter(q) for q in range(labeled_small.n_labels))
        identity = sp.identity(labeled_small.n_vertices, dtype=np.int64, format="csr")
        assert (sp.csr_matrix(total) != identity).nnz == 0

    def test_filter_out_of_range(self, coloured_triangle):
        with pytest.raises(ValueError):
            coloured_triangle.filter(7)

    def test_vertices_with_label(self, coloured_triangle):
        assert coloured_triangle.vertices_with_label(1).tolist() == [1]

    def test_filtered_adjacency_selects_colour_pairs(self, coloured_triangle):
        filtered = coloured_triangle.filtered_adjacency(1, 0)
        # Only the edge from the colour-0 vertex (0) into the colour-1 vertex (1).
        assert filtered.nnz == 1
        assert filtered[1, 0] == 1

    def test_filtered_adjacency_sums_to_adjacency(self, labeled_small):
        n_labels = labeled_small.n_labels
        total = None
        for q_row in range(n_labels):
            for q_col in range(n_labels):
                block = labeled_small.filtered_adjacency(q_row, q_col)
                total = block if total is None else total + block
        assert (sp.csr_matrix(total) != labeled_small.adjacency).nnz == 0

    def test_label_of(self, coloured_triangle):
        assert coloured_triangle.label_of(2) == 2

    def test_label_counts(self, labeled_small):
        counts = labeled_small.label_counts()
        assert counts.sum() == labeled_small.n_vertices


class TestTransformations:
    def test_without_self_loops_preserves_labels(self):
        base = generators.looped_clique(3)
        g = VertexLabeledGraph(base.adjacency, [2, 1, 0])
        stripped = g.without_self_loops()
        assert isinstance(stripped, VertexLabeledGraph)
        assert stripped.labels.tolist() == [2, 1, 0]
        assert not stripped.has_self_loops

    def test_subgraph_carries_labels(self, labeled_small):
        sub = labeled_small.subgraph([0, 3, 5])
        assert isinstance(sub, VertexLabeledGraph)
        assert sub.labels.tolist() == [labeled_small.label_of(0),
                                       labeled_small.label_of(3),
                                       labeled_small.label_of(5)]

    def test_copy(self, labeled_small):
        dup = labeled_small.copy()
        assert dup.labels.tolist() == labeled_small.labels.tolist()
        assert dup == labeled_small

    def test_labels_returns_copy(self, labeled_small):
        labels = labeled_small.labels
        labels[0] = 99
        assert labeled_small.label_of(0) != 99

    def test_repr(self, labeled_small):
        assert "n_labels=3" in repr(labeled_small)


class TestTypeEnumerations:
    def test_vertex_type_count_matches_figure6(self):
        # |L| * C(|L|+1, 2): for 3 labels, 3 * 6 = 18 vertex-centred types.
        assert len(vertex_triangle_label_types(3)) == 18

    def test_vertex_types_q2_le_q3(self):
        for q1, q2, q3 in vertex_triangle_label_types(4):
            assert q2 <= q3

    def test_edge_type_count(self):
        assert len(edge_triangle_label_types(3)) == 27

    def test_single_label_degenerate(self):
        assert vertex_triangle_label_types(1) == [(0, 0, 0)]
        assert edge_triangle_label_types(1) == [(0, 0, 0)]

    def test_random_labeled_generator_weights(self):
        g = generators.random_labeled_graph(200, 0.05, 3, seed=1,
                                            label_weights=[0.8, 0.1, 0.1])
        counts = g.label_counts()
        assert counts[0] > counts[1]
        assert counts[0] > counts[2]

    def test_random_labeled_generator_weight_validation(self):
        with pytest.raises(ValueError):
            generators.random_labeled_graph(10, 0.1, 3, label_weights=[1.0, 0.0])
