"""Tests for the implicit KroneckerGraph product object."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import DirectedGraph, Graph, VertexLabeledGraph


class TestSizes:
    def test_vertex_and_entry_counts(self, k4, k5):
        product = KroneckerGraph(k4, k5)
        assert product.n_factor_a == 4
        assert product.n_factor_b == 5
        assert product.n_vertices == 20
        assert product.nnz == k4.nnz * k5.nnz

    def test_edge_count_matches_materialized(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        assert product.n_edges == product.materialize().n_edges

    def test_edge_count_with_self_loops(self, small_er_loops):
        looped = generators.looped_clique(3)
        product = KroneckerGraph(small_er_loops, looped)
        assert product.n_edges == product.materialize().n_edges
        assert product.n_self_loops == product.materialize().n_self_loops

    def test_self_loops_require_both_factors(self, k4):
        looped = generators.looped_clique(3)
        assert not KroneckerGraph(k4, looped).has_self_loops
        assert KroneckerGraph(looped, looped).has_self_loops

    def test_undirectedness(self, k4, directed_small):
        assert KroneckerGraph(k4, k4).is_undirected
        assert not KroneckerGraph(directed_small, k4).is_undirected

    def test_n_edges_rejected_for_directed(self, directed_small, k4):
        with pytest.raises(ValueError):
            _ = KroneckerGraph(directed_small, k4).n_edges

    def test_name_defaults(self, k4, k5):
        assert KroneckerGraph(k4, k5).name == "K4⊗K5"
        assert KroneckerGraph(k4, k5, name="C").name == "C"

    def test_repr(self, k4, k5):
        assert "n_vertices=20" in repr(KroneckerGraph(k4, k5))


class TestIndexing:
    def test_factor_indices_round_trip(self, k4, k5):
        product = KroneckerGraph(k4, k5)
        p = np.arange(product.n_vertices)
        i, k = product.factor_indices(p)
        assert np.array_equal(product.product_index(i, k), p)

    def test_entry_identity(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        dense_c = np.kron(small_er.to_dense(), triangle.to_dense())
        rng = np.random.default_rng(0)
        for _ in range(50):
            p, q = rng.integers(0, product.n_vertices, size=2)
            assert product.has_edge(int(p), int(q)) == bool(dense_c[p, q])


class TestLocalQueries:
    def test_degrees_match_materialized(self, small_er, k4):
        product = KroneckerGraph(small_er, k4)
        assert np.array_equal(product.degrees(), product.materialize().degrees())

    def test_degree_scalar_matches_vector(self, small_er, k4):
        product = KroneckerGraph(small_er, k4)
        degrees = product.degrees()
        for p in (0, 5, 17, product.n_vertices - 1):
            assert product.degree(p) == degrees[p]

    def test_degrees_with_self_loops(self):
        a = generators.looped_clique(3)
        b = generators.erdos_renyi(5, 0.6, seed=1, self_loops=True)
        product = KroneckerGraph(a, b)
        assert np.array_equal(product.degrees(), Graph(product.materialize_adjacency(), validate=False).degrees())

    def test_neighbors_match_materialized(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        materialized = product.materialize()
        for p in (0, 3, 20, 44):
            assert product.neighbors(p).tolist() == materialized.neighbors(p).tolist()

    def test_neighbors_empty_for_isolated(self):
        a = Graph.from_edges([(0, 1)], n_vertices=3)  # vertex 2 isolated
        b = generators.complete_graph(2)
        product = KroneckerGraph(a, b)
        assert product.neighbors(product.product_index(2, 0)).size == 0

    def test_subgraph_matches_materialized(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        materialized = product.materialize()
        vertices = [0, 1, 5, 9, 13, 30]
        assert product.subgraph(vertices) == materialized.subgraph(vertices)

    def test_subgraph_adjacency_out_of_range(self, k4, k5):
        with pytest.raises(IndexError):
            KroneckerGraph(k4, k5).subgraph_adjacency([0, 100])

    def test_subgraph_rejected_for_directed(self, directed_small, k4):
        with pytest.raises(ValueError):
            KroneckerGraph(directed_small, k4).subgraph([0, 1])


class TestMaterializationAndStreaming:
    def test_materialize_equals_scipy_kron(self, k4, k5):
        product = KroneckerGraph(k4, k5)
        expected = sp.kron(k4.adjacency, k5.adjacency, format="csr")
        assert (product.materialize_adjacency() != expected).nnz == 0

    def test_materialize_type_dispatch(self, k4, directed_small, labeled_small):
        assert isinstance(KroneckerGraph(k4, k4).materialize(), Graph)
        assert isinstance(KroneckerGraph(directed_small, k4).materialize(), DirectedGraph)
        labeled = KroneckerGraph(labeled_small, k4).materialize()
        assert isinstance(labeled, VertexLabeledGraph)

    def test_materialize_guard(self, weblike_small):
        product = KroneckerGraph(weblike_small, weblike_small)
        with pytest.raises(MemoryError):
            product.materialize(max_nnz=10)

    def test_edges_guard(self, weblike_small):
        product = KroneckerGraph(weblike_small, weblike_small)
        with pytest.raises(MemoryError):
            product.edges(max_nnz=10)

    def test_edges_match_materialized(self, k4, triangle):
        product = KroneckerGraph(k4, triangle)
        edges = product.edges()
        rebuilt = sp.csr_matrix(
            (np.ones(edges.shape[0], dtype=np.int64), (edges[:, 0], edges[:, 1])),
            shape=(product.n_vertices, product.n_vertices),
        )
        assert (rebuilt != product.materialize_adjacency()).nnz == 0

    def test_iter_edge_blocks_cover_all_edges(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        total = sum(block.shape[0] for block in product.iter_edge_blocks(a_edges_per_block=7))
        assert total == product.nnz

    def test_iter_edge_blocks_respects_block_size(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        for block in product.iter_edge_blocks(a_edges_per_block=5):
            assert block.shape[0] <= 5 * triangle.nnz


class TestLabels:
    def test_label_inheritance(self, labeled_small, k4):
        product = KroneckerGraph(labeled_small, k4)
        assert product.is_labeled
        labels = product.labels()
        for p in (0, 7, 19, 33):
            i = p // k4.n_vertices
            assert labels[p] == labeled_small.label_of(i)
            assert product.label_of(p) == labeled_small.label_of(i)

    def test_unlabeled_product_raises(self, k4, k5):
        product = KroneckerGraph(k4, k5)
        assert not product.is_labeled
        with pytest.raises(ValueError):
            product.labels()
        with pytest.raises(ValueError):
            product.n_labels

    def test_n_labels(self, labeled_small, k4):
        assert KroneckerGraph(labeled_small, k4).n_labels == labeled_small.n_labels


class TestConvenienceFormulas:
    def test_vertex_triangles_method(self, small_er, triangle):
        from repro.triangles import vertex_triangles

        product = KroneckerGraph(small_er, triangle)
        assert np.array_equal(product.vertex_triangles(), vertex_triangles(product.materialize()))

    def test_edge_triangles_method(self, k4, triangle):
        from repro.triangles import edge_triangles

        product = KroneckerGraph(k4, triangle)
        assert (product.edge_triangles() != edge_triangles(product.materialize())).nnz == 0

    def test_triangle_count_method(self, small_er, triangle):
        from repro.triangles import total_triangles

        product = KroneckerGraph(small_er, triangle)
        assert product.triangle_count() == total_triangles(product.materialize())

    def test_kron_degrees_method(self, small_er, k4):
        product = KroneckerGraph(small_er, k4)
        assert np.array_equal(product.kron_degrees(), product.materialize().degrees())
