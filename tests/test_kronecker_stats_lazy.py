"""Tests for the lazy factored statistics payload (KroneckerTriangleStats)."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    KroneckerTriangleStats,
    kron_edge_triangles,
    kron_triangle_count,
    kron_vertex_triangles,
)
from repro.analysis import histogram


FACTOR_PAIRS = [
    (generators.erdos_renyi(10, 0.4, seed=1), generators.complete_graph(4)),
    (generators.webgraph_like(12, seed=2), generators.looped_clique(3)),
    (generators.erdos_renyi(8, 0.5, seed=3, self_loops=True),
     generators.erdos_renyi(7, 0.5, seed=4, self_loops=True)),
]


@pytest.mark.parametrize("factor_a,factor_b", FACTOR_PAIRS)
class TestAgainstFullEvaluation:
    def test_vertex_array(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        assert np.array_equal(stats.vertex_array(), kron_vertex_triangles(factor_a, factor_b))

    def test_vertex_point_queries(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        full = kron_vertex_triangles(factor_a, factor_b)
        idx = np.arange(0, full.size, 3)
        assert np.array_equal(stats.vertex_value(idx), full[idx])
        assert stats.vertex_value(1) == full[1]

    def test_total(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        assert stats.total_triangles() == kron_triangle_count(factor_a, factor_b)

    def test_edge_matrix(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        assert (stats.edge_matrix() != kron_edge_triangles(factor_a, factor_b)).nnz == 0

    def test_edge_point_queries(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        full = kron_edge_triangles(factor_a, factor_b).tocoo()
        for p, q, value in list(zip(full.row, full.col, full.data))[:15]:
            assert stats.edge_value(int(p), int(q)) == value

    def test_vertex_histogram(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        expected = histogram(kron_vertex_triangles(factor_a, factor_b))
        assert stats.vertex_histogram() == expected

    def test_edge_histogram_nonzero_values(self, factor_a, factor_b):
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        full = kron_edge_triangles(factor_a, factor_b)
        expected = histogram(full.data[full.data != 0])
        assert stats.edge_histogram() == expected


class TestScalability:
    def test_no_product_sized_allocation_needed(self):
        """Totals and histograms are available even when the product would be huge."""
        factor = generators.webgraph_like(400, seed=7)
        stats = KroneckerTriangleStats.from_factors(factor, factor)
        n_c = factor.n_vertices ** 2
        assert n_c == 160_000
        total = stats.total_triangles()
        assert total > 0
        hist = stats.vertex_histogram()
        assert sum(hist.values()) == n_c

    def test_histogram_consistent_with_total(self):
        factor_a = generators.webgraph_like(60, seed=1)
        factor_b = generators.webgraph_like(50, seed=2)
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        hist = stats.vertex_histogram()
        assert sum(v * c for v, c in hist.items()) == 3 * stats.total_triangles()

    def test_requires_undirected_factors(self):
        directed = generators.random_directed_graph(8, seed=1)
        with pytest.raises(TypeError):
            KroneckerTriangleStats.from_factors(directed, generators.complete_graph(3))
