"""Tests for the DirectedGraph substrate and its reciprocal/directed decomposition."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import DirectedGraph, Graph
from repro import generators


@pytest.fixture
def mixed():
    """Hand-built graph: 0<->1 reciprocal, 1->2 and 2->3 directed, 3<->0 reciprocal."""
    return DirectedGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 0), (0, 3)])


class TestConstruction:
    def test_from_edges(self, mixed):
        assert mixed.n_vertices == 4
        assert mixed.n_arcs == 6

    def test_from_edges_n_vertices(self):
        g = DirectedGraph.from_edges([(0, 1)], n_vertices=4)
        assert g.n_vertices == 4

    def test_from_edges_bad_n(self):
        with pytest.raises(ValueError):
            DirectedGraph.from_edges([(0, 5)], n_vertices=2)

    def test_from_undirected(self, triangle):
        d = DirectedGraph.from_undirected(triangle)
        assert d.is_symmetric
        assert d.n_arcs == 6

    def test_requires_square(self):
        with pytest.raises(ValueError):
            DirectedGraph(np.ones((2, 3)))

    def test_empty_edge_list(self):
        g = DirectedGraph.from_edges([], n_vertices=3)
        assert g.n_arcs == 0


class TestDecomposition:
    def test_reciprocal_plus_directed_equals_adjacency(self, mixed):
        ar, ad = mixed.decompose()
        assert ((ar + ad) != mixed.adjacency).nnz == 0

    def test_reciprocal_part_symmetric(self, mixed):
        ar = mixed.reciprocal_part()
        assert (ar != ar.T).nnz == 0

    def test_directed_part_no_overlap_with_transpose(self, mixed):
        ad = mixed.directed_part()
        # A_d and A_d^t share no entries: an arc cannot be directed both ways.
        assert ad.multiply(ad.T).nnz == 0

    def test_counts(self, mixed):
        assert mixed.n_reciprocal_edges == 2
        assert mixed.n_directed_edges == 2

    def test_decomposition_random(self, directed_small):
        ar, ad = directed_small.decompose()
        assert ((ar + ad) != directed_small.adjacency).nnz == 0
        assert (ar != ar.T).nnz == 0
        assert ad.multiply(ad.T).nnz == 0

    def test_undirected_version(self, mixed):
        au = mixed.undirected_version()
        assert isinstance(au, Graph)
        # Reciprocal pairs collapse; directed arcs become undirected edges.
        assert au.n_edges == 4

    def test_fully_symmetric_graph_has_no_directed_part(self, triangle):
        d = DirectedGraph.from_undirected(triangle)
        assert d.n_directed_edges == 0
        assert d.n_reciprocal_edges == 3


class TestDegrees:
    def test_out_in_degrees(self, mixed):
        assert mixed.out_degrees().tolist() == [2, 2, 1, 1]
        assert mixed.in_degrees().tolist() == [2, 1, 1, 2]

    def test_degree_sum_identity(self, directed_small):
        assert directed_small.out_degrees().sum() == directed_small.n_arcs
        assert directed_small.in_degrees().sum() == directed_small.n_arcs

    def test_reciprocal_directed_degree_split(self, directed_small):
        total_out = directed_small.out_degrees()
        rec = directed_small.reciprocal_degrees()
        d_out = directed_small.directed_out_degrees()
        assert np.array_equal(total_out, rec + d_out)

    def test_directed_in_degrees(self, directed_small):
        total_in = directed_small.in_degrees()
        rec = directed_small.reciprocal_degrees()
        d_in = directed_small.directed_in_degrees()
        assert np.array_equal(total_in, rec + d_in)


class TestTransformations:
    def test_without_self_loops(self):
        g = DirectedGraph.from_edges([(0, 0), (0, 1)])
        assert g.without_self_loops().n_self_loops == 0

    def test_transpose(self, mixed):
        assert mixed.transpose().has_edge(2, 1)
        assert not mixed.transpose().has_edge(1, 2)

    def test_transpose_involution(self, directed_small):
        assert directed_small.transpose().transpose() == directed_small

    def test_subgraph(self, mixed):
        sub = mixed.subgraph([0, 1])
        assert sub.n_vertices == 2
        assert sub.n_arcs == 2

    def test_subgraph_out_of_range(self, mixed):
        with pytest.raises(IndexError):
            mixed.subgraph([0, 10])

    def test_edges_and_out_neighbors(self, mixed):
        edges = mixed.edges()
        assert edges.shape == (6, 2)
        assert mixed.out_neighbors(1).tolist() == [0, 2]

    def test_copy_equality(self, directed_small):
        assert directed_small.copy() == directed_small

    def test_not_hashable(self, mixed):
        with pytest.raises(TypeError):
            hash(mixed)

    def test_to_dense_matches_sparse(self, mixed):
        assert np.array_equal(mixed.to_dense(), np.asarray(mixed.adjacency.todense()))

    def test_repr(self, mixed):
        assert "n_arcs=6" in repr(mixed)


class TestRandomDirectedGenerator:
    def test_densities_respected(self):
        g = generators.random_directed_graph(60, p_directed=0.1, p_reciprocal=0.2, seed=1)
        assert g.n_reciprocal_edges > 0
        assert g.n_directed_edges > 0
        assert not g.has_self_loops

    def test_deterministic(self):
        a = generators.random_directed_graph(20, seed=4)
        b = generators.random_directed_graph(20, seed=4)
        assert a == b

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            generators.random_directed_graph(10, p_directed=0.9, p_reciprocal=0.9)
        with pytest.raises(ValueError):
            generators.random_directed_graph(10, p_directed=-0.1)
