"""Property-based tests (hypothesis) for the partition layer invariants.

Every partitioner must produce a *disjoint cover*: each unit of work (an
``A`` entry or an ``A`` row) owned by exactly one rank, with the per-rank
``product_edges`` accounting summing to the global total — the property the
communication-free generation rests on.  The adversarial profiles here
(heavy-tailed rows, all-zero rows, more ranks than rows) exercise the
``row_stop`` clamp paths that yield empty trailing ranks; those must be
handled, never crash, and the load balance measured against the best any
contiguous partitioner could do (``bounded_imbalance``) must stay ≤ 2.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel import (
    balance_statistics,
    entry_range,
    partition_edges,
    partition_vertex_blocks,
)

PARTITION_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def degree_profiles(draw):
    """Adversarial ``A`` row-nnz profiles: skewed, sparse-with-zeros, or flat."""
    n_rows = draw(st.integers(min_value=0, max_value=40))
    kind = draw(st.sampled_from(["flat", "skewed", "zero-heavy", "one-hot"]))
    if kind == "flat":
        profile = draw(st.lists(st.integers(0, 6), min_size=n_rows, max_size=n_rows))
    elif kind == "skewed":
        profile = [draw(st.integers(0, 3)) for _ in range(n_rows)]
        if n_rows:
            hub = draw(st.integers(0, n_rows - 1))
            profile[hub] = draw(st.integers(50, 500))
    elif kind == "zero-heavy":
        profile = [0] * n_rows
        for _ in range(draw(st.integers(0, max(1, n_rows // 4)))):
            if n_rows:
                profile[draw(st.integers(0, n_rows - 1))] = draw(st.integers(1, 4))
    else:  # one-hot
        profile = [0] * n_rows
        if n_rows:
            profile[draw(st.integers(0, n_rows - 1))] = draw(st.integers(1, 100))
    return np.asarray(profile, dtype=np.int64)


class TestEdgePartitionProperties:
    @PARTITION_SETTINGS
    @given(nnz_a=st.integers(0, 500), nnz_b=st.integers(0, 50),
           n_ranks=st.integers(1, 64))
    def test_disjoint_cover_and_accounting(self, nnz_a, nnz_b, n_ranks):
        parts = partition_edges(nnz_a, nnz_b, n_ranks)
        assert len(parts) == n_ranks
        assert parts[0].a_entry_start == 0
        assert parts[-1].a_entry_stop == nnz_a
        for prev, cur in zip(parts, parts[1:]):
            assert prev.a_entry_stop == cur.a_entry_start  # disjoint, contiguous
        for p in parts:
            assert 0 <= p.a_entry_start <= p.a_entry_stop <= nnz_a
            assert p.product_edges == p.n_a_entries * nnz_b
        assert sum(p.product_edges for p in parts) == nnz_a * nnz_b

    @PARTITION_SETTINGS
    @given(nnz_a=st.integers(1, 500), nnz_b=st.integers(1, 50),
           n_ranks=st.integers(1, 64))
    def test_bounded_imbalance_le_2(self, nnz_a, nnz_b, n_ranks):
        parts = partition_edges(nnz_a, nnz_b, n_ranks)
        stats = balance_statistics(parts, max_atom_load=nnz_b)
        assert stats["bounded_imbalance"] <= 2.0

    def test_more_ranks_than_entries_yields_empty_ranks(self):
        parts = partition_edges(3, 5, 10)
        empty = [p for p in parts if p.n_a_entries == 0]
        assert len(empty) == 7  # handled, not crashed
        assert sum(p.product_edges for p in parts) == 15


class TestVertexBlockPartitionProperties:
    @PARTITION_SETTINGS
    @given(profile=degree_profiles(), n_vertices_b=st.integers(1, 8),
           nnz_b=st.integers(1, 30), n_ranks=st.integers(1, 64))
    def test_disjoint_cover_of_row_range(self, profile, n_vertices_b, nnz_b, n_ranks):
        parts = partition_vertex_blocks(profile, n_vertices_b, nnz_b, n_ranks)
        assert len(parts) == n_ranks
        assert parts[0].a_row_start == 0
        assert parts[-1].a_row_stop == profile.shape[0]
        for prev, cur in zip(parts, parts[1:]):
            assert prev.a_row_stop == cur.a_row_start
        for p in parts:
            assert 0 <= p.a_row_start <= p.a_row_stop <= profile.shape[0]
            assert p.product_vertex_start == p.a_row_start * n_vertices_b
            assert p.product_vertex_stop == p.a_row_stop * n_vertices_b

    @PARTITION_SETTINGS
    @given(profile=degree_profiles(), n_vertices_b=st.integers(1, 8),
           nnz_b=st.integers(1, 30), n_ranks=st.integers(1, 64))
    def test_product_edges_sum_to_global_total(self, profile, n_vertices_b,
                                               nnz_b, n_ranks):
        parts = partition_vertex_blocks(profile, n_vertices_b, nnz_b, n_ranks)
        assert sum(p.product_edges for p in parts) == int(profile.sum()) * nnz_b
        for p in parts:
            assert p.product_edges == int(
                profile[p.a_row_start:p.a_row_stop].sum()) * nnz_b

    @PARTITION_SETTINGS
    @given(profile=degree_profiles(), nnz_b=st.integers(1, 30),
           n_ranks=st.integers(1, 64))
    def test_bounded_imbalance_le_2_adversarial(self, profile, nnz_b, n_ranks):
        """Greedy contiguous cuts overshoot the target by at most one row."""
        parts = partition_vertex_blocks(profile, 4, nnz_b, n_ranks)
        max_atom = int(profile.max()) * nnz_b if profile.size else 0
        stats = balance_statistics(parts, max_atom_load=max_atom)
        assert stats["bounded_imbalance"] <= 2.0

    def test_more_ranks_than_rows_empty_trailing_ranks(self):
        """The row_stop clamp yields empty trailing ranks — handled, not crashed."""
        profile = np.asarray([5, 1, 2], dtype=np.int64)
        parts = partition_vertex_blocks(profile, 3, 10, 8)
        assert len(parts) == 8
        assert parts[-1].a_row_stop == 3
        assert sum(p.product_edges for p in parts) == 80
        empty = [p for p in parts if p.a_row_start == p.a_row_stop]
        assert empty  # trailing ranks own nothing
        for p in empty:
            assert p.product_edges == 0

    def test_all_zero_rows(self):
        profile = np.zeros(6, dtype=np.int64)
        parts = partition_vertex_blocks(profile, 2, 7, 3)
        assert sum(p.product_edges for p in parts) == 0
        assert parts[-1].a_row_stop == 6
        stats = balance_statistics(parts, max_atom_load=0)
        assert stats["bounded_imbalance"] == 1.0

    def test_empty_profile(self):
        parts = partition_vertex_blocks(np.zeros(0, dtype=np.int64), 2, 7, 4)
        assert len(parts) == 4
        assert all(p.a_row_start == p.a_row_stop == 0 for p in parts)


class TestEntryRangeBridge:
    @PARTITION_SETTINGS
    @given(profile=degree_profiles(), n_ranks=st.integers(1, 16))
    def test_vertex_blocks_map_to_disjoint_entry_cover(self, profile, n_ranks):
        """entry_range over vertex blocks covers [0, nnz_A) exactly once."""
        parts = partition_vertex_blocks(profile, 4, 9, n_ranks)
        indptr = np.concatenate([[0], np.cumsum(profile)]).astype(np.int64)
        ranges = [entry_range(p, indptr) for p in parts]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == int(profile.sum())
        for (_, prev_stop), (cur_start, _) in zip(ranges, ranges[1:]):
            assert prev_stop == cur_start
        for p, (start, stop) in zip(parts, ranges):
            assert (stop - start) * 9 == p.product_edges

    def test_edge_partition_passthrough(self):
        part = partition_edges(10, 3, 2)[1]
        assert entry_range(part, np.zeros(1)) == (part.a_entry_start, part.a_entry_stop)

    def test_rejects_unknown_partition_type(self):
        with pytest.raises(TypeError):
            entry_range(object(), np.zeros(1))
