"""Tests for the formula-vs-direct validation harness."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    ValidationReport,
    validate_directed_product,
    validate_egonets,
    validate_labeled_product,
    validate_truss_transfer,
    validate_undirected_product,
)


class TestValidationReport:
    def test_empty_report_not_passed(self):
        report = ValidationReport("empty")
        assert not report.passed

    def test_record_and_summary(self):
        report = ValidationReport("demo")
        report.record("a", True, "fine")
        report.record("b", False, "max |Δ| = 3")
        assert not report.passed
        text = report.summary()
        assert "FAIL" in text and "demo" in text and "max |Δ| = 3" in text

    def test_all_pass(self):
        report = ValidationReport("demo")
        report.record("a", True)
        report.record("b", True)
        assert report.passed
        assert "PASS" in report.summary()


class TestUndirectedValidation:
    def test_passes_on_valid_factors(self, weblike_small, triangle):
        report = validate_undirected_product(weblike_small, triangle)
        assert report.passed
        assert set(report.checks) == {"degrees", "vertex_triangles", "edge_triangles"}

    def test_passes_with_self_loops(self, small_er_loops):
        factor_b = generators.looped_clique(3)
        assert validate_undirected_product(small_er_loops, factor_b).passed

    def test_memory_guard_propagates(self, weblike_small):
        with pytest.raises(MemoryError):
            validate_undirected_product(weblike_small, weblike_small, max_nnz=10)


class TestDirectedValidation:
    def test_passes(self, directed_small):
        factor_b = generators.erdos_renyi(4, 0.6, seed=2, self_loops=True)
        report = validate_directed_product(directed_small, factor_b)
        assert report.passed
        # 15 vertex checks + 15 edge checks.
        assert len(report.checks) == 30


class TestLabeledValidation:
    def test_passes(self, labeled_small):
        factor_b = generators.erdos_renyi(4, 0.6, seed=3)
        report = validate_labeled_product(labeled_small, factor_b)
        assert report.passed


class TestTrussValidation:
    def test_passes(self):
        factor_a = generators.erdos_renyi(10, 0.4, seed=4)
        factor_b = generators.triangle_constrained_pa(12, seed=5)
        report = validate_truss_transfer(factor_a, factor_b)
        assert report.passed
        assert set(report.checks) == {"max_truss", "trussness_matrix", "truss_sizes"}

    def test_rejects_invalid_factor(self, k5):
        factor_a = generators.erdos_renyi(10, 0.4, seed=4)
        with pytest.raises(ValueError):
            validate_truss_transfer(factor_a, k5)


class TestEgonetValidation:
    def test_random_sample_passes(self, weblike_small):
        factor_b = weblike_small.with_self_loops()
        report = validate_egonets(weblike_small, factor_b, n_samples=6, seed=3)
        assert report.passed
        assert len(report.checks) == 6

    def test_explicit_vertices(self, weblike_small, triangle):
        report = validate_egonets(weblike_small, triangle, vertices=[0, 10, 50])
        assert report.passed
        assert set(report.checks) == {"vertex[0]", "vertex[10]", "vertex[50]"}

    def test_details_recorded(self, weblike_small, triangle):
        report = validate_egonets(weblike_small, triangle, vertices=[5])
        assert "degree ego=" in report.details["vertex[5]"]

    def test_scales_past_materialization_limit(self):
        """Egonet validation works on products far too large to materialize here."""
        factor = generators.webgraph_like(500, seed=11)
        factor_b = factor.with_self_loops()
        report = validate_egonets(factor, factor_b, n_samples=3, seed=1)
        assert report.passed
