"""Tests for Theorems 4-5: Kronecker formulas for directed triangle participation."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    check_directed_factor_assumptions,
    kron_directed_edge_triangles,
    kron_directed_part,
    kron_directed_vertex_triangles,
    kron_directed_vertex_triangles_at,
    kron_reciprocal_part,
)
from repro.graphs import DirectedGraph
from repro.triangles import (
    CANONICAL_EDGE_TYPES,
    CANONICAL_VERTEX_TYPES,
    directed_edge_triangle_counts,
    directed_vertex_triangle_counts,
)


@pytest.fixture
def factor_a():
    return generators.random_directed_graph(10, p_directed=0.3, p_reciprocal=0.25, seed=21)


@pytest.fixture
def factor_b_plain():
    return generators.erdos_renyi(5, 0.5, seed=22)


@pytest.fixture
def factor_b_loops():
    return generators.erdos_renyi(5, 0.5, seed=23, self_loops=True)


class TestAssumptions:
    def test_accepts_valid_factors(self, factor_a, factor_b_plain):
        check_directed_factor_assumptions(factor_a, factor_b_plain)

    def test_rejects_self_loops_in_a(self, factor_b_plain):
        a = DirectedGraph.from_edges([(0, 0), (0, 1), (1, 2)])
        with pytest.raises(ValueError):
            check_directed_factor_assumptions(a, factor_b_plain)

    def test_rejects_directed_b(self, factor_a):
        b = DirectedGraph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            check_directed_factor_assumptions(factor_a, b)

    def test_rejects_undirected_a(self, factor_b_plain, k4):
        with pytest.raises(TypeError):
            check_directed_factor_assumptions(k4, factor_b_plain)

    def test_accepts_symmetric_directedgraph_b(self, factor_a, k4):
        check_directed_factor_assumptions(factor_a, DirectedGraph.from_undirected(k4))


class TestProductDecomposition:
    def test_reciprocal_and_directed_parts(self, factor_a, factor_b_plain):
        product = DirectedGraph(KroneckerGraph(factor_a, factor_b_plain).materialize_adjacency())
        assert (kron_reciprocal_part(factor_a, factor_b_plain) != product.reciprocal_part()).nnz == 0
        assert (kron_directed_part(factor_a, factor_b_plain) != product.directed_part()).nnz == 0

    def test_parts_sum_to_product(self, factor_a, factor_b_plain):
        cr = kron_reciprocal_part(factor_a, factor_b_plain)
        cd = kron_directed_part(factor_a, factor_b_plain)
        product_adj = KroneckerGraph(factor_a, factor_b_plain).materialize_adjacency()
        assert ((cr + cd) != product_adj).nnz == 0


@pytest.mark.parametrize("b_fixture", ["factor_b_plain", "factor_b_loops"])
class TestTheorem4:
    def test_all_vertex_types_match_direct(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        formula = kron_directed_vertex_triangles(factor_a, factor_b)
        product = DirectedGraph(KroneckerGraph(factor_a, factor_b).materialize_adjacency())
        direct = directed_vertex_triangle_counts(product)
        assert set(formula) == set(CANONICAL_VERTEX_TYPES)
        for name in CANONICAL_VERTEX_TYPES:
            assert np.array_equal(formula[name], direct[name]), name

    def test_point_queries(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        formula = kron_directed_vertex_triangles(factor_a, factor_b, types=["st+", "uuo"])
        points = kron_directed_vertex_triangles_at(
            factor_a, factor_b, np.array([0, 7, 19]), types=["st+", "uuo"]
        )
        for name in ("st+", "uuo"):
            assert np.array_equal(points[name], formula[name][[0, 7, 19]])


@pytest.mark.parametrize("b_fixture", ["factor_b_plain", "factor_b_loops"])
class TestTheorem5:
    def test_all_edge_types_match_direct(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        formula = kron_directed_edge_triangles(factor_a, factor_b)
        product = DirectedGraph(KroneckerGraph(factor_a, factor_b).materialize_adjacency())
        direct = directed_edge_triangle_counts(product)
        assert set(formula) == set(CANONICAL_EDGE_TYPES)
        for name in CANONICAL_EDGE_TYPES:
            assert (formula[name] != direct[name]).nnz == 0, name


class TestSubsetsAndAliases:
    def test_requested_subset(self, factor_a, factor_b_plain):
        formula = kron_directed_vertex_triangles(factor_a, factor_b_plain, types=["sto"])
        assert set(formula) == {"sto"}

    def test_alias_accepted(self, factor_a, factor_b_plain):
        formula = kron_directed_vertex_triangles(factor_a, factor_b_plain, types=["us+", "su-"])
        assert np.array_equal(formula["us+"], formula["su-"])

    def test_type_counts_sum_to_symmetrized_triangles(self, factor_a, factor_b_plain):
        """Coverage identity survives the Kronecker transfer."""
        from repro.triangles import total_directed_vertex_triangles, vertex_triangles

        formula = kron_directed_vertex_triangles(factor_a, factor_b_plain)
        product = DirectedGraph(KroneckerGraph(factor_a, factor_b_plain).materialize_adjacency())
        assert np.array_equal(
            total_directed_vertex_triangles(formula),
            vertex_triangles(product.undirected_version()),
        )
