"""Tests for the lock-order sanitizer (repro.lint.runtime).

The sanitizer turns a latent ABBA deadlock into a deterministic
``LockOrderError`` the first time both orders are *ever* exhibited —
even on one thread, even seconds apart — so the deliberate-inversion
tests here need no timing games at all.  The integration test at the
bottom closes the loop with the real store: the documented
``store.lru -> obs.instrument`` discipline must actually be *observed*
by the session sanitizer when threads churn the shard LRU.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.lint import runtime as lint_runtime
from repro.lint.runtime import (CheckedLock, LockOrderError,
                                LockOrderSanitizer, new_lock)
from repro.parallel import distributed_generate
from repro.store import ShardStore, compact_shards


@pytest.fixture
def sanitizer() -> LockOrderSanitizer:
    """A private sanitizer — tests build their own lock graphs without
    touching the session-wide one armed in conftest."""
    return LockOrderSanitizer()


def _locks(sanitizer, *names):
    return tuple(CheckedLock(name, sanitizer) for name in names)


class TestCheckedLock:
    def test_lock_api_subset(self, sanitizer):
        (lock,) = _locks(sanitizer, "a")
        assert not lock.locked()
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert "'a'" in repr(lock) and "unlocked" in repr(lock)

    def test_nonblocking_acquire_failure_leaves_no_held_record(self, sanitizer):
        lock, other = _locks(sanitizer, "a", "b")
        grabbed = threading.Event()
        done = threading.Event()

        def holder():
            with lock:
                grabbed.set()
                done.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert grabbed.wait(5.0)
        assert lock.acquire(blocking=False) is False
        done.set()
        thread.join()
        # The failed acquire must not have been recorded as held: taking
        # `other` now must not create an a -> b edge.
        with other:
            pass
        assert ("a", "b") not in sanitizer.observed_edges()


class TestLockOrderSanitizer:
    def test_consistent_order_is_silent(self, sanitizer):
        outer, inner = _locks(sanitizer, "store.lru", "obs.instrument")
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert ("store.lru", "obs.instrument") in sanitizer.observed_edges()

    def test_single_thread_inversion_raises(self, sanitizer):
        # note_acquire fires *before* blocking, so one thread exhibiting
        # both orders is enough — no interleaving or deadlock required.
        first, second = _locks(sanitizer, "a", "b")
        with first:
            with second:
                pass
        with second:
            with pytest.raises(LockOrderError, match="a -> b -> a"):
                first.acquire()

    def test_cross_thread_inversion_raises_with_witness(self, sanitizer):
        first, second = _locks(sanitizer, "a", "b")

        def establish():
            with first:
                with second:
                    pass

        thread = threading.Thread(target=establish, name="establisher")
        thread.start()
        thread.join()
        with second:
            with pytest.raises(LockOrderError) as excinfo:
                first.acquire()
        assert "establisher" in str(excinfo.value)

    def test_three_lock_cycle_detected(self, sanitizer):
        a, b, c = _locks(sanitizer, "a", "b", "c")
        with a, b:
            pass
        with b, c:
            pass
        with c:
            with pytest.raises(LockOrderError, match="inversion"):
                a.acquire()

    def test_same_name_locks_are_not_ordered(self, sanitizer):
        # Two instrument leaf locks share one name: the discipline is
        # between lock *classes*, so either nesting order is legal.
        one, two = _locks(sanitizer, "obs.instrument", "obs.instrument")
        with one, two:
            pass
        with two, one:
            pass
        assert ("obs.instrument", "obs.instrument") not in \
            sanitizer.observed_edges()

    def test_reacquiring_same_lock_raises(self, sanitizer):
        (lock,) = _locks(sanitizer, "a")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()

    def test_out_of_order_release_is_legal(self, sanitizer):
        a, b = _locks(sanitizer, "a", "b")
        a.acquire()
        b.acquire()
        a.release()
        b.release()
        # Held bookkeeping survived: a fresh nesting still records cleanly.
        with a, b:
            pass
        assert ("a", "b") in sanitizer.observed_edges()


class TestInstall:
    def test_new_lock_is_plain_without_sanitizer(self):
        previous = lint_runtime.installed()
        lint_runtime.uninstall()
        try:
            assert not isinstance(new_lock("store.lru"), CheckedLock)
        finally:
            if previous is not None:
                lint_runtime.install(previous)

    def test_session_sanitizer_armed_and_checked_locks_issued(
            self, lock_order_sanitizer):
        assert lint_runtime.installed() is lock_order_sanitizer
        lock = new_lock("test.lock")
        assert isinstance(lock, CheckedLock)
        assert lock.name == "test.lock"

    def test_install_is_idempotent(self, lock_order_sanitizer):
        assert lint_runtime.install() is lock_order_sanitizer


class TestStoreDiscipline:
    """The real store under the session sanitizer: threaded LRU churn
    must exhibit (and validate) the documented lock order."""

    @pytest.fixture
    def store_dir(self, tmp_path, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        sink = NpyShardSink(tmp_path / "spill", name=product.name,
                            n_vertices=product.n_vertices)
        distributed_generate(small_er, triangle, 2, streaming=True,
                             a_edges_per_block=8, sink=sink)
        compact_shards(tmp_path / "spill", tmp_path / "store",
                       target_shard_edges=200)
        return tmp_path / "store"

    def test_store_churn_exhibits_lru_before_instrument(
            self, store_dir, lock_order_sanitizer):
        store = ShardStore(store_dir, cache_shards=2)
        assert isinstance(store._lock, CheckedLock)
        errors = []

        def worker(offset):
            try:
                for vertex in range(offset, offset + 12):
                    store.degree(vertex % store.n_vertices)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i * 7,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        edges = lock_order_sanitizer.observed_edges()
        assert ("store.lru", "obs.instrument") in edges, (
            f"store churn never bumped a counter inside the LRU lock; "
            f"observed {sorted(edges)}")
        assert ("obs.instrument", "store.lru") not in edges
