"""Tests for the sparse linear-algebra triangle kernels (Definitions 5-6)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import generators
from repro.triangles import (
    edge_triangles,
    strip_self_loops,
    total_triangles,
    total_wedges,
    vertex_triangles,
    wedge_counts,
)


class TestVertexTriangles:
    def test_clique_counts(self):
        for n in (3, 4, 5, 6):
            g = generators.complete_graph(n)
            expected = (n - 1) * (n - 2) // 2
            assert vertex_triangles(g).tolist() == [expected] * n

    def test_triangle_free(self):
        assert vertex_triangles(generators.cycle_graph(6)).sum() == 0
        assert vertex_triangles(generators.star_graph(4)).sum() == 0
        assert vertex_triangles(generators.path_graph(5)).sum() == 0

    def test_c3_is_a_triangle(self):
        assert vertex_triangles(generators.cycle_graph(3)).tolist() == [1, 1, 1]

    def test_hub_cycle(self, hub_cycle):
        assert vertex_triangles(hub_cycle).tolist() == [4, 2, 2, 2, 2]

    def test_self_loops_ignored(self):
        looped = generators.looped_clique(4)
        plain = generators.complete_graph(4)
        assert np.array_equal(vertex_triangles(looped), vertex_triangles(plain))

    def test_accepts_raw_matrix(self, k4):
        assert np.array_equal(vertex_triangles(k4.adjacency), vertex_triangles(k4))

    def test_matches_networkx(self, weblike_small):
        import networkx as nx

        nx_triangles = nx.triangles(weblike_small.to_networkx())
        ours = vertex_triangles(weblike_small)
        assert ours.tolist() == [nx_triangles[v] for v in range(weblike_small.n_vertices)]


class TestEdgeTriangles:
    def test_clique_edges(self):
        n = 6
        delta = edge_triangles(generators.complete_graph(n))
        assert delta.nnz == n * (n - 1)
        assert set(delta.data.tolist()) == {n - 2}

    def test_hub_cycle_edge_classes(self, hub_cycle):
        delta = edge_triangles(hub_cycle)
        # Hub edges participate in 2 triangles, cycle edges in 1 (Example 2).
        hub_values = [delta[0, v] for v in range(1, 5)]
        assert hub_values == [2, 2, 2, 2]
        cycle_values = [delta[1, 2], delta[2, 3], delta[3, 4], delta[4, 1]]
        assert cycle_values == [1, 1, 1, 1]

    def test_symmetry(self, weblike_small):
        delta = edge_triangles(weblike_small)
        assert (delta != delta.T).nnz == 0

    def test_row_sum_identity(self, weblike_small):
        """t_A = ½ Δ_A 1 (stated after Definition 6)."""
        delta = edge_triangles(weblike_small)
        t = vertex_triangles(weblike_small)
        assert np.array_equal(np.asarray(delta.sum(axis=1)).ravel() // 2, t)

    def test_support_subset_of_adjacency(self, small_er):
        delta = edge_triangles(small_er)
        # Every non-zero participation entry must sit on an existing edge.
        coo = delta.tocoo()
        adjacency = small_er.adjacency
        assert all(adjacency[i, j] == 1 for i, j in zip(coo.row, coo.col))

    def test_self_loops_stripped(self):
        looped = generators.looped_clique(4)
        delta = edge_triangles(looped)
        assert np.all(delta.diagonal() == 0)


class TestTotals:
    def test_total_triangles_clique(self):
        assert total_triangles(generators.complete_graph(6)) == 20

    def test_total_triangles_hub_cycle(self, hub_cycle):
        assert total_triangles(hub_cycle) == 4

    def test_total_matches_networkx(self, small_er):
        import networkx as nx

        expected = sum(nx.triangles(small_er.to_networkx()).values()) // 3
        assert total_triangles(small_er) == expected

    def test_wedges_clique(self):
        n = 5
        assert wedge_counts(generators.complete_graph(n)).tolist() == [6] * n
        assert total_wedges(generators.complete_graph(n)) == 5 * 6

    def test_wedges_star(self):
        star = generators.star_graph(4)
        assert wedge_counts(star)[0] == 6
        assert total_wedges(star) == 6

    def test_strip_self_loops(self):
        looped = generators.looped_clique(3)
        stripped = strip_self_loops(looped.adjacency)
        assert stripped.diagonal().sum() == 0
        assert stripped.nnz == 6
