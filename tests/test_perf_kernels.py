"""Property tests for the vectorized kernel layer (:mod:`repro.perf`).

The contract under test: every batched kernel is *exactly* equivalent to the
scalar/dense reference it replaces — on random sparse matrices including
self-loop, empty-row, and empty-matrix cases — so the fast path can never
silently diverge from the formulas.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import generators
from repro.core import (
    KroneckerTriangleStats,
    kron_degree_at,
    kron_edge_triangles,
    kron_local_clustering,
    kron_local_clustering_at,
    kron_vertex_triangles,
)
from repro.perf import CsrGatherer, csr_gather, csr_has_entry

KERNEL_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def sparse_matrices(draw):
    """Random small sparse matrices: rectangular, self loops, empty rows allowed."""
    n_rows = draw(st.integers(min_value=1, max_value=24))
    n_cols = draw(st.integers(min_value=1, max_value=24))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = sp.random(n_rows, n_cols, density=density, format="csr", random_state=rng)
    mat.data = np.round(mat.data * 9).astype(np.int64) + 1  # no accidental zeros
    mat.eliminate_zeros()
    mat.sort_indices()
    return mat


class TestCsrGather:
    @given(matrix=sparse_matrices(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    @KERNEL_SETTINGS
    def test_matches_dense_indexing(self, matrix, seed):
        rng = np.random.default_rng(seed)
        dense = matrix.toarray()
        n_queries = int(rng.integers(0, 100))
        rows = rng.integers(0, matrix.shape[0], n_queries)
        cols = rng.integers(0, matrix.shape[1], n_queries)
        assert np.array_equal(csr_gather(matrix, rows, cols), dense[rows, cols])
        assert np.array_equal(CsrGatherer(matrix).gather(rows, cols), dense[rows, cols])

    @given(matrix=sparse_matrices(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    @KERNEL_SETTINGS
    def test_scalar_queries_and_membership(self, matrix, seed):
        rng = np.random.default_rng(seed)
        dense = matrix.toarray()
        for _ in range(10):
            i = int(rng.integers(0, matrix.shape[0]))
            j = int(rng.integers(0, matrix.shape[1]))
            assert csr_gather(matrix, i, j) == dense[i, j]
            assert csr_has_entry(matrix, i, j) == (dense[i, j] != 0)

    def test_self_loop_diagonal(self):
        graph = generators.erdos_renyi(12, 0.35, seed=7, self_loops=True)
        adj = graph.adjacency
        diag = np.arange(12)
        assert np.array_equal(csr_gather(adj, diag, diag), adj.diagonal())

    def test_empty_matrix_and_empty_rows(self):
        empty = sp.csr_matrix((6, 6), dtype=np.int64)
        assert csr_gather(empty, 3, 3) == 0
        assert not csr_has_entry(empty, 3, 3)
        queries = np.array([0, 5]), np.array([5, 0])
        assert np.array_equal(csr_gather(empty, *queries), [0, 0])
        assert np.array_equal(CsrGatherer(empty).gather(*queries), [0, 0])
        # one stored row, all other rows empty
        one_row = sp.csr_matrix(([7], ([2], [4])), shape=(6, 6))
        assert csr_gather(one_row, 2, 4) == 7
        assert np.array_equal(csr_gather(one_row, np.arange(6), np.full(6, 4)),
                              [0, 0, 7, 0, 0, 0])

    def test_empty_query_batch(self):
        mat = sp.identity(4, format="csr")
        empty_idx = np.zeros(0, dtype=np.int64)
        assert csr_gather(mat, empty_idx, empty_idx).shape == (0,)

    def test_broadcasting(self):
        mat = sp.identity(5, format="csr", dtype=np.int64)
        assert np.array_equal(csr_gather(mat, np.arange(5), 2),
                              np.asarray([0, 0, 1, 0, 0]))

    def test_out_of_range_raises(self):
        mat = sp.identity(4, format="csr")
        with pytest.raises(IndexError):
            csr_gather(mat, 4, 0)
        with pytest.raises(IndexError):
            csr_gather(mat, np.array([0]), np.array([4]))

    def test_non_csr_input_coerced(self):
        coo = sp.coo_matrix(([3.0], ([1], [2])), shape=(4, 4))
        assert csr_gather(coo, 1, 2) == 3.0

    def test_non_sparse_input_rejected(self):
        with pytest.raises(TypeError):
            csr_gather(np.eye(3), 0, 0)


class TestEdgeValuesEquivalence:
    """``edge_values(ps, qs)`` ≡ ``[edge_value(p, q) for ...]`` — satellite property."""

    @pytest.mark.parametrize("factor_pair", [
        ("er", "k3"), ("er_loops", "k3"), ("er", "er_loops"), ("weblike", "pa"),
    ])
    def test_batched_equals_scalar_on_all_edges(self, factor_pair):
        factories = {
            "er": lambda: generators.erdos_renyi(14, 0.35, seed=1),
            "er_loops": lambda: generators.erdos_renyi(9, 0.4, seed=2, self_loops=True),
            "k3": lambda: generators.complete_graph(3),
            "weblike": lambda: generators.webgraph_like(24, seed=3),
            "pa": lambda: generators.triangle_constrained_pa(12, seed=13),
        }
        factor_a = factories[factor_pair[0]]()
        factor_b = factories[factor_pair[1]]()
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        full = kron_edge_triangles(factor_a, factor_b).tocoo()
        ps = full.row.astype(np.int64)
        qs = full.col.astype(np.int64)
        batched = stats.edge_values(ps, qs)
        scalar = np.asarray([stats.edge_value(int(p), int(q)) for p, q in zip(ps, qs)])
        assert np.array_equal(batched, scalar)
        assert np.array_equal(batched, full.data)

    def test_non_edges_evaluate_to_formula_zero(self, small_er, triangle):
        stats = KroneckerTriangleStats.from_factors(small_er, triangle)
        n_c = small_er.n_vertices * 3
        rng = np.random.default_rng(5)
        ps = rng.integers(0, n_c, 64)
        qs = rng.integers(0, n_c, 64)
        batched = stats.edge_values(ps, qs)
        scalar = np.asarray([stats.edge_value(int(p), int(q)) for p, q in zip(ps, qs)])
        assert np.array_equal(batched, scalar)


class TestVectorizedHistogram:
    @pytest.mark.parametrize("loops_a,loops_b", [(False, False), (False, True), (True, True)])
    def test_vertex_histogram_matches_full_vector(self, loops_a, loops_b):
        factor_a = generators.erdos_renyi(11, 0.35, seed=3, self_loops=loops_a)
        factor_b = generators.erdos_renyi(8, 0.4, seed=4, self_loops=loops_b)
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        full = kron_vertex_triangles(factor_a, factor_b)
        values, counts = np.unique(full, return_counts=True)
        assert stats.vertex_histogram() == {int(v): int(c) for v, c in zip(values, counts)}


class TestBatchedFormulaQueries:
    def test_local_clustering_point_query(self, small_er, triangle):
        full = kron_local_clustering(small_er, triangle)
        ps = np.arange(small_er.n_vertices * 3)
        assert np.allclose(kron_local_clustering_at(small_er, triangle, ps), full)
        assert kron_local_clustering_at(small_er, triangle, 0) == pytest.approx(full[0])

    def test_degree_point_query_accepts_sequences(self, small_er, triangle):
        from repro.core import kron_degrees
        full = kron_degrees(small_er, triangle)
        assert np.array_equal(kron_degree_at(small_er, triangle, [0, 5, 9]),
                              full[[0, 5, 9]])
        assert kron_degree_at(small_er, triangle, 7) == int(full[7])
