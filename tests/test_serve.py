"""Tests for the asyncio edge-query service (repro.serve).

Four layers of coverage:

* the wire protocol (framing, size caps, malformed bodies, error frames);
* the request coalescer (batching, error isolation, max-batch splitting);
* served-vs-in-process equivalence — every query type answered over the
  socket must equal the local :class:`~repro.store.ShardStore` answer, both
  single-threaded and under many concurrent client threads hammering one
  shared store;
* the failure paths the server must survive per-connection: malformed
  frames, oversized requests, disconnects mid-frame, version mismatches,
  and bad arguments — none of which may take the server (or another
  client's connection) down.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import socket
import struct
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.parallel import distributed_generate
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    QueryClient,
    ServerError,
    ThreadedServer,
    protocol,
)
from repro.serve.server import _Coalescer
from repro.store import ShardStore, compact_shards

PAYLOAD = ("triangles", "trussness")


# ----------------------------------------------------------------------
# One compacted payload store + one running server for the whole module
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def factors():
    factor_a = generators.webgraph_like(40, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(15, seed=13)
    return factor_a, factor_b


@pytest.fixture(scope="module")
def product(factors):
    return KroneckerGraph(*factors)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, factors, product):
    tmp = tmp_path_factory.mktemp("serve-store")
    sink = NpyShardSink(tmp / "spill", name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=PAYLOAD)
    distributed_generate(*factors, 4, streaming=True, a_edges_per_block=8,
                         sink=sink, payload_columns=PAYLOAD)
    compact_shards(tmp / "spill", tmp / "store", target_shard_edges=1200)
    return tmp / "store"


@pytest.fixture(scope="module")
def local_store(store_dir):
    """A reference in-process store, separate from the served instance."""
    return ShardStore(store_dir, cache_shards=8)


@pytest.fixture(scope="module")
def server(store_dir):
    with ThreadedServer(store_dir, cache_shards=8) as handle:
        yield handle


@pytest.fixture
def client(server):
    with QueryClient(server.host, server.port) as c:
        yield c


def _raw_socket(server):
    return socket.create_connection((server.host, server.port), timeout=10)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        obj = {"op": "degree", "args": {"vertex": 7}, "v": 1}
        frame = protocol.encode_frame(obj)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_body(frame[4:]) == obj

    def test_encode_rejects_oversized(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame({"blob": "x" * 100}, max_bytes=50)

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_body(b"{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_body(b"[1, 2, 3]")

    def test_error_frame_roundtrips_store_exceptions(self):
        frame = protocol.error_frame(ValueError("edge (1, 2) is not stored"))
        assert frame == {"ok": False, "error": {
            "kind": "ValueError", "message": "edge (1, 2) is not stored"}}
        with pytest.raises(ValueError, match=r"edge \(1, 2\) is not stored"):
            protocol.raise_error(frame["error"])

    def test_unknown_error_kind_becomes_server_error(self):
        with pytest.raises(ServerError, match="InternalError: boom"):
            protocol.raise_error({"kind": "InternalError", "message": "boom"})

    def test_read_frame_clean_eof_returns_none(self, server):
        with _raw_socket(server) as sock:
            pass  # never write anything; the server just sees EOF
        # Client side of the same rule: a socket the peer closed returns None.
        left, right = socket.socketpair()
        right.close()
        assert protocol.read_frame(left) is None
        left.close()

    def test_read_frame_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        right.sendall(struct.pack(">I", 100) + b"only a little")
        right.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(left)
        left.close()

    def test_read_frame_rejects_oversized_header(self):
        left, right = socket.socketpair()
        right.sendall(struct.pack(">I", 1 << 29))
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_frame(left, max_bytes=1 << 20)
        left.close()
        right.close()


# ----------------------------------------------------------------------
# Request coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submissions_fold_into_one_batch(self):
        async def main():
            loop = asyncio.get_running_loop()
            calls = []

            def flush(values):
                calls.append(list(values))
                return [v * 2 for v in values]

            with ThreadPoolExecutor(2) as executor:
                coalescer = _Coalescer(loop, executor, flush)
                futures = [coalescer.submit(i) for i in range(10)]
                results = await asyncio.gather(*futures)
            assert results == [i * 2 for i in range(10)]
            assert calls == [list(range(10))]
            assert coalescer.stats() == {"requests": 10, "batches": 1,
                                         "max_batch": 10}
        self._run(main())

    def test_max_batch_splits_flushes(self):
        async def main():
            loop = asyncio.get_running_loop()
            calls = []

            def flush(values):
                calls.append(len(values))
                return values

            with ThreadPoolExecutor(2) as executor:
                coalescer = _Coalescer(loop, executor, flush, max_batch=4)
                futures = [coalescer.submit(i) for i in range(10)]
                await asyncio.gather(*futures)
            assert calls == [4, 4, 2]
        self._run(main())

    def test_flush_failure_fails_every_future_in_batch(self):
        async def main():
            loop = asyncio.get_running_loop()

            def flush(values):
                raise RuntimeError("batch kernel exploded")

            with ThreadPoolExecutor(2) as executor:
                coalescer = _Coalescer(loop, executor, flush)
                futures = [coalescer.submit(i) for i in range(3)]
                results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
        self._run(main())


# ----------------------------------------------------------------------
# Served answers equal the in-process store
# ----------------------------------------------------------------------
class TestServedEquivalence:
    def test_hello_describes_store(self, client, local_store):
        info = client.hello()
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["store"]["n_vertices"] == local_store.n_vertices
        assert info["store"]["total_edges"] == local_store.total_edges
        assert info["store"]["payload_columns"] == list(PAYLOAD)
        assert "degree" in info["ops"] and "stats" in info["ops"]

    def test_degree_and_degrees(self, client, local_store, product):
        for v in (0, 37, product.n_vertices - 1):
            assert client.degree(v) == local_store.degree(v)
        vs = np.arange(0, product.n_vertices, 5)
        served = client.degrees(vs)
        assert served.dtype == np.int64
        assert np.array_equal(served, local_store.degrees(vs))

    def test_neighbors(self, client, local_store, rng):
        for v in map(int, rng.choice(local_store.n_vertices, 12,
                                     replace=False)):
            served = client.neighbors(v)
            assert served.dtype == np.int64
            assert np.array_equal(served, local_store.neighbors(v))

    def test_neighbors_with_payload(self, client, local_store):
        v = 37
        ids, payload = client.neighbors_with_payload(v)
        rows = local_store.edges_for_sources([v], with_payload=True)
        rows = rows[rows[:, 1] != v]
        assert np.array_equal(ids, rows[:, 1])
        for offset, name in enumerate(PAYLOAD):
            assert payload[name].dtype == np.int64
            assert np.array_equal(payload[name], rows[:, 2 + offset])

    def test_edges_in_range(self, client, local_store):
        n = local_store.n_vertices
        for lo, hi, with_payload in ((0, n, False), (0, n, True),
                                     (n // 4, n // 2, True), (5, 5, False)):
            served = client.edges_in_range(lo, hi, with_payload=with_payload)
            local = local_store.edges_in_range(lo, hi,
                                               with_payload=with_payload)
            assert served.dtype == local.dtype == np.int64
            assert served.shape == local.shape
            assert np.array_equal(served, local)

    def test_egonet(self, client, local_store, rng):
        for v in map(int, rng.choice(local_store.n_vertices, 8,
                                     replace=False)):
            served = client.egonet(v)
            local = local_store.egonet(v)
            assert np.array_equal(served.vertices, local.vertices)
            assert (served.graph.adjacency != local.graph.adjacency).nnz == 0
            assert served.graph.name == local.graph.name
            assert served.degree_of_center() == local.degree_of_center()
            assert served.triangles_at_center() == local.triangles_at_center()

    def test_egonet_with_payload(self, client, local_store):
        served_ego, served_rows = client.egonet(37, with_payload=True)
        local_ego, local_rows = local_store.egonet(37, with_payload=True)
        assert np.array_equal(served_ego.vertices, local_ego.vertices)
        assert served_rows.dtype == np.int64
        assert np.array_equal(served_rows, local_rows)

    def test_subgraph(self, client, local_store, rng):
        selection = [int(v) for v in
                     rng.choice(local_store.n_vertices, 15, replace=False)]
        served = client.subgraph(selection)
        local = local_store.subgraph(selection)
        assert (served.adjacency != local.adjacency).nnz == 0
        assert served.name == local.name

    def test_subgraph_with_payload(self, client, local_store):
        selection = [5, 3, 99, 37, 200]
        served, served_rows = client.subgraph(selection, with_payload=True)
        local, local_rows = local_store.subgraph(selection, with_payload=True)
        assert (served.adjacency != local.adjacency).nnz == 0
        assert np.array_equal(served_rows, local_rows)

    def test_edge_payloads(self, client, local_store):
        rows = local_store.edges_in_range(0, local_store.n_vertices)
        probe = rows[:: max(1, rows.shape[0] // 32)]
        served = client.edge_payloads(probe[:, 0], probe[:, 1])
        local = local_store.edge_payloads(probe[:, 0], probe[:, 1])
        assert served.dtype == np.int64
        assert np.array_equal(served, local)
        p, q = map(int, rows[0])
        assert client.edge_payload(p, q) == local_store.edge_payload(p, q)

    def test_served_errors_match_local_messages(self, client, local_store):
        with pytest.raises(IndexError, match="out of range"):
            client.degree(10 ** 9)
        with pytest.raises(ValueError, match="not stored in this shard store"):
            client.edge_payloads([0], [0])
        with pytest.raises(ValueError, match="duplicates"):
            client.subgraph([1, 1, 2])
        # The connection survives dispatch-level errors: same client, next
        # request answered normally.
        assert client.degree(37) == local_store.degree(37)

    def test_stats_surface(self, client):
        client.degree(0)
        stats = client.stats()
        assert stats["query"] == "stats"
        server_stats = stats["server"]
        assert server_stats["requests"]["degree"] >= 1
        assert server_stats["connections_total"] >= 1
        assert "degree" in server_stats["latency_us"]
        histogram = server_stats["latency_us"]["degree"]
        assert histogram["count"] == server_stats["requests"]["degree"]
        assert sum(histogram["buckets"].values()) == histogram["count"]
        assert server_stats["coalesced"]["degree"]["requests"] >= 1
        store_stats = stats["store"]
        assert store_stats["n_shards"] >= 1
        assert store_stats["shard_reads"] >= 1


# ----------------------------------------------------------------------
# Concurrent clients against one shared store
# ----------------------------------------------------------------------
class TestConcurrentServing:
    N_THREADS = 10
    N_ROUNDS = 6

    def test_mixed_queries_from_many_threads(self, server, store_dir, product):
        """The acceptance bar: byte-identical answers under ≥ 8 concurrent
        clients, all served by ONE store whose LRU is shared."""
        reference = ShardStore(store_dir, cache_shards=8)
        n = reference.n_vertices
        rows = reference.edges_in_range(0, n, with_payload=True)
        rng = np.random.default_rng(17)
        vertices = rng.choice(n, self.N_THREADS * self.N_ROUNDS)
        expected = {
            "degrees": reference.degrees(np.arange(0, n, 11)),
            "range": reference.edges_in_range(n // 4, n // 2,
                                              with_payload=True),
        }
        store = server.server.store
        store.reset_stats()
        failures = []

        def worker(thread_index: int) -> None:
            try:
                with QueryClient(server.host, server.port) as c:
                    for round_index in range(self.N_ROUNDS):
                        v = int(vertices[thread_index * self.N_ROUNDS
                                         + round_index])
                        assert c.degree(v) == reference.degree(v)
                        assert np.array_equal(c.neighbors(v),
                                              reference.neighbors(v))
                        assert np.array_equal(
                            c.degrees(np.arange(0, n, 11)),
                            expected["degrees"])
                        served_range = c.edges_in_range(
                            n // 4, n // 2, with_payload=True)
                        assert served_range.dtype == np.int64
                        assert np.array_equal(served_range,
                                              expected["range"])
                        ego_served = c.egonet(v)
                        ego_local = reference.egonet(v)
                        assert np.array_equal(ego_served.vertices,
                                              ego_local.vertices)
                        assert (ego_served.triangles_at_center()
                                == ego_local.triangles_at_center())
                        probe = rows[(thread_index * 7 + round_index)
                                     % rows.shape[0]]
                        assert c.edge_payload(int(probe[0]), int(probe[1])) \
                            == reference.edge_payload(int(probe[0]),
                                                      int(probe[1]))
            except Exception as exc:  # surfaced after join
                failures.append((thread_index, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:3]

        # One shared LRU served everyone: hits accumulated on the single
        # store instance (shard_reads may legitimately be 0 here — earlier
        # tests already pulled every shard into the shared cache).
        stats = store.stats()
        assert stats["cache_hits"] > 0


# ----------------------------------------------------------------------
# Failure paths: the server survives every bad client
# ----------------------------------------------------------------------
class TestFailurePaths:
    def _assert_server_alive(self, server):
        with QueryClient(server.host, server.port) as probe:
            assert probe.degree(0) >= 0

    def test_malformed_frame_gets_error_then_close(self, server):
        with _raw_socket(server) as sock:
            body = b"this is not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["kind"] == "ProtocolError"
            assert "JSON" in response["error"]["message"]
            # The stream is untrusted now: the server closes it.
            assert sock.recv(1) == b""
        self._assert_server_alive(server)

    def test_oversized_request_refused_without_allocation(self, server):
        with _raw_socket(server) as sock:
            sock.sendall(struct.pack(">I", (64 << 20)))  # 64 MiB claim
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["kind"] == "ProtocolError"
            assert "exceeds" in response["error"]["message"]
            assert sock.recv(1) == b""
        self._assert_server_alive(server)

    def test_disconnect_mid_frame_leaves_server_up(self, server):
        sock = _raw_socket(server)
        sock.sendall(struct.pack(">I", 4096) + b"partial")
        sock.close()  # vanish mid-request
        self._assert_server_alive(server)

    def test_disconnect_mid_header_leaves_server_up(self, server):
        sock = _raw_socket(server)
        sock.sendall(b"\x00\x00")  # half a length prefix
        sock.close()
        self._assert_server_alive(server)

    def test_version_mismatch_keeps_connection_open(self, server):
        with _raw_socket(server) as sock:
            protocol.write_frame(sock, {"v": 99, "op": "degree",
                                        "args": {"vertex": 0}})
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert "version" in response["error"]["message"]
            # Framing was intact, so the same connection still answers.
            protocol.write_frame(sock, protocol.request_frame(
                "degree", {"vertex": 0}))
            assert protocol.read_frame(sock)["ok"] is True

    def test_unknown_op_and_bad_args_are_frames_not_disconnects(self, server):
        with _raw_socket(server) as sock:
            protocol.write_frame(sock, protocol.request_frame("nonsense"))
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert "unknown op" in response["error"]["message"]
            protocol.write_frame(sock, protocol.request_frame("degree", {}))
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert "missing 'vertex'" in response["error"]["message"]
            protocol.write_frame(sock, protocol.request_frame(
                "degree", {"vertex": "seven"}))
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert "must be an integer" in response["error"]["message"]
            # Still alive on the very same connection.
            protocol.write_frame(sock, protocol.request_frame(
                "degree", {"vertex": 0}))
            assert protocol.read_frame(sock)["ok"] is True

    def test_threaded_server_surfaces_startup_errors(self, tmp_path,
                                                     store_dir):
        """A bad store directory or bad option must raise from start(), not
        hang the caller on the ready event while the server thread dies."""
        with pytest.raises(FileNotFoundError):
            ThreadedServer(tmp_path / "no-such-store").start()
        with pytest.raises(ValueError, match="cache_shards"):
            ThreadedServer(store_dir, cache_shards=0).start()

    def test_shutdown_lets_in_flight_requests_finish(self, store_dir):
        """Graceful stop: a request being served when another client asks
        for shutdown still gets its full response.  The served store is
        hooked so the shutdown provably lands while the query is in
        flight — no scheduling luck involved."""
        import time as time_mod

        with ThreadedServer(store_dir, cache_shards=8) as fresh:
            store = fresh.server.store
            in_flight = threading.Event()
            original = store.edges_in_range

            def slow_edges_in_range(*args, **kwargs):
                in_flight.set()
                time_mod.sleep(0.3)  # hold the request open past the shutdown
                return original(*args, **kwargs)

            store.edges_in_range = slow_edges_in_range
            results = {}

            def big_query():
                with QueryClient(fresh.host, fresh.port) as c:
                    results["rows"] = c.edges_in_range(0, c.n_vertices,
                                                       with_payload=True)

            worker = threading.Thread(target=big_query)
            worker.start()
            assert in_flight.wait(timeout=30)
            with QueryClient(fresh.host, fresh.port) as killer:
                killer.shutdown_server()
            worker.join(timeout=30)
            assert not worker.is_alive()
            assert results["rows"].shape[0] > 0

    def test_one_bad_vertex_cannot_poison_a_coalesced_batch(self, server):
        """Out-of-range scalars are rejected before coalescing, so an
        innocent concurrent request never inherits the IndexError."""
        results = []

        def good():
            with QueryClient(server.host, server.port) as c:
                results.append(c.degree(0))

        def bad():
            with QueryClient(server.host, server.port) as c:
                with pytest.raises(IndexError):
                    c.degree(10 ** 9)

        threads = [threading.Thread(target=t) for t in (good, bad) * 4]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4


# ----------------------------------------------------------------------
# CLI integration: query --connect and the serve subcommand
# ----------------------------------------------------------------------
class TestServeCli:
    def test_query_connect_matches_local_json(self, server, store_dir,
                                              capsys):
        from repro import cli
        for flags in (["--degree", "37"],
                      ["--neighbors", "37", "--payload"],
                      ["--egonet", "37", "--payload"],
                      ["--range", "0", "100", "--limit", "5"]):
            assert cli.main(["query", str(store_dir), "--json", *flags]) == 0
            local = json.loads(capsys.readouterr().out)
            assert cli.main(["query", "--connect", server.address,
                             "--json", *flags]) == 0
            remote = json.loads(capsys.readouterr().out)
            # Cache counters legitimately differ between the two stores;
            # every query-answer key must be identical.
            local.pop("store")
            remote.pop("store")
            assert local == remote

    def test_query_binary_matches_json_plane(self, server, capsys):
        """`query --connect --range --binary` prints the exact JSON the
        scalar plane prints — the transport changed, not the answer."""
        from repro import cli
        for flags in (["--range", "0", "100", "--limit", "5"],
                      ["--range", "0", "400", "--payload"]):
            assert cli.main(["query", "--connect", server.address,
                             "--json", *flags]) == 0
            json_plane = json.loads(capsys.readouterr().out)
            assert cli.main(["query", "--connect", server.address,
                             "--json", "--binary", *flags]) == 0
            binary_plane = json.loads(capsys.readouterr().out)
            json_plane.pop("store")
            binary_plane.pop("store")
            assert json_plane == binary_plane

    def test_query_binary_needs_connect_and_range(self, store_dir, server):
        from repro import cli
        with pytest.raises(SystemExit, match="--binary"):
            cli.main(["query", str(store_dir), "--binary",
                      "--range", "0", "10"])
        with pytest.raises(SystemExit, match="--binary"):
            cli.main(["query", "--connect", server.address, "--binary",
                      "--degree", "3"])

    def test_query_requires_exactly_one_source(self, store_dir, server):
        from repro import cli
        with pytest.raises(SystemExit, match="exactly one"):
            cli.main(["query", "--degree", "3"])
        with pytest.raises(SystemExit, match="exactly one"):
            cli.main(["query", str(store_dir), "--connect", server.address,
                      "--degree", "3"])

    def test_serve_subcommand_end_to_end(self, store_dir):
        """`repro-kron serve` in a real subprocess: binds an ephemeral port,
        answers queries, stops gracefully on a shutdown request, and prints
        the request/cache summary."""
        env = dict(os.environ)
        src = str((
            __import__("pathlib").Path(__file__).resolve().parent.parent
            / "src"))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-u", "-c",
             "from repro.cli import main; import sys; "
             "sys.exit(main(sys.argv[1:]))",
             "serve", str(store_dir), "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", banner)
            assert match, banner
            with QueryClient("127.0.0.1", int(match.group(1))) as c:
                assert c.degree(37) >= 0
                assert c.stats()["server"]["requests"]["degree"] == 1
                c.shutdown_server()
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "served" in stdout and "requests" in stdout


# ----------------------------------------------------------------------
# Protocol v2: the binary bulk plane
# ----------------------------------------------------------------------
def _scripted_server(handler):
    """A listening socket whose every accepted connection runs *handler* —
    the hand-rolled peer for client-side fuzz cases.  Close the returned
    socket to stop the accept thread."""
    lsock = socket.socket()
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(4)
    port = lsock.getsockname()[1]

    def run():
        while True:
            try:
                conn, _ = lsock.accept()
            except OSError:
                return  # listener closed: test over
            with conn:
                try:
                    handler(conn)
                except Exception:
                    pass  # a client that already hung up is fine

    threading.Thread(target=run, daemon=True).start()
    return lsock, port


class TestBinaryPlane:
    def test_hello_announces_v2_and_binary_ops(self, client):
        info = client.hello()
        assert info["protocol"] == PROTOCOL_VERSION == 2
        assert info["protocol_versions"] == [1, 2]
        assert info["binary_ops"] == ["edges_in_range"]

    def test_binary_rows_equal_json_and_local(self, client, local_store):
        n = local_store.n_vertices
        for lo, hi, with_payload in ((0, n, False), (0, n, True),
                                     (n // 4, n // 2, True), (5, 5, False)):
            local = local_store.edges_in_range(lo, hi,
                                               with_payload=with_payload)
            json_rows = client.edges_in_range(lo, hi,
                                              with_payload=with_payload)
            binary_rows = client.edges_in_range(lo, hi,
                                                with_payload=with_payload,
                                                binary=True)
            assert binary_rows.dtype == local.dtype == np.int64
            assert binary_rows.shape == local.shape
            assert np.array_equal(binary_rows, local)
            assert np.array_equal(binary_rows, json_rows)

    def test_binary_rows_are_writable(self, client, local_store):
        rows = client.edges_in_range(0, local_store.n_vertices, binary=True)
        rows[0, 0] = -1  # would raise on a read-only frombuffer wrap
        assert rows[0, 0] == -1

    def test_client_counts_binary_transfer(self, client):
        before = client.connection_stats()
        rows = client.edges_in_range(0, 50, binary=True)
        after = client.connection_stats()
        assert after["binary_frames"] == before["binary_frames"] + 1
        assert after["binary_bytes"] == before["binary_bytes"] + rows.nbytes

    def test_server_counts_binary_transfer(self, server, client):
        before = server.server.stats()["server"]["binary"]
        rows = client.edges_in_range(0, 50, binary=True)
        after = server.server.stats()["server"]["binary"]
        assert after["frames"] == before["frames"] + 1
        assert after["bytes"] == before["bytes"] + rows.nbytes

    def test_binary_with_limit_rejected(self, client):
        with pytest.raises(ValueError, match="limit"):
            client.request("edges_in_range",
                           {"lo": 0, "hi": 10, "binary": True, "limit": 5})
        # Error frames never carry a binary follow-up: same connection,
        # next request answered in sync.
        assert client.degree(0) >= 0

    def test_connection_survives_interleaved_planes(self, client,
                                                    local_store):
        n = local_store.n_vertices
        expected = local_store.edges_in_range(0, n // 3)
        for binary in (False, True, True, False, True):
            assert np.array_equal(
                client.edges_in_range(0, n // 3, binary=binary), expected)
        assert client.connection_stats()["connects"] == 1


class TestProtocolV2Compat:
    """v1 requests keep working byte-identically against the v2 server."""

    def test_v1_json_request_round_trips_unchanged(self, server):
        wire_args = {"lo": 0, "hi": 200, "with_payload": True}
        with _raw_socket(server) as sock:
            protocol.write_frame(sock, {"v": 1, "op": "edges_in_range",
                                        "args": wire_args})
            v1_response = protocol.read_frame(sock)
            protocol.write_frame(sock, {"v": 2, "op": "edges_in_range",
                                        "args": wire_args})
            v2_response = protocol.read_frame(sock)
        assert v1_response is not None and v1_response["ok"]
        assert v1_response == v2_response

    def test_v1_client_asking_binary_gets_error_frame(self, server):
        """The fuzz case: a v1 peer requesting the v2 feature gets ONE
        ProtocolError frame and the connection stays usable (framing is
        intact — nothing was desynchronized)."""
        with _raw_socket(server) as sock:
            protocol.write_frame(sock, {
                "v": 1, "op": "edges_in_range",
                "args": {"lo": 0, "hi": 10, "binary": True}})
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["kind"] == "ProtocolError"
            assert "protocol version >= 2" in response["error"]["message"]
            # No binary frame follows the error; the stream is in sync.
            protocol.write_frame(sock, {"v": 1, "op": "degree",
                                        "args": {"vertex": 0}})
            assert protocol.read_frame(sock)["ok"] is True


class TestBinaryFuzz:
    """Untrustworthy binary frames: one error, connection dropped cleanly."""

    @staticmethod
    def _control(nbytes: int, shape) -> dict:
        return protocol.result_frame({
            "query": "edges_in_range", "lo": 0, "hi": 10,
            "n_edges": shape[0], "columns": ["src", "dst"],
            "rows": {"shape": list(shape), "dtype": "int64",
                     "nbytes": nbytes}})

    def test_truncated_binary_frame(self):
        def handler(conn):
            protocol.read_frame(conn)
            conn.sendall(protocol.encode_frame(self._control(160, (10, 2))))
            conn.sendall(struct.pack(">I", 160) + b"x" * 50)  # then close

        lsock, port = _scripted_server(handler)
        try:
            with QueryClient("127.0.0.1", port, timeout=10) as c:
                with pytest.raises(ProtocolError, match="mid-binary-frame"):
                    c.edges_in_range(0, 10, binary=True)
                # The desynchronized socket was dropped, not kept for reuse.
                assert c._sock is None
        finally:
            lsock.close()

    def test_nbytes_mismatch_with_header(self):
        def handler(conn):
            protocol.read_frame(conn)
            # Descriptor promises 160 bytes; the binary frame carries 80.
            conn.sendall(protocol.encode_frame(self._control(160, (10, 2))))
            conn.sendall(struct.pack(">I", 80) + b"y" * 80)

        lsock, port = _scripted_server(handler)
        try:
            with QueryClient("127.0.0.1", port, timeout=10) as c:
                with pytest.raises(ProtocolError, match="announced"):
                    c.edges_in_range(0, 10, binary=True)
                assert c._sock is None
        finally:
            lsock.close()

    def test_descriptor_inconsistent_with_itself(self):
        def handler(conn):
            protocol.read_frame(conn)
            # Header and nbytes agree (80) but the shape needs 160 bytes.
            conn.sendall(protocol.encode_frame(self._control(80, (10, 2))))
            conn.sendall(struct.pack(">I", 80) + b"z" * 80)

        lsock, port = _scripted_server(handler)
        try:
            with QueryClient("127.0.0.1", port, timeout=10) as c:
                with pytest.raises(ProtocolError, match="inconsistent"):
                    c.edges_in_range(0, 10, binary=True)
                assert c._sock is None
        finally:
            lsock.close()


class TestClientConnection:
    def test_timeout_is_configurable_and_fires(self):
        """A hung server (accepts, never answers) times the client out
        instead of blocking it forever."""
        def handler(conn):
            protocol.read_frame(conn)  # swallow the request, answer nothing
            threading.Event().wait(5)

        lsock, port = _scripted_server(handler)
        try:
            with QueryClient("127.0.0.1", port, timeout=0.3) as c:
                assert c.timeout == 0.3
                with pytest.raises(socket.timeout):
                    c.request("degree", {"vertex": 0})
                assert c._sock is None  # timed-out stream is never reused
        finally:
            lsock.close()

    def test_reconnect_retry_counted_in_stats(self):
        """A server that drops the connection after every answer forces the
        client's retry-once path; connection_stats must show it."""
        answer = protocol.result_frame({"query": "degree", "vertex": 0,
                                        "degree": 7})

        def handler(conn):
            if protocol.read_frame(conn) is not None:
                conn.sendall(protocol.encode_frame(answer))
            # connection closes when the handler returns: one answer each

        lsock, port = _scripted_server(handler)
        try:
            with QueryClient("127.0.0.1", port, timeout=10) as c:
                assert c.request("degree", {"vertex": 0})["degree"] == 7
                assert c.request("degree", {"vertex": 0})["degree"] == 7
                stats = c.connection_stats()
                assert stats["reconnect_retries"] == 1
                assert stats["connects"] == 2
                assert stats["requests_sent"] == 3  # one round trip retried
        finally:
            lsock.close()

    def test_cli_timeout_flag_reaches_the_socket(self, server, capsys,
                                                 monkeypatch):
        from repro import cli
        seen = {}
        original = QueryClient.from_address.__func__

        def spy(cls, address, **kwargs):
            seen.update(kwargs)
            return original(cls, address, **kwargs)

        monkeypatch.setattr(QueryClient, "from_address",
                            classmethod(spy))
        assert cli.main(["query", "--connect", server.address, "--json",
                         "--degree", "0", "--timeout", "7.5"]) == 0
        capsys.readouterr()
        assert seen["timeout"] == 7.5
