"""Tests for partition_manifest: slicing a compacted manifest for a fleet.

Slices are *manifests only* — no shard bytes move — so the properties under
test are structural: every slice manifest round-trips through the one
``read_shard_manifest`` validator, relative file references resolve to the
parent's ``.npy`` files, assigned ranges tile the vertex space, boundary
shards are listed by both neighbouring slices, and re-partitioning is
idempotent (including cleanup of stale slice directories from a wider
previous partition).  Edge cases from the issue: single-shard store, empty
slice ranges, a boundary falling inside one shard's range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.graphs.io import SHARD_MANIFEST, read_shard_manifest
from repro.parallel import distributed_generate
from repro.store import ShardStore, compact_shards, partition_manifest

PAYLOAD = ("triangles", "trussness")


@pytest.fixture(scope="module")
def spill_dir(tmp_path_factory):
    factor_a = generators.webgraph_like(24, edges_per_vertex=3, seed=5)
    factor_b = generators.triangle_constrained_pa(10, seed=7)
    product = KroneckerGraph(factor_a, factor_b)
    tmp = tmp_path_factory.mktemp("partition-spill")
    sink = NpyShardSink(tmp / "spill", name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=PAYLOAD)
    distributed_generate(factor_a, factor_b, 3, streaming=True,
                         a_edges_per_block=8, sink=sink,
                         payload_columns=PAYLOAD)
    return tmp / "spill"


@pytest.fixture(scope="module")
def store_dir(spill_dir, tmp_path_factory):
    store = tmp_path_factory.mktemp("partition") / "store"
    compact_shards(spill_dir, store, target_shard_edges=400)
    return store


@pytest.fixture(scope="module")
def single_shard_store(spill_dir, tmp_path_factory):
    store = tmp_path_factory.mktemp("partition-single") / "store"
    compact_shards(spill_dir, store, target_shard_edges=10_000_000)
    return store


def test_slices_validate_and_tile_the_vertex_space(store_dir):
    manifest = read_shard_manifest(store_dir)
    slices = partition_manifest(store_dir, n_slices=3)
    assert [s["index"] for s in slices] == [0, 1, 2]
    assert slices[0]["src_lo"] == 0
    assert slices[-1]["src_hi"] == manifest["n_vertices"]
    for left, right in zip(slices, slices[1:]):
        assert left["src_hi"] == right["src_lo"]
    for entry in slices:
        # The one shared validator accepts every slice manifest, and the
        # slice identity travels in metadata.
        sliced = read_shard_manifest(entry["directory"])
        assert sliced["n_vertices"] == manifest["n_vertices"]
        assert sliced["payload_columns"] == manifest["payload_columns"]
        assert sliced["metadata"]["slice"] == {
            "index": entry["index"], "of": len(slices),
            "src_lo": entry["src_lo"], "src_hi": entry["src_hi"],
            "store": "../..",
        }
    # Every parent shard is listed by at least one slice.
    listed = set()
    for entry in slices:
        for shard in read_shard_manifest(entry["directory"])["shards"]:
            listed.add(shard["file"].rsplit("/", 1)[-1])
    assert listed == {s["file"] for s in manifest["shards"]}


def test_slice_opens_as_shard_store_with_relative_files(store_dir):
    parent = ShardStore(store_dir, cache_shards=16)
    slices = partition_manifest(store_dir, n_slices=3)
    middle = slices[1]
    store = ShardStore(middle["directory"], cache_shards=4)
    lo, hi = middle["src_lo"], middle["src_hi"]
    # Within its assigned range a slice answers exactly like the parent —
    # the relative .npy references resolve to the same bytes.
    assert np.array_equal(store.edges_in_range(lo, hi, with_payload=True),
                          parent.edges_in_range(lo, hi, with_payload=True))
    vs = np.arange(lo, min(hi, lo + 50))
    assert np.array_equal(store.degrees(vs), parent.degrees(vs))


def test_single_shard_store_partitions(single_shard_store):
    manifest = read_shard_manifest(single_shard_store)
    assert len(manifest["shards"]) == 1
    slices = partition_manifest(single_shard_store, n_slices=3)
    assert len(slices) == 3
    non_empty = [s for s in slices if s["src_lo"] < s["src_hi"]]
    # Shard-granularity cuts cannot split the one shard: one slice owns the
    # whole range, the rest are empty — and all still validate and open.
    assert len(non_empty) == 1
    assert non_empty[0]["n_shards"] == 1
    for entry in slices:
        store = ShardStore(entry["directory"])
        assert store.n_shards == entry["n_shards"]


def test_empty_slice_range_yields_valid_empty_manifest(store_dir):
    manifest = read_shard_manifest(store_dir)
    n = manifest["n_vertices"]
    slices = partition_manifest(store_dir, boundaries=[n // 2, n // 2])
    empty = slices[1]
    assert empty["src_lo"] == empty["src_hi"] == n // 2
    assert empty["n_shards"] == 0 and empty["n_edges"] == 0
    sliced = read_shard_manifest(empty["directory"])
    assert sliced["shards"] == [] and sliced["total_edges"] == 0
    store = ShardStore(empty["directory"])
    assert store.edges_in_range(0, n).shape == (0, 2)


def test_boundary_inside_a_shard_lists_it_on_both_sides(store_dir):
    manifest = read_shard_manifest(store_dir)
    shard = manifest["shards"][len(manifest["shards"]) // 2]
    assert shard["src_max"] > shard["src_min"]  # a split point must exist
    boundary = (shard["src_min"] + shard["src_max"] + 1) // 2
    assert shard["src_min"] < boundary <= shard["src_max"]
    slices = partition_manifest(store_dir, boundaries=[boundary])
    left = read_shard_manifest(slices[0]["directory"])
    right = read_shard_manifest(slices[1]["directory"])
    straddler = shard["file"]
    assert any(s["file"].endswith(straddler) for s in left["shards"])
    assert any(s["file"].endswith(straddler) for s in right["shards"])
    # Both slices answer their own side of the boundary like the parent.
    parent = ShardStore(store_dir, cache_shards=16)
    for entry in slices:
        store = ShardStore(entry["directory"])
        vs = np.asarray([entry["src_lo"], entry["src_hi"] - 1])
        assert np.array_equal(store.degrees(vs), parent.degrees(vs))


def test_repartition_is_idempotent_and_cleans_stale_slices(store_dir):
    wide = partition_manifest(store_dir, n_slices=4)
    assert len(list((store_dir / "slices").iterdir())) == 4
    first = partition_manifest(store_dir, n_slices=2)
    texts = [(s["directory"] / SHARD_MANIFEST).read_text() for s in first]
    again = partition_manifest(store_dir, n_slices=2)
    assert [s["directory"] for s in again] == [s["directory"] for s in first]
    assert [(s["directory"] / SHARD_MANIFEST).read_text()
            for s in again] == texts
    # The two stale slice-2/slice-3 directories from the 4-way partition
    # are gone; exactly the two current slices remain.
    remaining = sorted(p.name for p in (store_dir / "slices").iterdir())
    assert remaining == ["slice-000", "slice-001"]
    assert wide[3]["directory"].exists() is False


def test_partition_rejects_bad_arguments(store_dir, tmp_path, spill_dir):
    n = read_shard_manifest(store_dir)["n_vertices"]
    with pytest.raises(ValueError, match="exactly one of"):
        partition_manifest(store_dir)
    with pytest.raises(ValueError, match="exactly one of"):
        partition_manifest(store_dir, n_slices=2, boundaries=[3])
    with pytest.raises(ValueError, match="n_slices must be >= 1"):
        partition_manifest(store_dir, n_slices=0)
    with pytest.raises(ValueError, match="nondecreasing"):
        partition_manifest(store_dir, boundaries=[10, 5])
    with pytest.raises(ValueError, match="nondecreasing"):
        partition_manifest(store_dir, boundaries=[n + 1])
    with pytest.raises(ValueError, match="compact_shards"):
        partition_manifest(spill_dir, n_slices=2)


def test_partition_preserves_parent_metadata(store_dir):
    manifest = read_shard_manifest(store_dir)
    slices = partition_manifest(store_dir, n_slices=2)
    sliced = read_shard_manifest(slices[0]["directory"])
    parent_metadata = dict(manifest.get("metadata") or {})
    child_metadata = dict(sliced["metadata"])
    child_metadata.pop("slice")
    assert child_metadata == parent_metadata
    assert sliced["name"] == manifest["name"]
