"""Tests for the peeling truss decomposition (Definition 7, Example 2)."""

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.truss import TrussDecomposition, edge_trussness, k_truss, truss_decomposition


class TestBasicShapes:
    def test_clique_trussness(self):
        # Every edge of K_n is in the n-truss and no higher.
        for n in (3, 4, 5, 6):
            decomp = truss_decomposition(generators.complete_graph(n))
            assert decomp.max_truss == n
            assert set(decomp.trussness.data.tolist()) == {n}

    def test_triangle_free_graph(self):
        decomp = truss_decomposition(generators.cycle_graph(7))
        assert decomp.max_truss == 2
        assert set(decomp.trussness.data.tolist()) == {2}
        assert decomp.truss_sizes() == {}

    def test_empty_graph(self):
        decomp = truss_decomposition(generators.empty_graph(4))
        assert decomp.max_truss == 0
        assert decomp.trussness.nnz == 0

    def test_hub_cycle_matches_example2(self, hub_cycle):
        decomp = truss_decomposition(hub_cycle)
        # All 8 edges in the 3-truss, none in the 4-truss (Example 2).
        assert decomp.max_truss == 3
        assert decomp.truss_sizes() == {3: 8}

    def test_self_loops_ignored(self):
        looped = generators.looped_clique(4)
        decomp = truss_decomposition(looped)
        assert decomp.max_truss == 4
        assert np.all(decomp.trussness.diagonal() == 0)

    def test_trussness_symmetric(self, weblike_small):
        decomp = truss_decomposition(weblike_small)
        assert (decomp.trussness != decomp.trussness.T).nnz == 0


class TestExample2Product:
    def test_hub_cycle_square_truss_structure(self, hub_cycle):
        """C = A ⊗ A for the hub-cycle graph: 128 edges in T(3), 80 in T(4), 0 in T(5)."""
        product = KroneckerGraph(hub_cycle, hub_cycle).materialize()
        assert product.n_vertices == 25
        assert product.n_edges == 128
        decomp = truss_decomposition(product)
        assert decomp.max_truss == 4
        sizes = decomp.truss_sizes()
        assert sizes[3] == 128
        assert sizes[4] == 80

    def test_hub_cycle_square_edge_triangle_classes(self, hub_cycle):
        """32 edges in 1 triangle, 64 in 2, 32 in 4 (Example 2)."""
        from repro.triangles import edge_triangles

        product = KroneckerGraph(hub_cycle, hub_cycle).materialize()
        delta = edge_triangles(product)
        import collections

        # Count undirected edges per participation value (stored entries / 2).
        counts = collections.Counter(delta.data.tolist())
        assert counts[1] // 2 == 32
        assert counts[2] // 2 == 64
        assert counts[4] // 2 == 32


class TestAccessors:
    def test_edges_in_truss_sorted_upper(self, k5):
        decomp = truss_decomposition(k5)
        edges = decomp.edges_in_truss(5)
        assert edges.shape == (10, 2)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_edges_in_truss_above_max_empty(self, k4):
        decomp = truss_decomposition(k4)
        assert decomp.edges_in_truss(5).shape[0] == 0

    def test_edge_trussness_accessor(self, hub_cycle):
        decomp = truss_decomposition(hub_cycle)
        assert decomp.edge_trussness(0, 1) == 3
        assert decomp.edge_trussness(1, 3) == 0  # chord removed in Example 2

    def test_edge_trussness_wrapper(self, k4):
        mat = edge_trussness(k4)
        assert set(mat.data.tolist()) == {4}

    def test_max_k_cap(self, k5):
        decomp = truss_decomposition(k5, max_k=3)
        assert decomp.max_truss == 3


class TestKTrussSubgraph:
    def test_k_truss_of_clique(self, k5):
        sub = k_truss(k5, 5)
        assert sub == generators.complete_graph(5)

    def test_k_truss_empty_when_too_high(self, hub_cycle):
        sub = k_truss(hub_cycle, 4)
        assert sub.n_edges == 0

    def test_k_truss_below_three_strips_loops_only(self):
        looped = generators.looped_clique(4)
        sub = k_truss(looped, 2)
        assert sub == generators.complete_graph(4)

    def test_k_truss_edges_have_enough_triangles(self, weblike_small):
        from repro.triangles import edge_triangles

        k = 4
        sub = k_truss(weblike_small, k)
        if sub.n_edges:
            delta = edge_triangles(sub)
            assert delta.data.min() >= k - 2

    def test_nested_trusses(self, weblike_small):
        decomp = truss_decomposition(weblike_small)
        sizes = decomp.truss_sizes()
        ordered = [sizes[k] for k in sorted(sizes)]
        assert ordered == sorted(ordered, reverse=True)
