"""Tests for Theorems 6-7: Kronecker formulas for labeled triangle participation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import generators
from repro.core import (
    KroneckerGraph,
    check_labeled_factor_assumptions,
    kron_inherited_labels,
    kron_label_filter,
    kron_labeled_edge_triangles,
    kron_labeled_vertex_triangles,
    kron_labeled_vertex_triangles_at,
)
from repro.graphs import VertexLabeledGraph, vertex_triangle_label_types
from repro.triangles import (
    labeled_edge_triangle_counts,
    labeled_vertex_triangle_counts,
)


@pytest.fixture
def factor_a():
    return generators.random_labeled_graph(10, 0.45, 3, seed=31)


@pytest.fixture
def factor_b_plain():
    return generators.erdos_renyi(5, 0.5, seed=32)


@pytest.fixture
def factor_b_loops():
    return generators.erdos_renyi(5, 0.5, seed=33, self_loops=True)


def _materialize_labeled(factor_a, factor_b):
    product = KroneckerGraph(factor_a, factor_b)
    return VertexLabeledGraph(
        product.materialize_adjacency(),
        kron_inherited_labels(factor_a, factor_b),
        n_labels=factor_a.n_labels,
        validate=False,
    )


class TestAssumptions:
    def test_accepts_valid_factors(self, factor_a, factor_b_plain):
        check_labeled_factor_assumptions(factor_a, factor_b_plain)

    def test_rejects_unlabeled_a(self, k4, factor_b_plain):
        with pytest.raises(TypeError):
            check_labeled_factor_assumptions(k4, factor_b_plain)

    def test_rejects_self_loops_in_a(self, factor_b_plain):
        base = generators.looped_clique(3)
        labeled = VertexLabeledGraph(base.adjacency, [0, 1, 2])
        with pytest.raises(ValueError):
            check_labeled_factor_assumptions(labeled, factor_b_plain)

    def test_rejects_non_graph_b(self, factor_a, directed_small):
        with pytest.raises(TypeError):
            check_labeled_factor_assumptions(factor_a, directed_small)


class TestLabelInheritance:
    def test_inherited_labels_block_structure(self, factor_a, factor_b_plain):
        labels = kron_inherited_labels(factor_a, factor_b_plain)
        n_b = factor_b_plain.n_vertices
        assert labels.shape == (factor_a.n_vertices * n_b,)
        for p in range(labels.size):
            assert labels[p] == factor_a.label_of(p // n_b)

    def test_label_filter_factorization(self, factor_a, factor_b_plain):
        """Π_{C,q} = Π_{A,q} ⊗ I_B equals the filter built from the inherited labels."""
        from repro.graphs import label_filter

        labels_c = kron_inherited_labels(factor_a, factor_b_plain)
        for q in range(factor_a.n_labels):
            expected = label_filter(labels_c, q)
            assert (kron_label_filter(factor_a, factor_b_plain, q) != expected).nnz == 0


@pytest.mark.parametrize("b_fixture", ["factor_b_plain", "factor_b_loops"])
class TestTheorem6:
    def test_vertex_counts_match_direct(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        formula = kron_labeled_vertex_triangles(factor_a, factor_b)
        direct = labeled_vertex_triangle_counts(_materialize_labeled(factor_a, factor_b))
        assert set(formula) == set(vertex_triangle_label_types(factor_a.n_labels))
        for t in formula:
            assert np.array_equal(formula[t], direct[t]), t

    def test_point_queries(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        types = [(0, 1, 2), (1, 1, 1)]
        formula = kron_labeled_vertex_triangles(factor_a, factor_b, types=types)
        points = kron_labeled_vertex_triangles_at(factor_a, factor_b, np.array([0, 9, 30]), types=types)
        for t in types:
            assert np.array_equal(points[t], formula[t][[0, 9, 30]])


@pytest.mark.parametrize("b_fixture", ["factor_b_plain", "factor_b_loops"])
class TestTheorem7:
    def test_edge_counts_match_direct(self, factor_a, b_fixture, request):
        factor_b = request.getfixturevalue(b_fixture)
        formula = kron_labeled_edge_triangles(factor_a, factor_b)
        direct = labeled_edge_triangle_counts(_materialize_labeled(factor_a, factor_b))
        for t in formula:
            assert (formula[t] != direct[t]).nnz == 0, t


class TestCoverage:
    def test_labeled_types_tile_unlabeled_product_counts(self, factor_a, factor_b_plain):
        from repro.core import kron_vertex_triangles
        from repro.triangles import total_labeled_vertex_triangles

        formula = kron_labeled_vertex_triangles(factor_a, factor_b_plain)
        unlabeled_a = generators.erdos_renyi(1, 0.0)  # placeholder to avoid confusion
        plain_a = factor_a  # Graph view is fine: labels do not change adjacency
        total = total_labeled_vertex_triangles(formula)
        assert np.array_equal(total, kron_vertex_triangles(plain_a, factor_b_plain))

    def test_two_label_factor(self, factor_b_plain):
        factor_a = generators.random_labeled_graph(9, 0.5, 2, seed=40)
        formula = kron_labeled_vertex_triangles(factor_a, factor_b_plain)
        direct = labeled_vertex_triangle_counts(_materialize_labeled(factor_a, factor_b_plain))
        for t in formula:
            assert np.array_equal(formula[t], direct[t])

    def test_subset_request(self, factor_a, factor_b_plain):
        formula = kron_labeled_edge_triangles(factor_a, factor_b_plain, types=[(0, 1, 2)])
        assert set(formula) == {(0, 1, 2)}
