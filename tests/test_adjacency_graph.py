"""Tests for the undirected Graph substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph, hadamard, is_symmetric, to_csr
from repro import generators


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_from_edges_symmetrizes(self):
        g = Graph.from_edges([(0, 1)])
        assert g.has_edge(1, 0)

    def test_from_edges_deduplicates(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1
        assert g.adjacency.max() == 1

    def test_from_edges_self_loop(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        assert g.n_self_loops == 1
        assert g.n_edges == 2

    def test_from_edges_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], n_vertices=5)
        assert g.n_vertices == 5
        assert g.degree(4) == 0

    def test_from_edges_n_vertices_too_small(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 5)], n_vertices=3)

    def test_from_edges_negative_ids(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(-1, 2)])

    def test_empty_graph(self):
        g = Graph.empty(4)
        assert g.n_vertices == 4
        assert g.n_edges == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]

    def test_requires_square(self):
        with pytest.raises(ValueError):
            Graph(np.ones((2, 3)))

    def test_requires_symmetric(self):
        mat = np.zeros((3, 3), dtype=int)
        mat[0, 1] = 1
        with pytest.raises(ValueError):
            Graph(mat)

    def test_dense_input(self):
        dense = np.array([[0, 1], [1, 0]])
        g = Graph(dense)
        assert g.n_edges == 1

    def test_from_networkx_round_trip(self, small_er):
        nx_graph = small_er.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == small_er


class TestProperties:
    def test_counts_match_paper_convention(self, k5):
        # K5: 10 undirected edges, 20 stored entries.
        assert k5.n_edges == 10
        assert k5.nnz == 20

    def test_self_loop_counting(self):
        g = generators.looped_clique(4)
        assert g.n_self_loops == 4
        assert g.n_edges == 6 + 4  # clique edges + one per loop

    def test_degrees_exclude_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1), (1, 2)])
        assert g.degrees().tolist() == [1, 2, 1]

    def test_degree_single(self, k4):
        assert k4.degree(2) == 3

    def test_neighbors_sorted_and_exclude_self(self):
        g = Graph.from_edges([(2, 2), (2, 0), (2, 4)])
        assert g.neighbors(2).tolist() == [0, 4]
        assert g.neighbors(2, include_self_loop=True).tolist() == [0, 2, 4]

    def test_has_edge(self, k4):
        assert k4.has_edge(0, 3)
        assert not k4.has_edge(0, 0)

    def test_edges_upper_triangle(self, k4):
        edges = k4.edges()
        assert edges.shape == (6, 2)
        assert (edges[:, 0] <= edges[:, 1]).all()

    def test_edges_exclude_self_loops_flag(self):
        g = generators.looped_clique(3)
        assert g.edges(include_self_loops=False).shape[0] == 3
        assert g.edges(include_self_loops=True).shape[0] == 6

    def test_iter_edges(self, triangle):
        assert sorted(triangle.iter_edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_repr_contains_counts(self, k4):
        text = repr(k4)
        assert "n_vertices=4" in text and "n_edges=6" in text

    def test_equality_and_copy(self, small_er):
        assert small_er == small_er.copy()
        other = generators.erdos_renyi(16, 0.35, seed=12)
        assert small_er != other

    def test_not_hashable(self, k4):
        with pytest.raises(TypeError):
            hash(k4)


class TestTransformations:
    def test_without_self_loops(self):
        g = generators.looped_clique(4)
        stripped = g.without_self_loops()
        assert stripped.n_self_loops == 0
        assert stripped == generators.complete_graph(4)

    def test_with_self_loops(self, k4):
        looped = k4.with_self_loops()
        assert looped.n_self_loops == 4
        assert looped.without_self_loops() == k4

    def test_subgraph_induced(self, k5):
        sub = k5.subgraph([0, 1, 2])
        assert sub == generators.complete_graph(3)

    def test_subgraph_out_of_range(self, k5):
        with pytest.raises(IndexError):
            k5.subgraph([0, 9])

    def test_relabeled_is_isomorphic_invariant(self, small_er):
        perm = np.random.default_rng(3).permutation(small_er.n_vertices)
        relabeled = small_er.relabeled(perm)
        assert relabeled.n_edges == small_er.n_edges
        assert sorted(relabeled.degrees().tolist()) == sorted(small_er.degrees().tolist())

    def test_relabeled_invalid_permutation(self, k4):
        with pytest.raises(ValueError):
            k4.relabeled([0, 0, 1, 2])

    def test_union(self):
        a = Graph.from_edges([(0, 1)], n_vertices=3)
        b = Graph.from_edges([(1, 2)], n_vertices=3)
        assert a.union(b).n_edges == 2

    def test_union_size_mismatch(self):
        a = Graph.from_edges([(0, 1)], n_vertices=2)
        b = Graph.from_edges([(0, 1)], n_vertices=3)
        with pytest.raises(ValueError):
            a.union(b)

    def test_largest_connected_component(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)], n_vertices=6)
        lcc = g.largest_connected_component()
        assert lcc.n_vertices == 3
        assert lcc.n_edges == 2

    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], n_vertices=5)
        n_comp, labels = g.connected_components()
        assert n_comp == 3
        assert labels.shape == (5,)


class TestHelpers:
    def test_to_csr_clips_duplicates(self):
        mat = sp.coo_matrix(([2, 3], ([0, 1], [1, 0])), shape=(2, 2))
        csr = to_csr(mat)
        assert csr.max() == 1

    def test_is_symmetric(self):
        assert is_symmetric(sp.identity(3, format="csr"))
        asym = sp.csr_matrix(np.array([[0, 1], [0, 0]]))
        assert not is_symmetric(asym)

    def test_is_symmetric_rectangular(self):
        assert not is_symmetric(sp.csr_matrix(np.ones((2, 3))))

    def test_hadamard_matches_dense(self, small_er, k4):
        a = small_er.adjacency[:4, :4]
        b = k4.adjacency
        expected = np.asarray(a.todense()) * np.asarray(b.todense())
        assert np.array_equal(np.asarray(hadamard(a, b).todense()), expected)

    def test_to_dense_round_trip(self, k4):
        assert np.array_equal(Graph(k4.to_dense()).to_dense(), k4.to_dense())
