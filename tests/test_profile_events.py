"""Tests for the PR 10 observability surface: the sampling profiler, the
flight-recorder event log, and the served ``profile`` / ``events`` /
``health`` ops.

Unit halves first (:class:`~repro.obs.EventLog` ring-buffer semantics,
:class:`~repro.obs.ProfileStats` accumulator algebra,
:class:`~repro.obs.SamplingProfiler` lifecycle), then the wire surface on
a real :class:`~repro.serve.ThreadedServer` (additive ops, no protocol
bump), and finally a 16-thread churn test that doubles as lock-discipline
coverage for the two new ``obs.*`` lock classes under the session-wide
lock-order sanitizer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.lint.runtime import CheckedLock
from repro.obs import (
    EventLog,
    ProfileStats,
    SamplingProfiler,
    TraceRecorder,
    merge_events,
    trace,
)
from repro.obs.events import KNOWN_EVENT_KINDS
from repro.obs.profile import (
    EXTERNAL_STACK,
    OVERFLOW_STACK,
    thread_role,
)
from repro.parallel import distributed_generate
from repro.serve import QueryClient, ThreadedServer
from repro.store import ShardStore, compact_shards


# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------
class TestEventLog:
    def test_emit_records_kind_timestamp_and_attrs(self):
        log = EventLog()
        record = log.emit("serve.slow_request", op="degree", elapsed_us=7)
        assert record["kind"] == "serve.slow_request"
        assert record["op"] == "degree"
        assert record["elapsed_us"] == 7
        assert record["seq"] == 1
        assert record["ts_us"] > 0
        assert "trace" not in record  # no active trace context

    def test_ring_buffer_drops_oldest_and_counts(self):
        log = EventLog(max_events=3)
        for index in range(5):
            log.emit("serve.slow_request", index=index)
        assert len(log) == 3
        assert log.dropped == 2
        assert [event["index"] for event in log.tail()] == [2, 3, 4]
        # seq keeps counting across drops: the timeline stays unambiguous.
        assert [event["seq"] for event in log.tail()] == [3, 4, 5]

    def test_tail_limit_and_kind_filter(self):
        log = EventLog()
        log.emit("fleet.failover", worker=0)
        log.emit("store.shard_evicted", shard="a.npy")
        log.emit("fleet.failover", worker=1)
        failovers = log.tail(kind="fleet.failover")
        assert [event["worker"] for event in failovers] == [0, 1]
        assert [event["worker"] for event in log.tail(1, kind="fleet.failover")] \
            == [1]
        assert log.tail(0) == []

    def test_tail_returns_copies(self):
        log = EventLog()
        log.emit("serve.shutdown")
        log.tail()[0]["kind"] = "mutated"
        assert log.tail()[0]["kind"] == "serve.shutdown"

    def test_clear_zeroes_drops_but_not_seq(self):
        log = EventLog(max_events=1)
        log.emit("serve.shutdown")
        log.emit("serve.shutdown")
        assert log.dropped == 1
        log.clear()
        assert len(log) == 0 and log.dropped == 0
        assert log.emit("serve.shutdown")["seq"] == 3

    def test_active_trace_is_stamped_automatically(self):
        log = EventLog()
        recorder = TraceRecorder()
        with trace.start_trace("t", recorder) as handle:
            record = log.emit("fleet.failover", worker=2)
        assert record["trace"] == handle.trace_id
        # An explicit id wins (the slow-request hook fires after its span
        # has already exited).
        assert log.emit("serve.slow_request",
                        trace_id="feed01")["trace"] == "feed01"

    def test_max_events_validated(self):
        with pytest.raises(ValueError, match="max_events"):
            EventLog(max_events=0)

    def test_merge_events_interleaves_by_wall_clock_then_seq(self):
        router = [{"ts_us": 10, "seq": 1, "kind": "fleet.failover"},
                  {"ts_us": 30, "seq": 2, "kind": "serve.shutdown"}]
        worker = [{"ts_us": 20, "seq": 1, "kind": "store.shard_evicted"},
                  {"ts_us": 10, "seq": 2, "kind": "serve.slow_request"}]
        merged = merge_events([router, worker])
        assert [event["ts_us"] for event in merged] == [10, 10, 20, 30]
        # Same microsecond: per-log sequence breaks the tie.
        assert [event["seq"] for event in merged[:2]] == [1, 2]
        assert [event["kind"] for event in merge_events([router, worker],
                                                        limit=1)] == \
            ["serve.shutdown"]

    def test_known_kinds_are_dotted(self):
        assert all("." in kind for kind in KNOWN_EVENT_KINDS)


# ----------------------------------------------------------------------
# ProfileStats
# ----------------------------------------------------------------------
class TestProfileStats:
    def test_record_and_overflow_fold(self):
        stats = ProfileStats()
        stats.record("event_loop", "a;b")
        stats.record("event_loop", "a;b")
        stats.record("event_loop", "c", max_stacks=1)
        assert stats.stacks["event_loop"] == {"a;b": 2, OVERFLOW_STACK: 1}

    def test_add_merges_roles_and_counts(self):
        a = ProfileStats(2, {"main": {"x": 2}})
        b = ProfileStats(3, {"main": {"x": 1, "y": 4}, "writer": {"z": 1}})
        merged = a + b
        assert merged.samples == 5
        assert merged.stacks == {"main": {"x": 3, "y": 4}, "writer": {"z": 1}}
        # Value semantics: the operands are untouched.
        assert a.stacks == {"main": {"x": 2}}

    def test_sum_builtin_merges_a_fleet(self):
        parts = [ProfileStats(1, {"main": {"x": 1}}) for _ in range(3)]
        assert sum(parts, ProfileStats()) == \
            ProfileStats(3, {"main": {"x": 3}})
        assert sum(parts) == ProfileStats(3, {"main": {"x": 3}})  # radd(0)

    def test_dict_round_trip(self):
        stats = ProfileStats(4, {"decode_pool": {"s": 4}})
        assert ProfileStats.from_dict(stats.as_dict()) == stats

    def test_collapsed_emits_rooted_folded_lines(self):
        stats = ProfileStats(3, {"event_loop": {"m:f;m:g": 2},
                                 "main": {EXTERNAL_STACK: 1}})
        assert stats.collapsed() == ("event_loop;m:f;m:g 2\n"
                                     f"main;{EXTERNAL_STACK} 1\n")
        assert ProfileStats().collapsed() == ""

    def test_thread_role_classification(self):
        assert thread_role("shard-serve") == "event_loop"
        assert thread_role("shard-decode_0") == "decode_pool"
        assert thread_role("fleet-fanout_3") == "fanout_pool"
        assert thread_role("async-shard-writer") == "writer"
        assert thread_role("repro-profiler") == "profiler"
        assert thread_role("MainThread") == "main"
        assert thread_role("ThreadPoolExecutor-9_0") == "other"


# ----------------------------------------------------------------------
# SamplingProfiler
# ----------------------------------------------------------------------
class TestSamplingProfiler:
    def test_samples_accumulate_and_stop_freezes(self):
        profiler = SamplingProfiler(hz=500)
        assert profiler.start() is True
        assert profiler.start() is False  # idempotent while running
        deadline = time.monotonic() + 2.0
        while (profiler.snapshot().samples < 3
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert profiler.stop() is True
        assert profiler.stop() is False
        frozen = profiler.snapshot()
        assert frozen.samples >= 3
        assert "main" in frozen.stacks
        time.sleep(0.02)
        assert profiler.snapshot() == frozen  # aggregate no longer changes

    def test_aggregate_survives_runs_until_reset(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            time.sleep(0.02)
        first = profiler.snapshot().samples
        with profiler:
            time.sleep(0.02)
        assert profiler.snapshot().samples >= first
        profiler.reset()
        assert profiler.snapshot() == ProfileStats()

    def test_hz_validated(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler().start(hz=-1)


# ----------------------------------------------------------------------
# The served surface
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    factor_a = generators.webgraph_like(30, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(10, seed=13)
    product = KroneckerGraph(factor_a, factor_b)
    tmp = tmp_path_factory.mktemp("profile-store")
    sink = NpyShardSink(tmp / "spill", name=product.name,
                        n_vertices=product.n_vertices)
    distributed_generate(factor_a, factor_b, 2, streaming=True,
                         a_edges_per_block=16, sink=sink)
    compact_shards(tmp / "spill", tmp / "store", target_shard_edges=2000)
    return tmp / "store"


class TestServedProfile:
    def test_profile_lifecycle_over_the_wire(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            answer = client.profile("start", hz=500)
            assert answer["running"] is True and answer["hz"] == 500
            deadline = time.monotonic() + 2.0
            while (client.profile()["profile"]["samples"] < 3
                   and time.monotonic() < deadline):
                client.degree(5)
            stopped = client.profile("stop", collapsed=True)
            assert stopped["running"] is False
            profile = stopped["profile"]
            assert profile["samples"] >= 3
            # The asyncio serve thread is always on a sampled stack.
            assert "event_loop" in profile["stacks"]
            # collapsed text is derived from the same aggregate.
            assert stopped["collapsed"] == \
                ProfileStats.from_dict(profile).collapsed()
            assert client.profile("reset")["profile"]["samples"] == 0

    def test_profile_rejects_bad_action_and_hz(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            with pytest.raises(ValueError, match="action"):
                client.profile("flamegraph")
            with pytest.raises(ValueError, match="hz"):
                client.request("profile", {"action": "start", "hz": "fast"})

    def test_hello_reports_lifetime(self, store_dir):
        before = time.time()
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            hello = client.hello()
            assert before - 1 <= hello["started_at"] <= time.time() + 1
            assert 0 <= hello["uptime_s"] < 60


class TestServedEvents:
    def test_slow_request_event_carries_the_trace_id(self, store_dir):
        recorder = TraceRecorder()
        with ThreadedServer(store_dir, slow_query_us=0) as handle, \
                QueryClient(handle.host, handle.port) as client:
            with trace.start_trace("lookup", recorder) as t:
                client.degree(5)
            events = client.events(kind="serve.slow_request")["events"]
            assert events, "slow_query_us=0 must flag every request"
            traced = [e for e in events if e.get("trace") == t.trace_id]
            assert traced and traced[0]["op"] == "degree"
            assert traced[0]["ok"] is True

    def test_eviction_event_names_the_shard(self, store_dir):
        store = ShardStore(store_dir, cache_shards=1)
        if store.n_shards < 2:
            pytest.skip("store compacted into a single shard")
        with ThreadedServer(store) as handle, \
                QueryClient(handle.host, handle.port) as client:
            # Touch every shard with a 1-deep LRU: evictions guaranteed.
            client.edges_in_range(0, store.n_vertices)
            client.degree(5)
            events = client.events(kind="store.shard_evicted")["events"]
            assert events
            assert all(event["shard"].endswith(".npy") for event in events)

    def test_events_limit_and_dropped_surface(self, store_dir):
        with ThreadedServer(store_dir, slow_query_us=0) as handle, \
                QueryClient(handle.host, handle.port) as client:
            for vertex in range(5):
                client.degree(vertex)
            answer = client.events(limit=2)
            assert answer["n_events"] == 2 and len(answer["events"]) == 2
            assert answer["dropped"] == 0

    def test_shutdown_records_a_final_event(self, store_dir):
        handle = ThreadedServer(store_dir).start()
        try:
            with QueryClient(handle.host, handle.port) as client:
                client.degree(5)
        finally:
            handle.stop()
        shutdown = handle.server.events.tail(kind="serve.shutdown")
        assert len(shutdown) == 1
        assert shutdown[0]["uptime_s"] >= 0

    def test_health_reports_liveness(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.profile("start", hz=500)
            health = client.health()
            assert health["status"] == "ok"
            assert health["uptime_s"] >= 0
            assert health["profiler"]["running"] is True
            assert health["profiler"]["hz"] == 500
            assert health["events"]["max_events"] > 0
            assert health["connections_open"] >= 1
            assert "workers" not in health  # single server, no fleet


# ----------------------------------------------------------------------
# Lock discipline under churn (the sanitizer is installed suite-wide)
# ----------------------------------------------------------------------
class TestChurn:
    N_THREADS = 16

    def test_profiler_and_events_survive_16_thread_churn(self, store_dir):
        store = ShardStore(store_dir, cache_shards=1)
        # The new obs.* locks go through new_lock(): the session sanitizer
        # wraps them, so this churn is also a lock-order proof.
        assert isinstance(store.events._lock, CheckedLock)
        profiler = SamplingProfiler(hz=500)
        assert isinstance(profiler._lock, CheckedLock)
        errors = []
        start = threading.Barrier(self.N_THREADS)

        def churn(seed):
            try:
                start.wait()
                for round_index in range(20):
                    store.degree((seed * 31 + round_index) % store.n_vertices)
                    store.events.emit("serve.slow_request", op="degree",
                                      thread=seed, round=round_index)
                    if round_index % 5 == 0:
                        profiler.snapshot()
                        store.events.tail(3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with profiler:
            threads = [threading.Thread(target=churn, args=(index,),
                                        name=f"churn-{index}")
                       for index in range(self.N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        assert len(store.events) >= 1
        assert profiler.snapshot().samples >= 0
        # The LRU eviction path emitted events without ever holding
        # store.lru into obs.events — the event log stayed a leaf.
        assert store.events.tail(kind="store.shard_evicted") is not None
