"""Tests for the undirected Kronecker triangle formulas (Thms. 1-2, Cors. 1-2, general case)."""

import numpy as np
import pytest
import scipy.sparse as sp
from math import comb

from repro import generators
from repro.core import (
    KroneckerGraph,
    cor1_vertex_triangles,
    cor2_edge_triangles,
    diag_of_cube,
    kron_edge_triangles,
    kron_edge_triangles_at,
    kron_triangle_count,
    kron_vertex_triangles,
    kron_vertex_triangles_at,
    self_loop_case,
    thm1_vertex_triangles,
    thm2_edge_triangles,
)
from repro.triangles import edge_triangles, total_triangles, vertex_triangles


def _loops_er(n, p, seed):
    return generators.erdos_renyi(n, p, seed=seed, self_loops=True)


FACTOR_PAIRS = [
    # (factor_a, factor_b, case label)
    (generators.complete_graph(4), generators.complete_graph(5), "none"),
    (generators.hub_cycle_graph(), generators.complete_graph(3), "none"),
    (generators.erdos_renyi(12, 0.35, seed=1), generators.webgraph_like(15, seed=2), "none"),
    (generators.erdos_renyi(10, 0.4, seed=3), generators.looped_clique(4), "b_only"),
    (generators.webgraph_like(14, seed=4), _loops_er(6, 0.5, 5), "b_only"),
    (generators.looped_clique(4), generators.erdos_renyi(10, 0.4, seed=6), "a_only"),
    (_loops_er(8, 0.4, 7), _loops_er(7, 0.45, 8), "both"),
    (generators.looped_clique(3), generators.looped_clique(4), "both"),
]


class TestDiagOfCube:
    def test_matches_dense_power(self, small_er_loops):
        dense = small_er_loops.to_dense()
        expected = np.diag(dense @ dense @ dense)
        assert np.array_equal(diag_of_cube(small_er_loops), expected)

    def test_loop_free_is_twice_triangles(self, weblike_small):
        assert np.array_equal(diag_of_cube(weblike_small), 2 * vertex_triangles(weblike_small))

    def test_looped_clique_value(self):
        # diag(J_n³) = n² for every vertex.
        n = 5
        assert diag_of_cube(generators.looped_clique(n)).tolist() == [n * n] * n


class TestSelfLoopCase:
    def test_classification(self, k4, small_er_loops):
        looped = generators.looped_clique(3)
        assert self_loop_case(k4, k4) == "none"
        assert self_loop_case(k4, looped) == "b_only"
        assert self_loop_case(looped, k4) == "a_only"
        assert self_loop_case(small_er_loops, looped) == "both"


class TestNamedTheorems:
    def test_thm1_matches_direct(self, weblike_small, small_er):
        product = KroneckerGraph(weblike_small, small_er).materialize()
        assert np.array_equal(thm1_vertex_triangles(weblike_small, small_er),
                              vertex_triangles(product))

    def test_thm1_rejects_loops(self, k4):
        with pytest.raises(ValueError):
            thm1_vertex_triangles(k4, generators.looped_clique(3))

    def test_cor1_matches_direct(self, weblike_small):
        factor_b = generators.looped_clique(3)
        product = KroneckerGraph(weblike_small, factor_b).materialize()
        assert np.array_equal(cor1_vertex_triangles(weblike_small, factor_b),
                              vertex_triangles(product))

    def test_cor1_rejects_left_loops(self, k4):
        with pytest.raises(ValueError):
            cor1_vertex_triangles(generators.looped_clique(3), k4)

    def test_cor1_reduces_to_thm1_when_loop_free(self, k4, k5):
        assert np.array_equal(cor1_vertex_triangles(k4, k5), thm1_vertex_triangles(k4, k5))

    def test_thm2_matches_direct(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle).materialize()
        assert (thm2_edge_triangles(small_er, triangle) != edge_triangles(product)).nnz == 0

    def test_thm2_rejects_loops(self, k4):
        with pytest.raises(ValueError):
            thm2_edge_triangles(generators.looped_clique(3), k4)

    def test_cor2_matches_direct(self, small_er):
        factor_b = generators.looped_clique(3)
        product = KroneckerGraph(small_er, factor_b).materialize()
        assert (cor2_edge_triangles(small_er, factor_b) != edge_triangles(product)).nnz == 0

    def test_cor2_rejects_left_loops(self, k4):
        with pytest.raises(ValueError):
            cor2_edge_triangles(generators.looped_clique(3), k4)

    def test_undirected_factor_type_enforced(self, directed_small, k4):
        with pytest.raises(TypeError):
            kron_vertex_triangles(directed_small, k4)


class TestGeneralFormulaAgainstDirect:
    @pytest.mark.parametrize("factor_a,factor_b,case", FACTOR_PAIRS,
                             ids=[f"{i}-{c}" for i, (_, _, c) in enumerate(FACTOR_PAIRS)])
    def test_vertex_formula(self, factor_a, factor_b, case):
        assert self_loop_case(factor_a, factor_b) == case
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert np.array_equal(kron_vertex_triangles(factor_a, factor_b),
                              vertex_triangles(product))

    @pytest.mark.parametrize("factor_a,factor_b,case", FACTOR_PAIRS,
                             ids=[f"{i}-{c}" for i, (_, _, c) in enumerate(FACTOR_PAIRS)])
    def test_edge_formula(self, factor_a, factor_b, case):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert (kron_edge_triangles(factor_a, factor_b) != edge_triangles(product)).nnz == 0

    @pytest.mark.parametrize("factor_a,factor_b,case", FACTOR_PAIRS,
                             ids=[f"{i}-{c}" for i, (_, _, c) in enumerate(FACTOR_PAIRS)])
    def test_triangle_count(self, factor_a, factor_b, case):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert kron_triangle_count(factor_a, factor_b) == total_triangles(product)

    def test_global_count_factorization(self, weblike_small, small_er):
        """τ(C) = 6 τ(A) τ(B) for loop-free factors."""
        expected = 6 * total_triangles(weblike_small) * total_triangles(small_er)
        assert kron_triangle_count(weblike_small, small_er) == expected


class TestPaperExample1:
    """The closed-form values of Example 1(a)-(c)."""

    @pytest.mark.parametrize("n_a,n_b", [(3, 4), (4, 5), (5, 6), (3, 7)])
    def test_example_1a(self, n_a, n_b):
        a, b = generators.complete_graph(n_a), generators.complete_graph(n_b)
        n = n_a * n_b
        t = kron_vertex_triangles(a, b)
        expected_t = (n + 1 - n_a - n_b) * (n + 4 - 2 * n_a - 2 * n_b) // 2
        assert set(t.tolist()) == {expected_t}
        delta = kron_edge_triangles(a, b)
        assert set(delta.data.tolist()) == {n + 4 - 2 * n_a - 2 * n_b}

    @pytest.mark.parametrize("n_a,n_b", [(3, 4), (4, 5), (5, 3)])
    def test_example_1b(self, n_a, n_b):
        a, b = generators.complete_graph(n_a), generators.looped_clique(n_b)
        n = n_a * n_b
        t = kron_vertex_triangles(a, b)
        expected_t = (n - n_b) * (n - 2 * n_b) // 2
        assert set(t.tolist()) == {expected_t}
        delta = kron_edge_triangles(a, b)
        assert set(delta.data.tolist()) == {n - 2 * n_b}

    @pytest.mark.parametrize("n_a,n_b", [(3, 4), (4, 4), (2, 5)])
    def test_example_1c(self, n_a, n_b):
        a, b = generators.looped_clique(n_a), generators.looped_clique(n_b)
        n = n_a * n_b
        t = kron_vertex_triangles(a, b)
        assert set(t.tolist()) == {comb(n - 1, 2)}
        delta = kron_edge_triangles(a, b)
        off_diag = delta - sp.diags(delta.diagonal(), dtype=delta.dtype)
        assert set(off_diag.data[off_diag.data != 0].tolist()) == {n - 2}


class TestPointQueries:
    def test_vertex_point_query(self, small_er, k4):
        full = kron_vertex_triangles(small_er, k4)
        idx = np.array([0, 9, 23, full.size - 1])
        assert np.array_equal(kron_vertex_triangles_at(small_er, k4, idx), full[idx])
        assert kron_vertex_triangles_at(small_er, k4, 11) == full[11]

    def test_edge_point_query(self, small_er, triangle):
        full = kron_edge_triangles(small_er, triangle)
        coo = full.tocoo()
        for p, q, value in list(zip(coo.row, coo.col, coo.data))[:20]:
            assert kron_edge_triangles_at(small_er, triangle, int(p), int(q)) == value

    def test_edge_point_query_nonedge_is_zero(self, k4, k5):
        # (0,0) is a self pair — no edge, no triangles.
        assert kron_edge_triangles_at(k4, k5, 0, 0) == 0


class TestParityObservation:
    def test_even_triangle_counts_without_loops(self, weblike_small, small_er):
        """Without self loops every product vertex has an even triangle count
        (t_C = 2 t_A ⊗ t_B, remark after Theorem 1)."""
        t = kron_vertex_triangles(weblike_small, small_er)
        assert np.all(t % 2 == 0)
