"""Tests for the directed triangle census (Definitions 10-11, Figs. 4-5)."""

import numpy as np
import pytest

from repro import generators
from repro.graphs import DirectedGraph
from repro.triangles import (
    ALL_EDGE_TYPES,
    ALL_VERTEX_TYPES,
    CANONICAL_EDGE_TYPES,
    CANONICAL_VERTEX_TYPES,
    EDGE_TYPE_ALIASES,
    VERTEX_TYPE_ALIASES,
    canonical_edge_type,
    canonical_vertex_type,
    directed_edge_triangle_counts,
    directed_edge_triangle_counts_bruteforce,
    directed_vertex_triangle_counts,
    directed_vertex_triangle_counts_bruteforce,
    edge_triangles,
    total_directed_edge_triangles,
    total_directed_vertex_triangles,
    vertex_triangles,
)


@pytest.fixture
def directed_cycle():
    """Directed 3-cycle 0→1→2→0 — exactly one directed triangle."""
    return DirectedGraph.from_edges([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def reciprocal_triangle():
    """Fully reciprocal triangle — one undirected triangle of type (u, u, o)."""
    return DirectedGraph.from_undirected(generators.complete_graph(3))


class TestTypeTables:
    def test_fifteen_canonical_vertex_types(self):
        assert len(CANONICAL_VERTEX_TYPES) == 15

    def test_twelve_vertex_aliases(self):
        assert len(VERTEX_TYPE_ALIASES) == 12
        assert len(ALL_VERTEX_TYPES) == 27

    def test_fifteen_canonical_edge_types(self):
        assert len(CANONICAL_EDGE_TYPES) == 15

    def test_edge_aliases(self):
        assert len(EDGE_TYPE_ALIASES) == 3
        assert len(ALL_EDGE_TYPES) == 18

    def test_alias_resolution(self):
        assert canonical_vertex_type("us+") == "su-"
        assert canonical_vertex_type("tt-") == "tt+"
        assert canonical_vertex_type("st+") == "st+"
        assert canonical_edge_type("o--") == "o++"

    def test_unknown_types_rejected(self):
        with pytest.raises(KeyError):
            canonical_vertex_type("xyz")
        with pytest.raises(KeyError):
            canonical_edge_type("+++++")


class TestSmallGraphCensus:
    def test_directed_3cycle_vertex_census(self, directed_cycle):
        counts = directed_vertex_triangle_counts(directed_cycle)
        # Every vertex sits in exactly one all-directed 3-cycle: type st+ per Def. 10.
        assert counts["st+"].tolist() == [1, 1, 1]
        other = {k: v for k, v in counts.items() if k != "st+"}
        assert all(v.sum() == 0 for v in other.values())

    def test_reciprocal_triangle_vertex_census(self, reciprocal_triangle):
        counts = directed_vertex_triangle_counts(reciprocal_triangle)
        assert counts["uuo"].tolist() == [1, 1, 1]
        other = {k: v for k, v in counts.items() if k != "uuo"}
        assert all(v.sum() == 0 for v in other.values())

    def test_directed_3cycle_edge_census(self, directed_cycle):
        counts = directed_edge_triangle_counts(directed_cycle)
        # Per Definition 11, a directed 3-cycle's edges are counted by
        # Δ(+--) = A_d ∘ (A_dᵗ)²: for edge (u, v) the closing vertex w has
        # v → w and w → u, which is exactly the cyclic orientation.
        assert counts["+--"].sum() == 3
        assert sum(m.sum() for name, m in counts.items() if name != "+--") == 0

    def test_reciprocal_triangle_edge_census(self, reciprocal_triangle):
        counts = directed_edge_triangle_counts(reciprocal_triangle)
        assert counts["ooo"].sum() == 6  # both orientations of each of 3 edges
        assert sum(m.sum() for name, m in counts.items() if name != "ooo") == 0

    def test_self_loops_rejected(self):
        g = DirectedGraph.from_edges([(0, 0), (0, 1), (1, 2), (2, 0)])
        with pytest.raises(ValueError):
            directed_vertex_triangle_counts(g)
        with pytest.raises(ValueError):
            directed_edge_triangle_counts(g)


class TestBruteForceAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_vertex_census_matches_bruteforce(self, seed):
        g = generators.random_directed_graph(10, p_directed=0.3, p_reciprocal=0.25, seed=seed)
        sparse = directed_vertex_triangle_counts(g)
        brute = directed_vertex_triangle_counts_bruteforce(g)
        for name in CANONICAL_VERTEX_TYPES:
            assert np.array_equal(sparse[name], brute[name]), name

    @pytest.mark.parametrize("seed", [1, 2])
    def test_edge_census_matches_bruteforce(self, seed):
        g = generators.random_directed_graph(9, p_directed=0.3, p_reciprocal=0.3, seed=seed)
        sparse = directed_edge_triangle_counts(g)
        brute = directed_edge_triangle_counts_bruteforce(g)
        for name in CANONICAL_EDGE_TYPES:
            assert np.array_equal(np.asarray(sparse[name].todense()), brute[name]), name

    def test_alias_values_match_canonical(self, directed_small):
        counts = directed_vertex_triangle_counts(directed_small, types=ALL_VERTEX_TYPES)
        for alias, canon in VERTEX_TYPE_ALIASES.items():
            assert np.array_equal(counts[alias], counts[canon]), alias

    def test_edge_alias_is_transpose(self, directed_small):
        counts = directed_edge_triangle_counts(directed_small, types=ALL_EDGE_TYPES)
        for alias, canon in EDGE_TYPE_ALIASES.items():
            assert (counts[alias] != counts[canon].T).nnz == 0, alias


class TestCoverageIdentities:
    """The canonical census exactly tiles the undirected triangle statistics of A_u."""

    @pytest.mark.parametrize("seed", [1, 4, 7])
    def test_vertex_coverage(self, seed):
        g = generators.random_directed_graph(14, p_directed=0.25, p_reciprocal=0.25, seed=seed)
        counts = directed_vertex_triangle_counts(g)
        undirected_t = vertex_triangles(g.undirected_version())
        assert np.array_equal(total_directed_vertex_triangles(counts), undirected_t)

    @pytest.mark.parametrize("seed", [1, 4])
    def test_edge_coverage_on_support(self, seed):
        """Summing '+'-central types over A_d and 'o'-central types over A_r recovers Δ_{A_u}."""
        g = generators.random_directed_graph(12, p_directed=0.3, p_reciprocal=0.25, seed=seed)
        counts = directed_edge_triangle_counts(g)
        au = g.undirected_version()
        delta_u = edge_triangles(au)
        ar, ad = g.decompose()
        total = total_directed_edge_triangles(counts)
        # At directed-arc positions the sum equals Δ_{A_u}; same at reciprocal positions.
        for mask in (ar, ad):
            diff = mask.multiply(total) - mask.multiply(delta_u)
            assert abs(diff).sum() == 0

    def test_vertex_coverage_requires_canonical(self):
        with pytest.raises(ValueError):
            total_directed_vertex_triangles({})

    def test_edge_coverage_requires_canonical(self):
        with pytest.raises(ValueError):
            total_directed_edge_triangles({})


class TestRequestedSubsets:
    def test_subset_of_types(self, directed_small):
        counts = directed_vertex_triangle_counts(directed_small, types=["st+", "uuo"])
        assert set(counts) == {"st+", "uuo"}

    def test_accepts_raw_matrix(self, directed_small):
        counts = directed_vertex_triangle_counts(directed_small.adjacency, types=["st+"])
        assert counts["st+"].shape == (directed_small.n_vertices,)
