"""Repo-convention lints enforced as tests.

These are grep-level checks over the source tree, not behavioural tests:
they keep conventions that code review would otherwise have to re-litigate
on every PR.  Two are enforced here:

* the zero-copy decode rule from the binary data plane work: shard ``.npy``
  decodes inside the store and serve layers must *state* their memory-mode
  decision — every ``np.load(`` call in ``src/repro/store/`` and
  ``src/repro/serve/`` passes ``mmap_mode`` explicitly (``mmap_mode=None``
  when an eager private copy is the point), so a bare call that silently
  materializes a shard can't creep back in;
* the answer-shape rule: every query answer dict (recognisable by its
  ``"query": "<op>"`` discriminator) is built in
  ``src/repro/serve/shaping.py`` and nowhere else — the server, the range
  router, and the CLI assemble answers exclusively through shaping
  functions, so the wire surface and ``query --json`` cannot drift apart
  shape by shape;
* the one-registry telemetry rule (PR 8): the store and serve layers keep
  no ad-hoc counters — no ``collections.Counter``/``defaultdict(int)``
  telemetry tallies, no raw ``time.perf_counter`` latency deltas — every
  operational number lives in a :mod:`repro.obs` registry series and every
  timing goes through a registry histogram or a trace span, so ``stats()``
  surfaces cannot drift from the ``metrics`` op.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Layers covered by the rule.  Other layers (e.g. analysis code loading a
#: bundle it immediately consumes) may load eagerly without comment.
ZERO_COPY_LAYERS = ("store", "serve")

_NP_LOAD = re.compile(r"np\.load\s*\(")


def _np_load_calls(text: str):
    """Yield ``(line_number, call_text)`` for every ``np.load(`` call,
    with *call_text* spanning to the call's closing parenthesis (calls may
    wrap across lines)."""
    for match in _NP_LOAD.finditer(text):
        depth = 0
        for end in range(match.end() - 1, len(text)):
            if text[end] == "(":
                depth += 1
            elif text[end] == ")":
                depth -= 1
                if depth == 0:
                    break
        line = text.count("\n", 0, match.start()) + 1
        yield line, text[match.start():end + 1]


def test_store_and_serve_np_load_states_mmap_mode():
    offenders = []
    checked = 0
    for layer in ZERO_COPY_LAYERS:
        for path in sorted((SRC / layer).rglob("*.py")):
            text = path.read_text()
            for line, call in _np_load_calls(text):
                checked += 1
                if "mmap_mode" not in call:
                    offenders.append(f"{path.relative_to(SRC.parent)}:{line}: "
                                     f"{' '.join(call.split())}")
    # The rule must actually be exercising something; zero calls would mean
    # the layers moved and this lint silently checks nothing.
    assert checked > 0, "no np.load( calls found under src/repro/{store,serve}"
    assert not offenders, (
        "np.load( without an explicit mmap_mode in the zero-copy layers "
        "(pass mmap_mode=None if an eager copy is intended):\n  "
        + "\n  ".join(offenders))


#: Files that *consume* answer shapes and must never hand-build one.  An
#: answer dict is recognisable by its '"query": "<op>"' discriminator key
#: (string-literal value: the dispatch table in cli.py maps the same key to
#: a function and is legitimately not a shape).
ANSWER_SHAPE_CONSUMERS = ("serve/server.py", "serve/router.py", "cli.py")

_QUERY_KEY_LITERAL = re.compile(r"""["']query["']\s*:\s*["']""")


def test_answer_shapes_are_built_only_in_shaping():
    # Self-check: the rule's home must actually build shapes, otherwise the
    # lint would pass vacuously after a refactor moved them elsewhere.
    shaping_text = (SRC / "serve" / "shaping.py").read_text()
    assert len(_QUERY_KEY_LITERAL.findall(shaping_text)) >= 5, (
        "shaping.py no longer builds the answer shapes this lint protects")
    offenders = []
    for rel in ANSWER_SHAPE_CONSUMERS:
        text = (SRC / rel).read_text()
        for match in _QUERY_KEY_LITERAL.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            offenders.append(f"{rel}:{line}")
    assert not offenders, (
        "answer dicts must come from repro.serve.shaping, not be hand-built "
        "(add a shaping function and call it):\n  " + "\n  ".join(offenders))


#: Layers whose operational numbers must live in a repro.obs registry.
TELEMETRY_LAYERS = ("store", "serve")

#: Ad-hoc telemetry constructs banned outside repro/obs/: raw perf-counter
#: timing (registry histograms and trace spans own all timing) and the
#: counter-dict idioms PR 8 migrated away from.
_AD_HOC_TELEMETRY = re.compile(
    r"time\.perf_counter|collections\.Counter\s*\(|defaultdict\s*\(\s*int\s*\)"
    r"|\bCounter\s*\(\s*\)")


def test_no_ad_hoc_telemetry_outside_obs():
    offenders = []
    for layer in TELEMETRY_LAYERS:
        for path in sorted((SRC / layer).rglob("*.py")):
            for line_number, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if _AD_HOC_TELEMETRY.search(line):
                    offenders.append(
                        f"{path.relative_to(SRC.parent)}:{line_number}: "
                        f"{line.strip()}")
    assert not offenders, (
        "operational counters and timings in the store/serve layers must go "
        "through a repro.obs registry (counter/gauge/histogram.time()) or a "
        "trace span, not ad-hoc perf_counter deltas or counter dicts:\n  "
        + "\n  ".join(offenders))
    # Self-check: the layers must actually be *using* the registry, or the
    # rule above is passing over code that moved its telemetry elsewhere.
    importers = sum(
        1
        for layer in TELEMETRY_LAYERS
        for path in (SRC / layer).rglob("*.py")
        if "from repro.obs import" in path.read_text())
    assert importers >= 4, (
        f"only {importers} files under src/repro/{{store,serve}} import "
        "repro.obs — the one-registry telemetry convention looks abandoned")
