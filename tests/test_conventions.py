"""Repo conventions enforced as a tier-1 test — now a thin driver over
the AST lint engine.

Up to PR 8 this file hand-rolled three grep-level regexes (bare
``np.load``, hand-built answer shapes, ad-hoc telemetry).  Those greps
could not see aliased imports, could not tell call context, and desynced
on a ``)`` inside a string literal; PR 9 moved the conventions into
:mod:`repro.lint` as real AST rules (plus three new ones the greps could
never express).  What remains here:

* the zero-findings gate: the full engine over ``src/repro`` must be
  clean, so a convention regression fails tier-1 exactly like it failed
  under the greps — but through the same engine ``repro-kron lint``
  runs, so the CLI and the suite cannot drift;
* the non-vacuity self-checks on the *real tree*: the layers each rule
  protects must still contain the thing being protected (shaping still
  builds shapes, store/serve still decode shards and import the
  registry), otherwise a refactor could move the code out from under a
  rule and leave it green forever.  (Per-rule firing is proven against
  the fixture corpus in ``test_lint.py``.)
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint import LintEngine, all_rules, collect_imports
from repro.lint.rules_mmap import MmapModeRule
from repro.lint.rules_serve import shape_dict_nodes

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_engine_reports_zero_findings_on_source_tree():
    report = LintEngine(all_rules()).run(SRC)
    assert report.files_checked > 0
    assert report.ok, (
        "convention violations in src/repro (run `repro-kron lint` for the "
        "same listing):\n  "
        + "\n  ".join(str(finding) for finding in report.findings))


def test_every_rule_covers_at_least_one_real_file():
    # A rule whose layers match nothing has silently fallen off the tree
    # (e.g. a directory rename) and would pass vacuously forever.
    rel_paths = [path.relative_to(SRC).as_posix()
                 for path in SRC.rglob("*.py")]
    for rule in all_rules():
        covered = [rel for rel in rel_paths if rule.applies_to(rel)]
        assert covered, f"rule {rule.name} applies to no file under src/repro"


def test_zero_copy_layers_still_decode():
    # The mmap rule is only meaningful while the covered layers actually
    # call numpy.load; zero calls would mean the decodes moved.
    rule = MmapModeRule()
    calls = 0
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rule.applies_to(rel):
            calls += rule.count_load_calls(ast.parse(path.read_text()))
    assert calls >= 3, (
        f"only {calls} numpy.load calls under the zero-copy layers — the "
        "decode paths this rule protects look gone")


def test_shaping_still_builds_the_answer_shapes():
    tree = ast.parse((SRC / "serve" / "shaping.py").read_text())
    assert len(shape_dict_nodes(tree)) >= 5, (
        "serve/shaping.py no longer builds the answer shapes the "
        "answer-shapes-in-shaping rule protects")


def test_store_and_serve_still_use_the_registry():
    importers = 0
    for layer in ("store", "serve"):
        for path in (SRC / layer).rglob("*.py"):
            imports = collect_imports(ast.parse(path.read_text()))
            modules = set(imports.modules.values())
            members = {name.rsplit(".", 1)[0]
                       for name in imports.members.values()}
            if "repro.obs" in modules | members:
                importers += 1
    assert importers >= 4, (
        f"only {importers} files under src/repro/{{store,serve}} import "
        "repro.obs — the one-registry telemetry convention looks abandoned")
