"""Tests for sampling-based auditing of the implicit Kronecker product."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    WedgeSample,
    estimate_global_clustering,
    kron_degrees,
    kron_global_clustering,
    sample_product_edges,
    sample_vertices_by_degree,
    sample_wedges,
)


@pytest.fixture
def factors():
    return (generators.webgraph_like(30, seed=1), generators.complete_graph(4))


class TestEdgeSampling:
    def test_samples_are_valid_edges(self, factors):
        factor_a, factor_b = factors
        product = KroneckerGraph(factor_a, factor_b)
        edges = sample_product_edges(factor_a, factor_b, 300, rng=0)
        assert edges.shape == (300, 2)
        for p, q in edges:
            assert product.has_edge(int(p), int(q))

    def test_reproducible_with_seed(self, factors):
        factor_a, factor_b = factors
        a = sample_product_edges(factor_a, factor_b, 50, rng=7)
        b = sample_product_edges(factor_a, factor_b, 50, rng=7)
        assert np.array_equal(a, b)

    def test_generator_instance_accepted(self, factors):
        factor_a, factor_b = factors
        gen = np.random.default_rng(3)
        edges = sample_product_edges(factor_a, factor_b, 10, rng=gen)
        assert edges.shape == (10, 2)

    def test_zero_samples(self, factors):
        factor_a, factor_b = factors
        assert sample_product_edges(factor_a, factor_b, 0, rng=0).shape == (0, 2)

    def test_negative_samples_rejected(self, factors):
        factor_a, factor_b = factors
        with pytest.raises(ValueError):
            sample_product_edges(factor_a, factor_b, -1)

    def test_edgeless_factor_rejected(self, k4):
        with pytest.raises(ValueError):
            sample_product_edges(k4, generators.empty_graph(3), 5)

    def test_roughly_uniform_over_entries(self):
        """On a tiny product, every stored entry should appear with similar frequency."""
        a = generators.complete_graph(3)
        b = generators.complete_graph(3)
        edges = sample_product_edges(a, b, 20_000, rng=11)
        keys = edges[:, 0] * 9 + edges[:, 1]
        _, counts = np.unique(keys, return_counts=True)
        assert counts.size == a.nnz * b.nnz  # every product entry observed
        assert counts.max() < 2.0 * counts.min()


class TestDegreeBiasedVertexSampling:
    def test_high_degree_vertices_oversampled(self, factors):
        factor_a, factor_b = factors
        degrees = kron_degrees(factor_a, factor_b)
        picks = sample_vertices_by_degree(factor_a, factor_b, 5000, rng=5)
        counts = np.bincount(picks, minlength=degrees.size)
        top = np.argsort(degrees)[-5:]
        bottom = np.argsort(degrees)[:5]
        assert counts[top].mean() > counts[bottom].mean()

    def test_sampled_vertices_in_range(self, factors):
        factor_a, factor_b = factors
        picks = sample_vertices_by_degree(factor_a, factor_b, 100, rng=1)
        assert picks.min() >= 0
        assert picks.max() < factor_a.n_vertices * factor_b.n_vertices


class TestWedgeSampling:
    def test_samples_are_wedges(self, factors):
        factor_a, factor_b = factors
        product = KroneckerGraph(factor_a, factor_b)
        samples = sample_wedges(factor_a, factor_b, 100, rng=2)
        assert len(samples) == 100
        for wedge in samples:
            assert isinstance(wedge, WedgeSample)
            u, w = wedge.endpoints
            assert u != w
            assert product.has_edge(wedge.center, u)
            assert product.has_edge(wedge.center, w)
            assert wedge.closed == product.has_edge(u, w)

    def test_rejects_self_loop_factors(self, factors):
        factor_a, _ = factors
        with pytest.raises(ValueError):
            sample_wedges(factor_a, generators.looped_clique(3), 10)

    def test_rejects_wedge_free_product(self):
        edge = generators.path_graph(2)
        with pytest.raises(ValueError):
            sample_wedges(edge, edge, 5)

    def test_clustering_estimate_close_to_exact(self, factors):
        factor_a, factor_b = factors
        exact = kron_global_clustering(factor_a, factor_b)
        estimate = estimate_global_clustering(factor_a, factor_b, n_samples=3000, rng=4)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_clustering_estimate_on_clique_product(self):
        a = generators.complete_graph(4)
        b = generators.complete_graph(3)
        # Every wedge of K4 ⊗ K3 is not necessarily closed, but the estimator
        # must agree with the exact formula value within sampling error.
        exact = kron_global_clustering(a, b)
        estimate = estimate_global_clustering(a, b, n_samples=2000, rng=9)
        assert estimate == pytest.approx(exact, abs=0.06)
