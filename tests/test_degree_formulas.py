"""Tests for the Kronecker degree formulas (Sections III.A and IV.B)."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    kron_degree_at,
    kron_degrees,
    kron_directed_in_degrees,
    kron_directed_out_degrees,
    kron_in_degrees,
    kron_max_degree_ratio,
    kron_out_degrees,
    kron_reciprocal_degrees,
    max_degree_ratio,
)
from repro.graphs import DirectedGraph, Graph
from repro.triangles import directed_vertex_triangle_counts  # noqa: F401  (import sanity)


class TestUndirectedDegrees:
    def test_no_self_loops_is_kron_of_degrees(self, small_er, k4):
        expected = np.kron(small_er.degrees(), k4.degrees())
        assert np.array_equal(kron_degrees(small_er, k4), expected)

    def test_matches_materialized_no_loops(self, weblike_small, triangle):
        product = KroneckerGraph(weblike_small, triangle)
        assert np.array_equal(kron_degrees(weblike_small, triangle),
                              product.materialize().degrees())

    def test_matches_materialized_b_loops(self, weblike_small):
        factor_b = generators.looped_clique(3)
        product = KroneckerGraph(weblike_small, factor_b)
        assert np.array_equal(kron_degrees(weblike_small, factor_b),
                              product.materialize().degrees())

    def test_matches_materialized_a_loops(self, small_er):
        factor_a = generators.looped_clique(4)
        product = KroneckerGraph(factor_a, small_er)
        assert np.array_equal(kron_degrees(factor_a, small_er),
                              product.materialize().degrees())

    def test_matches_materialized_both_loops(self, small_er_loops):
        factor_b = generators.looped_clique(3)
        product = KroneckerGraph(small_er_loops, factor_b)
        assert np.array_equal(kron_degrees(small_er_loops, factor_b),
                              product.materialize().degrees())

    def test_example1a_clique_degrees(self):
        """Example 1(a): deg = nA·nB + 1 − nA − nB."""
        for n_a, n_b in ((3, 4), (4, 5), (5, 6)):
            d = kron_degrees(generators.complete_graph(n_a), generators.complete_graph(n_b))
            assert set(d.tolist()) == {n_a * n_b + 1 - n_a - n_b}

    def test_example1b_degrees(self):
        """Example 1(b): C = K_nA ⊗ J_nB has degree nA·nB − nA... the paper's
        formula evaluates to (nA−1)·nB which equals nA·nB − nB; check against
        the materialized product (which is the ground truth)."""
        n_a, n_b = 4, 5
        a = generators.complete_graph(n_a)
        b = generators.looped_clique(n_b)
        d = kron_degrees(a, b)
        direct = KroneckerGraph(a, b).materialize().degrees()
        assert np.array_equal(d, direct)
        assert set(d.tolist()) == {(n_a - 1) * n_b}

    def test_example1c_degrees(self):
        """Example 1(c): J ⊗ J − I = K_{nA nB} so every degree is nA·nB − 1."""
        n_a, n_b = 3, 4
        d = kron_degrees(generators.looped_clique(n_a), generators.looped_clique(n_b))
        assert set(d.tolist()) == {n_a * n_b - 1}

    def test_degree_at_matches_full_vector(self, small_er, k4):
        full = kron_degrees(small_er, k4)
        idx = np.array([0, 5, 17, 40, full.size - 1])
        assert np.array_equal(kron_degree_at(small_er, k4, idx), full[idx])
        assert kron_degree_at(small_er, k4, 7) == full[7]


class TestDirectedDegrees:
    @pytest.fixture
    def factors(self, directed_small, small_er):
        return directed_small, small_er

    def test_out_in_degrees(self, factors):
        a, b = factors
        product = DirectedGraph(KroneckerGraph(a, b).materialize_adjacency())
        assert np.array_equal(kron_out_degrees(a, b), product.out_degrees())
        assert np.array_equal(kron_in_degrees(a, b), product.in_degrees())

    def test_reciprocal_and_directed_degrees(self, factors):
        a, b = factors
        product = DirectedGraph(KroneckerGraph(a, b).materialize_adjacency())
        assert np.array_equal(kron_reciprocal_degrees(a, b), product.reciprocal_degrees())
        assert np.array_equal(kron_directed_out_degrees(a, b), product.directed_out_degrees())
        assert np.array_equal(kron_directed_in_degrees(a, b), product.directed_in_degrees())

    def test_directed_degree_split_identity(self, factors):
        a, b = factors
        assert np.array_equal(
            kron_out_degrees(a, b),
            kron_reciprocal_degrees(a, b) + kron_directed_out_degrees(a, b),
        )


class TestMaxDegreeRatio:
    def test_ratio_of_clique(self):
        assert max_degree_ratio(generators.complete_graph(10)) == pytest.approx(0.9)

    def test_ratio_empty(self):
        assert max_degree_ratio(generators.empty_graph(0)) == 0.0

    def test_ratio_squares_for_loop_free_factors(self, weblike_small, small_er):
        expected = max_degree_ratio(weblike_small) * max_degree_ratio(small_er)
        assert kron_max_degree_ratio(weblike_small, small_er) == pytest.approx(expected)

    def test_ratio_matches_materialized(self, small_er):
        factor_b = generators.erdos_renyi(6, 0.5, seed=2, self_loops=True)
        product = KroneckerGraph(small_er, factor_b).materialize()
        expected = product.degrees().max() / product.n_vertices
        assert kron_max_degree_ratio(small_er, factor_b) == pytest.approx(expected)

    def test_ratio_matches_materialized_both_loops(self, small_er_loops):
        factor_b = generators.erdos_renyi(5, 0.6, seed=3, self_loops=True)
        product = KroneckerGraph(small_er_loops, factor_b).materialize()
        expected = product.degrees().max() / product.n_vertices
        assert kron_max_degree_ratio(small_er_loops, factor_b) == pytest.approx(expected)

    def test_section3a_squaring_observation(self):
        """The product's max-degree ratio is the product of factor ratios —
        qualitatively much larger relative max degree than either factor."""
        factor = generators.webgraph_like(100, seed=1)
        ratio_factor = max_degree_ratio(factor)
        ratio_product = kron_max_degree_ratio(factor, factor)
        assert ratio_product == pytest.approx(ratio_factor ** 2)
