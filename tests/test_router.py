"""Tests for the range-routed serving fleet (repro.serve.router).

Four layers of coverage, all through :class:`~tests._fleet_harness.FleetHarness`
(partition → N slice workers → router, on ephemeral ports):

* routing transparency — every query op answered by the router must be
  byte-equal (values *and* dtypes) to the single in-process
  :class:`~repro.store.ShardStore` answer, including queries that span
  slice boundaries and a partition whose boundary falls inside one shard's
  source range, single-threaded and under ≥ 8 concurrent client threads;
* the fleet operational surface — ``hello`` announces the slice layout,
  ``stats`` rolls per-worker reports into fleet-level store counters;
* fault injection — a worker killed mid-request (scripted primary dying
  after reading the request, or mid-response) fails over to its replica
  exactly once and still returns the byte-equal answer; a pooled
  connection to a worker stopped between requests fails over the same way;
* the no-replica-left path — with every replica of a slice down, the
  router answers with a clear error *frame* naming the worker and its
  range, and the client's connection stays usable for other slices;
* observability — a traced routed query yields one merged span tree
  (router op → per-worker attempts → worker serve spans), a forced
  failover shows the failed attempt and its retry as sibling
  ``fleet.worker_call`` spans under the same trace id, and
  ``reset_stats`` fans out to every worker.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading

import numpy as np
import pytest

from _fleet_harness import (
    FleetHarness,
    drop_after_request,
    truncate_response,
)
from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.graphs.io import read_shard_manifest
from repro.obs import TraceRecorder, trace
from repro.parallel import distributed_generate
from repro.serve import QueryClient, ServerError
from repro.store import ShardStore, compact_shards

PAYLOAD = ("triangles", "trussness")


# ----------------------------------------------------------------------
# One spill for the whole module; each harness compacts its own store so
# re-partitioning for one test can never touch another test's live fleet.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def factors():
    factor_a = generators.webgraph_like(40, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(15, seed=13)
    return factor_a, factor_b


@pytest.fixture(scope="module")
def product(factors):
    return KroneckerGraph(*factors)


@pytest.fixture(scope="module")
def spill_dir(tmp_path_factory, factors, product):
    tmp = tmp_path_factory.mktemp("router-spill")
    sink = NpyShardSink(tmp / "spill", name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=PAYLOAD)
    distributed_generate(*factors, 4, streaming=True, a_edges_per_block=8,
                         sink=sink, payload_columns=PAYLOAD)
    return tmp / "spill"


@pytest.fixture(scope="module")
def store_factory(spill_dir, tmp_path_factory):
    counter = iter(range(10 ** 6))

    def make(target_shard_edges: int = 600):
        dest = tmp_path_factory.mktemp(
            f"router-store-{next(counter)}") / "store"
        compact_shards(spill_dir, dest,
                       target_shard_edges=target_shard_edges)
        return dest

    return make


@pytest.fixture(scope="module")
def store_dir(store_factory):
    return store_factory()


@pytest.fixture(scope="module")
def local_store(store_dir):
    """The single-store reference every routed answer must match."""
    return ShardStore(store_dir, cache_shards=16)


@pytest.fixture(scope="module")
def fleet(store_dir):
    with FleetHarness(store_dir, n_slices=3) as harness:
        yield harness


@pytest.fixture
def client(fleet):
    with fleet.client() as c:
        yield c


def _boundary_vertices(harness):
    """Vertices hugging every internal slice boundary (both sides)."""
    probes = []
    for entry in harness.slices[1:]:
        probes += [entry["src_lo"] - 1, entry["src_lo"]]
    return probes


# ----------------------------------------------------------------------
# Routing transparency: byte-equal to the single store
# ----------------------------------------------------------------------
class TestRoutedEquivalence:
    def test_hello_announces_fleet_layout(self, fleet, client, local_store):
        info = client.hello()
        assert info["store"]["n_vertices"] == local_store.n_vertices
        assert info["store"]["total_edges"] == local_store.total_edges
        assert info["store"]["payload_columns"] == list(PAYLOAD)
        assert "edges_for_sources" in info["ops"]
        layout = info["fleet"]
        assert layout["workers"] == 3
        assert layout["slices"][0]["src_lo"] == 0
        assert layout["slices"][-1]["src_hi"] == local_store.n_vertices
        for left, right in zip(layout["slices"], layout["slices"][1:]):
            assert left["src_hi"] == right["src_lo"]

    def test_degrees_across_all_slices(self, fleet, client, local_store):
        n = local_store.n_vertices
        for v in (0, *_boundary_vertices(fleet), n - 1):
            assert client.degree(v) == local_store.degree(v)
        vs = np.arange(0, n, 7)  # spans every slice in one batch
        routed = client.degrees(vs)
        assert routed.dtype == np.int64
        assert np.array_equal(routed, local_store.degrees(vs))

    def test_neighbors_and_edges_for_sources(self, fleet, client,
                                             local_store, rng):
        for v in map(int, rng.choice(local_store.n_vertices, 10,
                                     replace=False)):
            routed = client.neighbors(v)
            assert routed.dtype == np.int64
            assert np.array_equal(routed, local_store.neighbors(v))
        # One batch whose sources live on all three slices, unsorted.
        vs = [_boundary_vertices(fleet)[0], 3, local_store.n_vertices - 2, 0]
        for with_payload in (False, True):
            routed = client.edges_for_sources(vs, with_payload=with_payload)
            local = local_store.edges_for_sources(vs,
                                                  with_payload=with_payload)
            assert routed.dtype == local.dtype == np.int64
            assert np.array_equal(routed, local)

    def test_edges_in_range_spanning_boundaries(self, fleet, client,
                                                local_store):
        n = local_store.n_vertices
        spans = [(0, n, False), (0, n, True), (5, 5, False)]
        for boundary in _boundary_vertices(fleet)[1::2]:
            spans.append((max(0, boundary - 20), min(n, boundary + 20), True))
        for lo, hi, with_payload in spans:
            for binary in (False, True):
                routed = client.edges_in_range(lo, hi,
                                               with_payload=with_payload,
                                               binary=binary)
                local = local_store.edges_in_range(lo, hi,
                                                   with_payload=with_payload)
                assert routed.dtype == local.dtype == np.int64
                assert routed.shape == local.shape
                assert np.array_equal(routed, local)

    def test_egonet_and_subgraph(self, fleet, client, local_store, rng):
        for v in map(int, rng.choice(local_store.n_vertices, 6,
                                     replace=False)):
            routed = client.egonet(v)
            local = local_store.egonet(v)
            assert np.array_equal(routed.vertices, local.vertices)
            assert (routed.graph.adjacency != local.graph.adjacency).nnz == 0
            assert routed.triangles_at_center() == local.triangles_at_center()
        routed_ego, routed_rows = client.egonet(37, with_payload=True)
        local_ego, local_rows = local_store.egonet(37, with_payload=True)
        assert np.array_equal(routed_ego.vertices, local_ego.vertices)
        assert np.array_equal(routed_rows, local_rows)
        selection = [5, 3, *(v + 1 for v in _boundary_vertices(fleet)), 200]
        routed_sub, routed_rows = client.subgraph(selection,
                                                  with_payload=True)
        local_sub, local_rows = local_store.subgraph(selection,
                                                     with_payload=True)
        assert (routed_sub.adjacency != local_sub.adjacency).nnz == 0
        assert routed_sub.name == local_sub.name
        assert np.array_equal(routed_rows, local_rows)

    def test_edge_payloads(self, client, local_store):
        rows = local_store.edges_in_range(0, local_store.n_vertices)
        probe = rows[:: max(1, rows.shape[0] // 24)]
        routed = client.edge_payloads(probe[:, 0], probe[:, 1])
        assert routed.dtype == np.int64
        assert np.array_equal(routed,
                              local_store.edge_payloads(probe[:, 0],
                                                        probe[:, 1]))
        p, q = map(int, rows[-1])
        assert client.edge_payload(p, q) == local_store.edge_payload(p, q)

    def test_errors_are_transparent_and_connection_survives(self, client,
                                                            local_store):
        with pytest.raises(IndexError, match="out of range"):
            client.degree(10 ** 9)
        with pytest.raises(ValueError, match="duplicates"):
            client.subgraph([1, 1, 2])
        with pytest.raises(ValueError, match="matching shapes"):
            client.edge_payloads([0, 1], [0])
        assert client.degree(37) == local_store.degree(37)

    def test_stats_rolls_up_every_worker(self, fleet, client, local_store):
        client.degrees(np.arange(0, local_store.n_vertices, 13))
        stats = client.stats()
        assert stats["query"] == "stats"
        assert stats["server"]["requests"]["degrees"] >= 1
        assert stats["fleet"]["workers"] == 3
        reports = stats["workers"]
        assert [r["worker"] for r in reports] == [0, 1, 2]
        assert all(r["ok"] for r in reports)
        rollup = stats["store"]
        # Slices overlap on boundary shards; the fleet counter reports the
        # parent store's shard count, not the sum of slice counts.
        assert rollup["n_shards"] == local_store.n_shards
        assert rollup["workers"] == 3
        assert rollup["shard_reads"] >= 1

    def test_boundary_inside_one_shard(self, store_factory):
        """A partition boundary in the middle of a shard's source range:
        the shard is listed by both slices, but each worker serves only its
        assigned half — no duplicated or dropped boundary rows."""
        store = store_factory()
        manifest = read_shard_manifest(store)
        shard = manifest["shards"][len(manifest["shards"]) // 2]
        boundary = (int(shard["src_min"]) + int(shard["src_max"]) + 1) // 2
        assert shard["src_min"] < boundary <= shard["src_max"]
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, boundaries=[boundary]) as harness:
            assert harness.slices[0]["n_shards"] \
                + harness.slices[1]["n_shards"] == len(manifest["shards"]) + 1
            with harness.client() as c:
                lo, hi = boundary - 15, boundary + 15
                for with_payload in (False, True):
                    routed = c.edges_in_range(lo, hi,
                                              with_payload=with_payload)
                    local = reference.edges_in_range(
                        lo, hi, with_payload=with_payload)
                    assert np.array_equal(routed, local)
                vs = np.arange(lo, hi)
                assert np.array_equal(c.degrees(vs), reference.degrees(vs))

    def test_concurrent_clients_byte_equal(self, fleet, local_store):
        """The acceptance bar: ≥ 8 concurrent clients, every routed answer
        byte-identical to the single store."""
        n = local_store.n_vertices
        n_threads, n_rounds = 8, 4
        rng = np.random.default_rng(29)
        vertices = rng.choice(n, n_threads * n_rounds)
        expected = {
            "degrees": local_store.degrees(np.arange(0, n, 11)),
            "range": local_store.edges_in_range(n // 4, n // 2,
                                                with_payload=True),
        }
        failures = []

        def worker(thread_index: int) -> None:
            try:
                with fleet.client() as c:
                    for round_index in range(n_rounds):
                        v = int(vertices[thread_index * n_rounds
                                         + round_index])
                        assert c.degree(v) == local_store.degree(v)
                        assert np.array_equal(c.neighbors(v),
                                              local_store.neighbors(v))
                        assert np.array_equal(
                            c.degrees(np.arange(0, n, 11)),
                            expected["degrees"])
                        routed = c.edges_in_range(n // 4, n // 2,
                                                  with_payload=True)
                        assert routed.dtype == np.int64
                        assert np.array_equal(routed, expected["range"])
                        ego_routed = c.egonet(v)
                        ego_local = local_store.egonet(v)
                        assert np.array_equal(ego_routed.vertices,
                                              ego_local.vertices)
            except Exception as exc:  # surfaced after join
                failures.append((thread_index, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:3]


# ----------------------------------------------------------------------
# Fault injection: worker death, replica failover, no-replica-left
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_worker_killed_mid_request_fails_over_once(self, store_factory):
        """Slice 1's primary dies after reading the request; the router
        retries its replica exactly once and the answer is byte-equal."""
        store = store_factory()
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, n_slices=3,
                          scripted={1: drop_after_request}) as harness:
            target = harness.slices[1]
            vs = np.arange(target["src_lo"], target["src_hi"], 3)
            with harness.client() as c:
                routed = c.degrees(vs)
            assert np.array_equal(routed, reference.degrees(vs))
            channel = harness.channel(1)
            assert channel.failovers == 1
            # The channel stuck to the replica after failing over: a second
            # query must not pay the dead primary again.
            with harness.client() as c:
                assert np.array_equal(c.degrees(vs), reference.degrees(vs))
            assert channel.failovers == 1

    def test_worker_killed_mid_response_fails_over(self, store_factory):
        """Death *mid-frame* (desynchronized stream) is the same failover
        path as a clean close."""
        store = store_factory()
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, n_slices=3,
                          scripted={0: truncate_response}) as harness:
            lo, hi = 0, harness.slices[0]["src_hi"]
            with harness.client() as c:
                routed = c.edges_in_range(lo, hi, with_payload=True)
            assert np.array_equal(
                routed, reference.edges_in_range(lo, hi, with_payload=True))
            assert harness.channel(0).failovers == 1

    def test_pooled_connection_to_stopped_worker_fails_over(
            self, store_factory):
        """A worker stopped *between* requests: the router's pooled client
        hits a dead socket on the next call and fails over to the replica."""
        store = store_factory()
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, n_slices=2, replicas=2) as harness:
            vs = np.arange(0, reference.n_vertices, 9)
            with harness.client() as c:
                assert np.array_equal(c.degrees(vs),
                                      reference.degrees(vs))  # warm pools
                harness.kill(0, 0)
                assert np.array_equal(c.degrees(vs), reference.degrees(vs))
            assert harness.channel(0).failovers == 1

    def test_all_replicas_down_is_an_error_frame_not_a_disconnect(
            self, store_factory):
        """Every replica of one slice down: the router reports a clear
        error naming the worker and its range — and the client connection
        stays usable for queries the surviving slices can answer."""
        store = store_factory()
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, n_slices=3) as harness:
            dead = harness.slices[1]
            harness.kill(1, 0)
            with harness.client() as c:
                with pytest.raises(ServerError, match=(
                        rf"worker 1 \(sources \[{dead['src_lo']}, "
                        rf"{dead['src_hi']}\)\) is unavailable")):
                    c.degrees(np.arange(dead["src_lo"], dead["src_hi"], 5))
                # Same connection, different slice: still answered.
                vs = np.arange(0, dead["src_lo"], 4)
                assert np.array_equal(c.degrees(vs), reference.degrees(vs))
                assert c.connection_stats()["connects"] == 1


# ----------------------------------------------------------------------
# Observability: merged span trees, failover visibility, fleet-wide reset
# ----------------------------------------------------------------------
class TestFleetObservability:
    def test_routed_trace_spans_failed_and_failover_attempts(
            self, store_factory):
        """The acceptance scenario: a traced ``egonet`` against a 3-slice
        fleet whose slice-1 primary dies mid-request.  The ``trace`` op
        must return one tree — router op span, per-worker fan-out, worker
        serve spans — with the failed attempt and its successful failover
        retry as sibling ``fleet.worker_call`` spans under one trace id."""
        store = store_factory()
        reference = ShardStore(store, cache_shards=16)
        with FleetHarness(store, n_slices=3,
                          scripted={1: drop_after_request}) as harness:
            center = (harness.slices[1]["src_lo"]
                      + harness.slices[1]["src_hi"]) // 2
            recorder = TraceRecorder()
            with harness.client() as c:
                with trace.start_trace("acceptance", recorder) as t:
                    routed = c.egonet(center)
                spans = c.trace_spans(t.trace_id)
            assert np.array_equal(routed.vertices,
                                  reference.egonet(center).vertices)

            assert spans, "router returned no spans for the trace"
            assert {s["trace"] for s in spans} == {t.trace_id}
            by_name = {}
            for s in spans:
                by_name.setdefault(s["name"], []).append(s)
            # The router's own op span, parented under the client's span.
            (op_span,) = by_name["serve.egonet"]
            client_spans = {s["name"]: s for s in recorder.spans(t.trace_id)}
            assert op_span["parent"] == client_spans["client.egonet"]["span"]
            # Both slice-1 attempts: the dead primary as an error span, the
            # replica retry as its ok sibling marked failover.
            attempts = [s for s in by_name["fleet.worker_call"]
                        if s.get("worker") == 1]
            failed = [s for s in attempts if s["status"] == "error"]
            retried = [s for s in attempts if s.get("failover")]
            assert len(failed) == 1 and len(retried) == 1
            assert retried[0]["status"] == "ok"
            assert failed[0]["parent"] == retried[0]["parent"]  # siblings
            # Worker-side serve spans were merged in over the wire: the
            # fan-out's batch gathers parent under the router's
            # channel-client request spans, and their shard decodes under
            # them (``serve.hello``/``serve.egonet`` are router-recorded).
            channel_request_ids = {s["span"] for s in spans
                                   if s["name"].startswith("client.")}
            worker_serve = by_name.get("serve.edges_for_sources", [])
            assert worker_serve, "no worker spans were merged into the tree"
            assert all(s["parent"] in channel_request_ids
                       for s in worker_serve)
            worker_serve_ids = {s["span"] for s in worker_serve}
            assert any(s["parent"] in worker_serve_ids
                       for s in by_name.get("store.decode", []))

    def test_routed_metrics_exposes_fleet_series(self, fleet, client,
                                                 local_store):
        client.degrees(np.arange(0, local_store.n_vertices, 13))
        answer = client.metrics()
        counters = {(c["name"], c["labels"].get("worker")): c["value"]
                    for c in answer["metrics"]["counters"]}
        assert sum(counters[("fleet.worker_calls", str(w))]
                   for w in range(3)) >= 3
        assert 'fleet_worker_calls{worker="0"}' in answer["prometheus"]

    def test_reset_stats_fans_out_fleet_wide(self, store_factory):
        store = store_factory()
        with FleetHarness(store, n_slices=3) as harness:
            with harness.client() as c:
                c.degrees(np.arange(0, 300, 5))
                assert c.stats()["server"]["requests"]["degrees"] == 1
                answer = c.reset_stats()
                assert answer == {"query": "reset_stats", "reset": True,
                                  "workers": 3}
                stats = c.stats()
                assert "degrees" not in stats["server"]["requests"]
                # Worker-side counters were reset over the wire too.
                assert stats["store"]["shard_reads"] == 0
                assert all(r["stats"]["server"]["requests"].get(
                    "degrees") is None for r in stats["workers"])


# ----------------------------------------------------------------------
# Flight recorder + profiler + health rollups (PR 10 acceptance)
# ----------------------------------------------------------------------
class TestFleetFlightRecorder:
    def test_failover_event_carries_the_trace_id(self, store_factory):
        """Acceptance: a forced failover during a routed *batch* query must
        surface on the router's ``events`` op as a ``fleet.failover``
        event stamped with that query's trace id.  (Scalar ops coalesce
        through the batch flush without a copied trace context by design,
        so the stamped path is the batch one.)"""
        store = store_factory()
        with FleetHarness(store, n_slices=3,
                          scripted={0: drop_after_request}) as harness:
            probe = harness.slices[0]["src_lo"]
            recorder = TraceRecorder()
            with harness.client() as c:
                with trace.start_trace("failover", recorder) as t:
                    c.degrees([probe, probe + 1])
                answer = c.events()
            assert answer["workers"] == 3
            events = answer["events"]
            deaths = [e for e in events
                      if e["kind"] == "fleet.replica_death"]
            assert deaths and deaths[0]["worker"] == 0
            failovers = [e for e in events if e["kind"] == "fleet.failover"]
            assert len(failovers) == 1
            event = failovers[0]
            assert event["trace"] == t.trace_id
            assert event["worker"] == 0
            assert (event["src_lo"], event["src_hi"]) == (
                harness.slices[0]["src_lo"], harness.slices[0]["src_hi"])
            assert event["from_address"] != event["to_address"]

    def test_merged_profile_is_the_sum_of_worker_profiles(
            self, store_factory, local_store):
        """Acceptance: after a fleet-wide profiler stop, the router's
        merged snapshot equals its own aggregate plus the per-worker
        aggregates read back directly from each worker."""
        from repro.obs import ProfileStats

        store = store_factory()
        with FleetHarness(store, n_slices=3) as harness:
            with harness.client() as c:
                started = c.profile("start", hz=500)
                assert started["running"] is True and started["workers"] == 3
                for lo in range(0, local_store.n_vertices, 40):
                    c.degrees(np.arange(lo, min(lo + 20,
                                                local_store.n_vertices)))
                answer = c.profile("stop")
                assert answer["running"] is False
            merged = ProfileStats.from_dict(answer["profile"])
            own = ProfileStats.from_dict(answer["router"])
            worker_sum = ProfileStats()
            for (worker,) in harness.workers:
                with QueryClient(worker.host, worker.port) as direct:
                    direct_answer = direct.profile()
                    assert direct_answer["running"] is False
                    worker_sum += ProfileStats.from_dict(
                        direct_answer["profile"])
            assert merged == own + worker_sum
            assert merged.samples >= own.samples

    def test_health_degraded_names_the_dead_worker(self, store_factory):
        """Acceptance: with one worker's only replica down, ``health``
        reports ``degraded`` naming the worker and its source range —
        while the rest of the fleet keeps serving."""
        store = store_factory()
        with FleetHarness(store, n_slices=3) as harness:
            harness.kill(2)
            with harness.client() as c:
                health = c.health()
                assert health["status"] == "degraded"
                assert health["fleet"] == {"workers": 3, "down": 1}
                (down,) = health["down"]
                assert down["worker"] == 2
                assert (down["src_lo"], down["src_hi"]) == (
                    harness.slices[2]["src_lo"],
                    harness.slices[2]["src_hi"])
                assert down["error"]
                reports = {r["worker"]: r for r in health["workers"]}
                assert reports[0]["ok"] and reports[1]["ok"]
                assert not reports[2]["ok"]
                # The healthy slices answer as if nothing happened.
                assert c.degree(harness.slices[0]["src_lo"]) >= 0

    def test_healthy_fleet_reports_ok(self, fleet, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["fleet"] == {"workers": 3, "down": 0}
        assert health["down"] == []
        assert all(r.get("health", {}).get("status") == "ok"
                   for r in health["workers"])


# ----------------------------------------------------------------------
# CLI: serve --fleet and query --connect routing transparency
# ----------------------------------------------------------------------
class TestFleetCLI:
    def test_query_connect_routes_transparently(self, fleet, store_dir,
                                                capsys):
        from repro import cli
        for flags in (["--degree", "37"],
                      ["--neighbors", "37", "--payload"],
                      ["--egonet", "37", "--payload"],
                      ["--range", "0", "300", "--limit", "5"]):
            assert cli.main(["query", str(store_dir), "--json", *flags]) == 0
            local = json.loads(capsys.readouterr().out)
            assert cli.main(["query", "--connect", fleet.address,
                             "--json", *flags]) == 0
            routed = json.loads(capsys.readouterr().out)
            # Cache counters legitimately differ (fleet rollup vs local
            # store); every query-answer key must be identical.
            local.pop("store")
            routed.pop("store")
            assert local == routed

    def test_health_cli_exit_code_tracks_degradation(self, store_factory,
                                                     capsys):
        from repro import cli
        store = store_factory()
        with FleetHarness(store, n_slices=3) as harness:
            assert cli.main(["health", "--connect", harness.address]) == 0
            assert f"{harness.address}: ok" in capsys.readouterr().out
            harness.kill(1)
            assert cli.main(["health", "--connect", harness.address]) == 1
            out = capsys.readouterr().out
            assert "degraded" in out
            assert "worker 1" in out and "DOWN" in out

    def test_serve_fleet_subcommand_end_to_end(self, store_dir, local_store):
        """`repro-kron serve --fleet 2` in a real subprocess: partitions,
        spawns the slice workers, fronts them with the router, answers
        routed queries, and shuts down gracefully with the fleet summary."""
        env = dict(os.environ)
        src = str((
            __import__("pathlib").Path(__file__).resolve().parent.parent
            / "src"))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-u", "-c",
             "from repro.cli import main; import sys; "
             "sys.exit(main(sys.argv[1:]))",
             "serve", str(store_dir), "--port", "0", "--fleet", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", banner)
            assert match, banner
            assert "fleet of 2" in banner
            with QueryClient("127.0.0.1", int(match.group(1))) as c:
                assert c.hello()["fleet"]["workers"] == 2
                assert c.degree(37) == local_store.degree(37)
                vs = np.arange(0, local_store.n_vertices, 17)
                assert np.array_equal(c.degrees(vs), local_store.degrees(vs))
                c.shutdown_server()
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "served" in stdout and "2 workers" in stdout
