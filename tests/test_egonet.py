"""Tests for egonet extraction (direct and implicit from Kronecker products)."""

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph, kron_degrees, kron_vertex_triangles
from repro.graphs import egonet, egonet_degree, egonet_triangle_count
from repro.triangles import vertex_triangles


class TestDirectEgonets:
    def test_center_first_vertex(self, k4):
        ego = egonet(k4, 2)
        assert ego.center == 2
        assert ego.vertices[0] == 2
        assert ego.center_local == 0

    def test_clique_egonet_is_whole_clique(self, k5):
        ego = egonet(k5, 0)
        assert ego.n_vertices == 5
        assert ego.degree_of_center() == 4
        assert ego.triangles_at_center() == 6  # C(4, 2)

    def test_triangle_free_graph(self):
        star = generators.star_graph(5)
        ego = egonet(star, 0)
        assert ego.triangles_at_center() == 0
        assert ego.degree_of_center() == 5

    def test_leaf_vertex(self):
        path = generators.path_graph(4)
        ego = egonet(path, 0)
        assert ego.n_vertices == 2
        assert ego.degree_of_center() == 1

    def test_egonet_matches_global_triangle_count(self, weblike_small):
        t = vertex_triangles(weblike_small)
        for v in [0, 5, 17, 33, 59]:
            assert egonet_triangle_count(weblike_small, v) == t[v]

    def test_egonet_matches_degree(self, weblike_small):
        degrees = weblike_small.degrees()
        for v in [1, 8, 21, 40]:
            assert egonet_degree(weblike_small, v) == degrees[v]

    def test_self_loop_ignored(self):
        g = generators.looped_clique(4)
        ego = egonet(g, 1)
        assert ego.degree_of_center() == 3
        assert ego.triangles_at_center() == 3

    def test_hub_cycle_counts(self, hub_cycle):
        # Hub vertex 0 sits in all 4 triangles; cycle vertices in 2 each.
        assert egonet_triangle_count(hub_cycle, 0) == 4
        for v in range(1, 5):
            assert egonet_triangle_count(hub_cycle, v) == 2


class TestKroneckerEgonets:
    """Figure 7 machinery: egonets of the implicit product match the formulas."""

    def test_degrees_match_formula(self, weblike_small):
        factor_b = weblike_small.with_self_loops()
        product = KroneckerGraph(weblike_small, factor_b)
        formula = kron_degrees(weblike_small, factor_b)
        rng = np.random.default_rng(1)
        for p in rng.integers(0, product.n_vertices, size=5):
            assert egonet_degree(product, int(p)) == formula[p]

    def test_triangles_match_formula(self, weblike_small):
        factor_b = weblike_small.with_self_loops()
        product = KroneckerGraph(weblike_small, factor_b)
        formula = kron_vertex_triangles(weblike_small, factor_b)
        rng = np.random.default_rng(2)
        for p in rng.integers(0, product.n_vertices, size=5):
            assert egonet_triangle_count(product, int(p)) == formula[p]

    def test_egonet_equals_materialized_egonet(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        materialized = product.materialize()
        for p in [0, 7, 23, 40]:
            implicit = egonet(product, p)
            direct = egonet(materialized, p)
            assert implicit.n_vertices == direct.n_vertices
            assert implicit.graph == direct.graph

    def test_neighbors_consistent_with_materialized(self, small_er, triangle):
        product = KroneckerGraph(small_er, triangle)
        materialized = product.materialize()
        for p in [3, 11, 30]:
            assert product.neighbors(p).tolist() == materialized.neighbors(p).tolist()
