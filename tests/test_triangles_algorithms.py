"""Cross-checks between the three triangle algorithms and the unified front-end."""

import numpy as np
import pytest

from repro import generators
from repro.triangles import (
    ALGORITHMS,
    TriangleCensus,
    count_triangles_edge_iterator,
    edge_triangle_participation,
    edge_triangles,
    enumerate_triangles,
    total_triangles,
    total_triangles_node_iterator,
    triangle_count,
    vertex_triangle_participation,
    vertex_triangles,
    vertex_triangles_node_iterator,
)


GRAPH_FACTORIES = [
    lambda: generators.complete_graph(6),
    lambda: generators.hub_cycle_graph(),
    lambda: generators.cycle_graph(7),
    lambda: generators.erdos_renyi(20, 0.3, seed=2),
    lambda: generators.webgraph_like(40, seed=5),
    lambda: generators.barabasi_albert(30, 2, seed=6),
]


class TestNodeIterator:
    @pytest.mark.parametrize("factory", GRAPH_FACTORIES)
    def test_matches_matrix_kernel(self, factory):
        g = factory()
        assert np.array_equal(vertex_triangles_node_iterator(g), vertex_triangles(g))

    def test_total(self, weblike_small):
        assert total_triangles_node_iterator(weblike_small) == total_triangles(weblike_small)

    def test_ignores_self_loops(self):
        looped = generators.looped_clique(4)
        assert vertex_triangles_node_iterator(looped).tolist() == [3, 3, 3, 3]


class TestEnumeration:
    def test_enumerates_each_triangle_once(self, k4):
        triangles = list(enumerate_triangles(k4))
        assert len(triangles) == 4
        assert len(set(triangles)) == 4
        for i, j, k in triangles:
            assert i < j < k

    def test_counts_match(self, small_er):
        assert len(list(enumerate_triangles(small_er))) == total_triangles(small_er)

    def test_triangle_free(self):
        assert list(enumerate_triangles(generators.cycle_graph(8))) == []

    def test_every_enumerated_triple_is_a_triangle(self, weblike_small):
        for i, j, k in enumerate_triangles(weblike_small):
            assert weblike_small.has_edge(i, j)
            assert weblike_small.has_edge(j, k)
            assert weblike_small.has_edge(i, k)


class TestEdgeIterator:
    @pytest.mark.parametrize("factory", GRAPH_FACTORIES)
    def test_total_and_per_vertex_match(self, factory):
        g = factory()
        census = count_triangles_edge_iterator(g)
        assert census.total == total_triangles(g)
        assert np.array_equal(census.per_vertex, vertex_triangles(g))

    @pytest.mark.parametrize("factory", GRAPH_FACTORIES)
    def test_per_edge_matches(self, factory):
        g = factory()
        census = count_triangles_edge_iterator(g)
        assert (census.per_edge != edge_triangles(g)).nnz == 0

    def test_wedge_checks_bounded_by_arcs(self, weblike_small):
        census = count_triangles_edge_iterator(weblike_small)
        # One wedge check per oriented edge in the degree orientation.
        assert census.wedge_checks == weblike_small.n_edges

    def test_returns_dataclass(self, k4):
        census = count_triangles_edge_iterator(k4)
        assert isinstance(census, TriangleCensus)
        assert census.total == 4

    def test_empty_graph(self):
        census = count_triangles_edge_iterator(generators.empty_graph(5))
        assert census.total == 0
        assert census.per_edge.nnz == 0


class TestUnifiedFrontEnd:
    def test_algorithms_tuple(self):
        assert set(ALGORITHMS) == {"matrix", "node", "wedge"}

    @pytest.mark.parametrize("method", ALGORITHMS)
    def test_vertex_participation_all_methods(self, weblike_small, method):
        expected = vertex_triangles(weblike_small)
        assert np.array_equal(
            vertex_triangle_participation(weblike_small, method=method), expected
        )

    @pytest.mark.parametrize("method", ["matrix", "wedge"])
    def test_edge_participation_methods(self, small_er, method):
        expected = edge_triangles(small_er)
        got = edge_triangle_participation(small_er, method=method)
        assert (got != expected).nnz == 0

    def test_edge_participation_node_method_rejected(self, small_er):
        with pytest.raises(ValueError):
            edge_triangle_participation(small_er, method="node")

    @pytest.mark.parametrize("method", ALGORITHMS)
    def test_triangle_count_all_methods(self, hub_cycle, method):
        assert triangle_count(hub_cycle, method=method) == 4

    def test_unknown_method(self, k4):
        with pytest.raises(ValueError):
            vertex_triangle_participation(k4, method="quantum")
