"""Reusable serving-fleet harness for tests and benchmarks.

:class:`FleetHarness` partitions a compacted store
(:func:`repro.store.partition_manifest`), spawns one
:class:`~repro.serve.ThreadedServer` worker per slice replica on ephemeral
ports, and fronts them with a :class:`~repro.serve.ThreadedRouter` — the
full range-routed fleet of ``serve --fleet``, in-process, torn down by
``with``.  Fault injection hooks:

* :meth:`FleetHarness.kill` stops a worker mid-test (its port then refuses
  connections, the transport failure the router's channel must fail over);
* ``scripted={slice_index: handler}`` prepends a scripted-failure socket —
  the same hand-rolled-peer pattern as ``_scripted_server`` in
  ``tests/test_serve.py`` — as that slice's *primary* address, so a worker
  can die mid-request deterministically while a real replica stands behind
  it.  :func:`drop_after_request` and :func:`truncate_response` are the two
  stock handlers (connection killed after reading the request / mid-frame).

Shared by ``tests/test_router.py`` and the fleet smoke in
``benchmarks/bench_query_server.py`` (the benchmarks conftest puts this
directory on ``sys.path``).
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Callable, Dict, Optional

from repro.graphs.io import read_shard_manifest
from repro.serve import (
    FleetStore,
    QueryClient,
    ThreadedRouter,
    ThreadedServer,
    fleet_info_from_manifest,
    protocol,
)
from repro.store import partition_manifest

__all__ = ["FleetHarness", "scripted_worker", "drop_after_request",
           "truncate_response"]


def scripted_worker(handler: Callable) -> "tuple[socket.socket, str]":
    """A fake worker: every accepted connection runs *handler(conn)*.

    Returns ``(listener, "host:port")``; close the listener to stop the
    accept thread.  Mirrors ``_scripted_server`` in ``tests/test_serve.py``.
    """
    lsock = socket.socket()
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(8)
    port = lsock.getsockname()[1]

    def run():
        while True:
            try:
                conn, _ = lsock.accept()
            except OSError:
                return  # listener closed: harness torn down
            with conn:
                try:
                    handler(conn)
                except Exception:
                    pass  # a peer that already hung up is fine

    threading.Thread(target=run, daemon=True).start()
    return lsock, f"127.0.0.1:{port}"


def drop_after_request(conn: socket.socket) -> None:
    """Scripted failure: read one request, then die without answering —
    the worker-killed-mid-request fault (client side sees a clean close
    where a response was owed)."""
    protocol.read_frame(conn)


def truncate_response(conn: socket.socket) -> None:
    """Scripted failure: read one request, start a response frame, then die
    mid-body — the worker-killed-mid-response fault (client side sees a
    desynchronized stream)."""
    protocol.read_frame(conn)
    conn.sendall(struct.pack(">I", 4096) + b'{"ok": tru')


class FleetHarness:
    """Partition + workers + router on ephemeral ports, context-managed.

    Parameters
    ----------
    store_dir:
        A compacted store directory.
    n_slices / boundaries:
        Forwarded to :func:`repro.store.partition_manifest`.
    replicas:
        Real workers per slice (each its own :class:`ThreadedServer` over
        the same slice directory).
    scripted:
        ``{slice_index: handler}`` — prepend a :func:`scripted_worker`
        running *handler* as that slice's primary address (the real
        replicas become its failovers).
    timeout:
        Router→worker socket timeout (short: fleet tests want failures to
        surface fast).
    """

    def __init__(self, store_dir, *, n_slices: Optional[int] = None,
                 boundaries=None, replicas: int = 1,
                 scripted: Optional[Dict[int, Callable]] = None,
                 cache_shards: int = 8, decode_threads: int = 4,
                 timeout: float = 10.0):
        self.store_dir = store_dir
        self.slices = partition_manifest(store_dir, n_slices=n_slices,
                                         boundaries=boundaries)
        self.manifest = read_shard_manifest(store_dir)
        self.replicas = int(replicas)
        self._scripted_spec = dict(scripted or {})
        self._scripted_listeners = []
        self.workers = []  # workers[slice_index][replica_index]
        self.fleet: Optional[FleetStore] = None
        self.router: Optional[ThreadedRouter] = None
        self._cache_shards = cache_shards
        self._decode_threads = decode_threads
        self._timeout = timeout

    def start(self) -> "FleetHarness":
        spec = []
        for entry in self.slices:
            addresses = []
            handler = self._scripted_spec.get(entry["index"])
            if handler is not None:
                listener, address = scripted_worker(handler)
                self._scripted_listeners.append(listener)
                addresses.append(address)
            replicas = []
            for _ in range(self.replicas):
                worker = ThreadedServer(
                    entry["directory"], cache_shards=self._cache_shards,
                    decode_threads=self._decode_threads).start()
                replicas.append(worker)
                addresses.append(worker.address)
            self.workers.append(replicas)
            spec.append({"src_lo": entry["src_lo"],
                         "src_hi": entry["src_hi"],
                         "addresses": addresses})
        self.fleet = FleetStore(spec, fleet_info_from_manifest(self.manifest),
                                timeout=self._timeout)
        self.router = ThreadedRouter(
            self.fleet, decode_threads=self._decode_threads).start()
        return self

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        if self.fleet is not None:
            self.fleet.close()
            self.fleet = None
        for replicas in self.workers:
            for worker in replicas:
                worker.stop()
        self.workers = []
        for listener in self._scripted_listeners:
            listener.close()
        self._scripted_listeners = []

    def __enter__(self) -> "FleetHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accessors / fault injection
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> str:
        return self.router.address

    def client(self, **kwargs) -> QueryClient:
        """A wire client talking to the *router* (kwargs → QueryClient)."""
        kwargs.setdefault("timeout", self._timeout)
        return QueryClient(self.host, self.port, **kwargs)

    def channel(self, slice_index: int):
        """The router's wire channel for one slice (its failover counters
        are the fault-injection assertions' ground truth)."""
        return self.fleet._channels[slice_index]

    def kill(self, slice_index: int, replica_index: int = 0) -> None:
        """Stop one real worker; its port then refuses connections."""
        self.workers[slice_index][replica_index].stop()

    def owner_of(self, vertex: int) -> int:
        """Slice index whose assigned range contains *vertex*."""
        for entry in self.slices:
            if entry["src_lo"] <= vertex < entry["src_hi"]:
                return entry["index"]
        raise IndexError(f"vertex {vertex} outside every slice range")
