"""Tests for clustering coefficients derived from triangle participation."""

import numpy as np
import pytest

from repro import generators
from repro.triangles import (
    average_clustering_coefficient,
    edge_clustering_coefficients,
    edge_triangles,
    global_clustering_coefficient,
    local_clustering_coefficients,
    vertex_triangles,
)


class TestLocalClustering:
    def test_clique_is_one(self):
        coeffs = local_clustering_coefficients(generators.complete_graph(6))
        assert np.allclose(coeffs, 1.0)

    def test_triangle_free_is_zero(self):
        coeffs = local_clustering_coefficients(generators.cycle_graph(8))
        assert np.allclose(coeffs, 0.0)

    def test_low_degree_vertices_zero(self):
        path = generators.path_graph(3)
        coeffs = local_clustering_coefficients(path)
        assert coeffs[0] == 0.0 and coeffs[2] == 0.0

    def test_hub_cycle_values(self, hub_cycle):
        coeffs = local_clustering_coefficients(hub_cycle)
        # Hub: degree 4, 4 triangles -> 8/12; cycle vertices: degree 3, 2 triangles -> 4/6.
        assert coeffs[0] == pytest.approx(8 / 12)
        assert np.allclose(coeffs[1:], 4 / 6)

    def test_matches_networkx(self, weblike_small):
        import networkx as nx

        expected = nx.clustering(weblike_small.to_networkx())
        ours = local_clustering_coefficients(weblike_small)
        for v in range(weblike_small.n_vertices):
            assert ours[v] == pytest.approx(expected[v])

    def test_precomputed_inputs(self, small_er):
        t = vertex_triangles(small_er)
        d = small_er.degrees()
        direct = local_clustering_coefficients(small_er)
        reused = local_clustering_coefficients(small_er, triangles=t, degrees=d)
        assert np.allclose(direct, reused)


class TestEdgeClustering:
    def test_clique_edges_fully_clustered(self):
        coeffs = edge_clustering_coefficients(generators.complete_graph(5))
        assert np.allclose(coeffs.data, 1.0)

    def test_triangle_free_zero(self):
        coeffs = edge_clustering_coefficients(generators.cycle_graph(6))
        assert coeffs.nnz == 0 or np.allclose(coeffs.data, 0.0)

    def test_precomputed_delta(self, small_er):
        delta = edge_triangles(small_er)
        a = edge_clustering_coefficients(small_er)
        b = edge_clustering_coefficients(small_er, edge_triangle_matrix=delta)
        assert np.allclose((a - b).data if (a - b).nnz else [0.0], 0.0)

    def test_values_in_unit_interval(self, weblike_small):
        coeffs = edge_clustering_coefficients(weblike_small)
        if coeffs.nnz:
            assert coeffs.data.min() >= 0.0
            assert coeffs.data.max() <= 1.0 + 1e-12


class TestGlobalClustering:
    def test_clique_transitivity_one(self):
        assert global_clustering_coefficient(generators.complete_graph(7)) == pytest.approx(1.0)

    def test_wedge_free_zero(self):
        assert global_clustering_coefficient(generators.empty_graph(4)) == 0.0

    def test_matches_networkx_transitivity(self, weblike_small):
        import networkx as nx

        expected = nx.transitivity(weblike_small.to_networkx())
        assert global_clustering_coefficient(weblike_small) == pytest.approx(expected)

    def test_average_matches_networkx(self, small_er):
        import networkx as nx

        expected = nx.average_clustering(small_er.to_networkx())
        assert average_clustering_coefficient(small_er) == pytest.approx(expected)

    def test_average_empty(self):
        assert average_clustering_coefficient(generators.empty_graph(3)) == 0.0
