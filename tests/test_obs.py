"""Unit tests for :mod:`repro.obs` plus the served observability surface.

Covers the metrics registry (counters / gauges / histograms, labels, name
validation, percentiles, snapshot/reset), Prometheus-text rendering — with a
round-trip check that the rendered numbers equal the snapshot's — the span
recorder / context plumbing in :mod:`repro.obs.trace`, and the server-side
``metrics`` / ``trace`` / ``reset_stats`` ops plus the slow-query log.
"""

from __future__ import annotations

import io
import json
import re

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.obs import (
    MetricsError,
    MetricsRegistry,
    TraceRecorder,
    render_prometheus,
    trace,
)
from repro.parallel import distributed_generate
from repro.serve import QueryClient, ThreadedServer
from repro.store import compact_shards


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_series_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("test.hits", op="degree")
        b = registry.counter("test.hits", op="degree")
        assert a is b

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("test.hits", op="degree").inc()
        registry.counter("test.hits", op="egonet").inc(2)
        values = {tuple(sorted(entry["labels"].items())): entry["value"]
                  for entry in registry.snapshot()["counters"]}
        assert values[(("op", "degree"),)] == 1
        assert values[(("op", "egonet"),)] == 2

    @pytest.mark.parametrize("bad", ["flat", "Bad.Name", "x.9start", "a..b"])
    def test_names_must_be_dotted_snake_case(self, bad):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter(bad)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("test.metric")
        with pytest.raises(MetricsError):
            registry.gauge("test.metric")

    def test_gauge_set_and_watermark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.batch_max")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.read() == 4
        gauge.set(1)
        assert gauge.read() == 1

    def test_callback_gauge_reads_live_and_rejects_set(self):
        registry = MetricsRegistry()
        state = {"n": 3}
        gauge = registry.gauge("test.occupancy", fn=lambda: state["n"])
        assert gauge.read() == 3
        state["n"] = 7
        assert gauge.read() == 7
        with pytest.raises(MetricsError):
            gauge.set(1)

    def test_histogram_percentiles_clamp_to_observed_max(self):
        registry = MetricsRegistry()
        bounds = tuple(range(10, 101, 10))
        hist = registry.histogram("test.latency", bounds, unit="us")
        for value in range(1, 101):
            hist.record(value)
        summary = hist.summary()
        # Rank-50 lands in the <=50 bucket; rank 95 and 99 in <=100.
        assert summary["p50_us"] == 50
        assert summary["p95_us"] == 100
        assert summary["p99_us"] == 100
        # A lone small sample is clamped to the observed max, not the
        # bucket's upper bound.
        lone = registry.histogram("test.lone", bounds, unit="us")
        lone.record(3)
        assert lone.summary()["p99_us"] == 3

    def test_histogram_overflow_bucket_percentile_is_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.latency", (10, 20), unit="us")
        hist.record(500)
        summary = hist.summary()
        assert summary["p99_us"] == 500
        assert summary["buckets"][">20us"] == 1

    def test_histogram_summary_keeps_legacy_wire_keys(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.latency", (100, 500), unit="us")
        hist.record(40)
        hist.record(60)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["mean_us"] == 50.0
        assert summary["max_us"] == 60
        assert set(summary["buckets"]) == {"<=100us", "<=500us", ">500us"}

    def test_histogram_timer_records_elapsed(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.latency", (10**9,), unit="us")
        with hist.time() as timer:
            pass
        assert hist.count == 1
        assert timer.elapsed_us >= 0

    def test_reset_zeroes_everything_but_callback_gauges(self):
        registry = MetricsRegistry()
        registry.counter("test.n").inc(9)
        registry.gauge("test.level").set(5)
        registry.gauge("test.live", fn=lambda: 42)
        registry.histogram("test.h", (10,)).record(1)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"][0]["value"] == 0
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert gauges["test.level"] == 0
        assert gauges["test.live"] == 42
        assert snapshot["histograms"][0]["count"] == 0


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------
def _parse_prometheus(text: str) -> dict:
    """``{(mangled_name, label_string): float_value}`` for every sample."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = re.fullmatch(r"([a-z0-9_]+)(?:\{(.*)\})? (.+)", line)
        assert match, f"unparseable exposition line: {line!r}"
        samples[(match.group(1), match.group(2) or "")] = float(match.group(3))
    return samples


class TestPrometheus:
    def test_round_trips_snapshot_numbers(self):
        registry = MetricsRegistry()
        registry.counter("test.requests", op="degree").inc(7)
        registry.gauge("test.open").set(3)
        hist = registry.histogram("test.latency", (10, 100), unit="us")
        for value in (5, 50, 5000):
            hist.record(value)
        snapshot = registry.snapshot()
        samples = _parse_prometheus(render_prometheus(snapshot))
        assert samples[("test_requests", 'op="degree"')] == 7
        assert samples[("test_open", "")] == 3
        # Cumulative buckets, +Inf == _count, and _sum — all equal to the
        # snapshot's numbers.
        assert samples[("test_latency_bucket", 'le="10"')] == 1
        assert samples[("test_latency_bucket", 'le="100"')] == 2
        assert samples[("test_latency_bucket", 'le="+Inf"')] == 3
        assert samples[("test_latency_count", "")] == 3
        assert samples[("test_latency_sum", "")] == 5055

    def test_type_lines_present(self):
        registry = MetricsRegistry()
        registry.counter("test.n").inc()
        registry.histogram("test.h", (1,)).record(0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE test_n counter" in text
        assert "# TYPE test_h histogram" in text

    def test_help_lines_name_the_dotted_source_once(self):
        registry = MetricsRegistry()
        registry.counter("test.n", op="degree").inc()
        registry.counter("test.n", op="egonet").inc()
        lines = render_prometheus(registry.snapshot()).splitlines()
        # One announcement per mangled name — not per labelled series —
        # and the help text maps it back to the dotted registry name.
        help_lines = [l for l in lines if l.startswith("# HELP test_n ")]
        assert help_lines == \
            ["# HELP test_n repro registry series test.n (counter)"]
        # HELP immediately precedes its TYPE line.
        assert lines[lines.index(help_lines[0]) + 1] == \
            "# TYPE test_n counter"


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_span_is_noop_without_active_trace(self):
        with trace.span("orphan") as record:
            assert record is None
        assert trace.current() is None

    def test_start_trace_records_tree(self):
        recorder = TraceRecorder()
        with trace.start_trace("root", recorder, op="egonet") as handle:
            with trace.span("child", worker=1):
                pass
        spans = {s["name"]: s for s in recorder.spans(handle.trace_id)}
        assert spans["root"]["parent"] is None
        assert spans["child"]["parent"] == spans["root"]["span"]
        assert spans["root"]["op"] == "egonet"
        assert all(s["status"] == "ok" for s in spans.values())
        assert all(s["elapsed_us"] >= 0 for s in spans.values())

    def test_error_spans_mark_status_and_reraise(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with trace.start_trace("root", recorder) as handle:
                with trace.span("failing"):
                    raise ValueError("boom")
        spans = {s["name"]: s for s in recorder.spans(handle.trace_id)}
        assert spans["failing"]["status"] == "error"
        assert "boom" in spans["failing"]["error"]

    def test_activate_adopts_incoming_trace(self):
        recorder = TraceRecorder()
        with trace.activate(recorder, "cafe01", parent_span_id="beef"):
            with trace.span("serve.degree"):
                pass
        (record,) = recorder.spans("cafe01")
        assert record["parent"] == "beef"

    def test_recorder_evicts_oldest_trace(self):
        recorder = TraceRecorder(max_traces=2)
        for tid in ("t1", "t2", "t3"):
            with trace.activate(recorder, tid):
                with trace.span("s"):
                    pass
        assert recorder.spans("t1") == []
        assert recorder.trace_ids() == ["t2", "t3"]

    def test_recorder_caps_spans_visibly(self):
        recorder = TraceRecorder(max_spans=2)
        with trace.activate(recorder, "hot"):
            for _ in range(5):
                with trace.span("s"):
                    pass
        spans = recorder.spans("hot")
        assert len(spans) == 3  # 2 kept + 1 truncation marker
        assert spans[-1]["name"] == "trace.truncated"


# ----------------------------------------------------------------------
# The served surface: metrics / trace / reset_stats ops, slow-query log
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    factor_a = generators.webgraph_like(30, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(10, seed=13)
    product = KroneckerGraph(factor_a, factor_b)
    tmp = tmp_path_factory.mktemp("obs-store")
    sink = NpyShardSink(tmp / "spill", name=product.name,
                        n_vertices=product.n_vertices)
    distributed_generate(factor_a, factor_b, 2, streaming=True,
                         a_edges_per_block=16, sink=sink)
    compact_shards(tmp / "spill", tmp / "store", target_shard_edges=2000)
    return tmp / "store"


class TestServedSurface:
    def test_metrics_op_round_trips_registry(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.degree(5)
            answer = client.metrics()
            counters = {(c["name"], c["labels"].get("op")): c["value"]
                        for c in answer["metrics"]["counters"]}
            assert counters[("serve.requests", "degree")] >= 1
            samples = _parse_prometheus(answer["prometheus"])
            assert samples[('serve_requests', 'op="degree"')] == \
                counters[("serve.requests", "degree")]

    def test_stats_is_a_view_over_the_registry(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.degree(5)
            stats = client.stats()
            histogram = stats["server"]["latency_us"]["degree"]
            assert {"p50_us", "p95_us", "p99_us"} <= set(histogram)
            # The same numbers through the metrics op.
            snapshot = client.metrics()["metrics"]
            served = {(c["name"], c["labels"].get("op")): c["value"]
                      for c in snapshot["counters"]}
            assert stats["server"]["requests"]["degree"] == \
                served[("serve.requests", "degree")]

    def test_traced_query_yields_server_span_tree(self, store_dir):
        recorder = TraceRecorder()
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            with trace.start_trace("lookup", recorder) as t:
                client.egonet(5)
            server_spans = client.trace_spans(t.trace_id)
            names = [s["name"] for s in server_spans]
            assert "serve.egonet" in names
            # The server's op span parents under the client's request span.
            client_spans = {s["name"]: s for s in recorder.spans(t.trace_id)}
            serve_span = next(s for s in server_spans
                              if s["name"] == "serve.egonet")
            assert serve_span["parent"] == \
                client_spans["client.egonet"]["span"]
            # Shard decodes on the executor inherit the request context.
            decode = [s for s in server_spans if s["name"] == "store.decode"]
            assert decode, "expected store.decode spans on a cold cache"
            assert all(s["parent"] == serve_span["span"] for s in decode)

    def test_untraced_requests_record_no_spans(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.degree(5)
            assert handle.server.recorder.trace_ids() == []

    def test_reset_stats_zeroes_counters(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.degree(5)
            client.degree(6)
            assert client.stats()["server"]["requests"]["degree"] == 2
            answer = client.reset_stats()
            assert answer["reset"] is True
            assert "workers" not in answer  # single server, no fleet
            assert "degree" not in client.stats()["server"]["requests"]
            assert client.stats()["store"]["shard_reads"] == 0

    def test_slow_query_log_writes_json_lines(self, store_dir):
        log = io.StringIO()
        with ThreadedServer(store_dir, slow_query_us=0,
                            slow_query_log=log) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.degree(5)
            stats = client.stats()
            assert stats["server"]["slow_queries"] >= 1
        lines = [json.dumps(json.loads(line), sort_keys=True)
                 for line in log.getvalue().splitlines() if line]
        assert lines
        entry = json.loads(lines[0])
        assert {"ts", "op", "elapsed_us", "ok", "trace"} <= set(entry)
        assert entry["ok"] is True

    def test_store_gauges_report_cache_occupancy(self, store_dir):
        with ThreadedServer(store_dir) as handle, \
                QueryClient(handle.host, handle.port) as client:
            client.egonet(5)
            gauges = {g["name"]: g["value"]
                      for g in client.metrics()["metrics"]["gauges"]}
            assert gauges["store.cached_shards"] >= 1
            assert gauges["store.mapped_bytes"] > 0
