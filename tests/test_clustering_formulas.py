"""Tests for the closed-walk, wedge, and clustering-coefficient Kronecker formulas."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    diag_of_power,
    kron_closed_walks,
    kron_closed_walks_at,
    kron_global_clustering,
    kron_local_clustering,
    kron_wedge_total,
)
from repro.triangles import (
    global_clustering_coefficient,
    local_clustering_coefficients,
    total_wedges,
)


FACTOR_PAIRS = [
    (generators.erdos_renyi(8, 0.5, seed=1), generators.complete_graph(4)),
    (generators.webgraph_like(12, seed=2), generators.looped_clique(3)),
    (generators.erdos_renyi(7, 0.5, seed=3, self_loops=True),
     generators.erdos_renyi(6, 0.55, seed=4, self_loops=True)),
]


class TestDiagOfPower:
    def test_matches_dense_power(self, small_er_loops):
        dense = small_er_loops.to_dense()
        for k in (1, 2, 3, 4, 5):
            expected = np.diag(np.linalg.matrix_power(dense, k))
            assert np.array_equal(diag_of_power(small_er_loops, k), expected), k

    def test_k1_is_self_loop_vector(self):
        looped = generators.looped_clique(4)
        assert diag_of_power(looped, 1).tolist() == [1, 1, 1, 1]

    def test_k_validation(self, k4):
        with pytest.raises(ValueError):
            diag_of_power(k4, 0)

    def test_k2_is_row_degree(self, k5):
        # For a loop-free graph diag(A²) is the degree.
        assert np.array_equal(diag_of_power(k5, 2), k5.degrees())


class TestClosedWalks:
    @pytest.mark.parametrize("factor_a,factor_b", FACTOR_PAIRS)
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_matches_materialized(self, factor_a, factor_b, k):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        dense = product.to_dense()
        expected = np.diag(np.linalg.matrix_power(dense, k))
        assert np.array_equal(kron_closed_walks(factor_a, factor_b, k), expected)

    def test_k3_recovers_triangles_for_loop_free(self, weblike_small, small_er):
        from repro.core import kron_vertex_triangles

        walks = kron_closed_walks(weblike_small, small_er, 3)
        assert np.array_equal(walks, 2 * kron_vertex_triangles(weblike_small, small_er))

    def test_point_queries(self, small_er, k4):
        full = kron_closed_walks(small_er, k4, 4)
        idx = np.array([0, 9, 30, full.size - 1])
        assert np.array_equal(kron_closed_walks_at(small_er, k4, 4, idx), full[idx])
        assert kron_closed_walks_at(small_er, k4, 4, 7) == full[7]


class TestWedgesAndClustering:
    @pytest.mark.parametrize("factor_a,factor_b", FACTOR_PAIRS)
    def test_wedge_total_matches_direct(self, factor_a, factor_b):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert kron_wedge_total(factor_a, factor_b) == total_wedges(product)

    @pytest.mark.parametrize("factor_a,factor_b", FACTOR_PAIRS)
    def test_local_clustering_matches_direct(self, factor_a, factor_b):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert np.allclose(kron_local_clustering(factor_a, factor_b),
                           local_clustering_coefficients(product))

    @pytest.mark.parametrize("factor_a,factor_b", FACTOR_PAIRS)
    def test_global_clustering_matches_direct(self, factor_a, factor_b):
        product = KroneckerGraph(factor_a, factor_b).materialize()
        assert kron_global_clustering(factor_a, factor_b) == pytest.approx(
            global_clustering_coefficient(product)
        )

    def test_wedge_free_product(self):
        single_edge = generators.path_graph(2)
        assert kron_global_clustering(single_edge, single_edge) == 0.0

    def test_clique_product_fully_clustered(self):
        """K ⊗ K with looped factors is a clique, so clustering is exactly 1."""
        a = generators.looped_clique(3)
        b = generators.looped_clique(4)
        assert kron_global_clustering(a, b) == pytest.approx(1.0)
        assert np.allclose(kron_local_clustering(a, b), 1.0)

    def test_scales_without_materialization(self):
        factor = generators.webgraph_like(600, seed=5)
        value = kron_global_clustering(factor, factor)
        assert 0.0 < value < 1.0
