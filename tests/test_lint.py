"""Tests for the static half of repro.lint: engine mechanics, the seven
convention rules against their fixture corpora, and the CLI subcommand.

The fixture corpora under ``tests/lint_fixtures/`` are the proof that no
rule passes vacuously: for every registered rule there is a ``bad/``
tree where the rule must fire (with the exact expected count — a
heuristic that silently widens or narrows shows up here) and a ``good/``
tree that must be completely clean under *all* rules, so look-alike
idioms (dispatch tables, executor lambdas, batched gathers) are pinned
as accepted.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (Finding, LintEngine, all_rules, render_json,
                        render_text, rules_by_name)
from repro.lint.engine import SYNTAX_ERROR_RULE

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: rule name -> findings its bad corpus must produce (exact, so a rule
#: that quietly starts over- or under-matching fails loudly).
EXPECTED_BAD_FINDINGS = {
    "np-load-mmap-mode": 6,
    "answer-shapes-in-shaping": 2,
    "no-ad-hoc-telemetry": 5,
    "no-scalar-sparse-getitem": 3,
    "no-blocking-in-async": 5,
    "registry-names-dotted": 4,
    "no-bare-print": 3,
}


def run_over(path: Path):
    return LintEngine(all_rules()).run(path)


class TestFixtureCorpus:
    def test_corpus_covers_every_registered_rule(self):
        # Satellite 3's anti-vacuity gate: a new rule without fixtures
        # (or a renamed rule orphaning its corpus) fails here.
        names = {rule.name for rule in all_rules()}
        corpora = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        assert names == corpora == set(EXPECTED_BAD_FINDINGS)

    @pytest.mark.parametrize("rule_name", sorted(EXPECTED_BAD_FINDINGS))
    def test_bad_corpus_fires_exactly_the_rule(self, rule_name):
        report = run_over(FIXTURES / rule_name / "bad")
        fired = [f for f in report.findings if f.rule == rule_name]
        others = [f for f in report.findings if f.rule != rule_name]
        assert len(fired) == EXPECTED_BAD_FINDINGS[rule_name], (
            f"expected {EXPECTED_BAD_FINDINGS[rule_name]} "
            f"{rule_name} findings, got:\n  "
            + "\n  ".join(str(f) for f in fired))
        assert not others, (
            "bad corpus tripped unrelated rules (corpus should isolate "
            "one rule):\n  " + "\n  ".join(str(f) for f in others))

    @pytest.mark.parametrize("rule_name", sorted(EXPECTED_BAD_FINDINGS))
    def test_good_corpus_is_silent_under_all_rules(self, rule_name):
        report = run_over(FIXTURES / rule_name / "good")
        assert report.files_checked > 0
        assert report.ok, (
            "known-good corpus produced findings:\n  "
            + "\n  ".join(str(f) for f in report.findings))

    def test_paren_in_string_regression(self):
        # The old grep's span scan desynced on a ")" inside a string
        # argument and mis-read the call's extent; the AST rule must
        # judge this call by its node extent and see the mmap_mode kw.
        good = FIXTURES / "np-load-mmap-mode" / "good" / "store" / "loads.py"
        text = good.read_text()
        assert 'shard_name(")")' in text, (
            "regression fixture lost the paren-in-string call")
        engine = LintEngine(all_rules())
        assert engine.run_file(good, "store/loads.py") == []

    def test_paren_in_string_still_fires_when_actually_bare(self, tmp_path):
        # ...and the same pathological string must not *hide* a genuine
        # violation on the line after it.
        bad = tmp_path / "store" / "loads.py"
        bad.parent.mkdir()
        bad.write_text(
            "import numpy as np\n"
            "def f(shard_name):\n"
            '    first = np.load(shard_name(")"))\n'
            '    return first, np.load(shard_name("x"))\n')
        findings = LintEngine(all_rules()).run_file(bad, "store/loads.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("np-load-mmap-mode", 3), ("np-load-mmap-mode", 4)]


class TestEngine:
    def test_inline_suppression_silences_only_that_rule(self, tmp_path):
        path = tmp_path / "store" / "x.py"
        path.parent.mkdir()
        path.write_text(
            "import numpy as np\n"
            'a = np.load("a.npy")  # lint: ignore[np-load-mmap-mode]\n'
            'b = np.load("b.npy")  # lint: ignore[some-other-rule]\n')
        findings = LintEngine(all_rules()).run_file(path, "store/x.py")
        assert [f.line for f in findings] == [3]

    def test_syntax_error_reported_as_pseudo_rule(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n    pass\n")
        findings = LintEngine(all_rules()).run_file(path, "broken.py")
        assert len(findings) == 1
        assert findings[0].rule == SYNTAX_ERROR_RULE
        assert findings[0].line == 1

    def test_duplicate_rule_names_rejected(self):
        rule = all_rules()[0]
        with pytest.raises(ValueError, match="duplicate"):
            LintEngine([rule, rule])

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_over(tmp_path / "nope")

    def test_package_root_autodetected_for_real_tree(self):
        # Findings inside src/repro report package-relative paths, so
        # rule layer specs match regardless of checkout location.
        report = run_over(SRC / "store")
        assert report.files_checked > 0
        assert report.ok

    def test_findings_sorted_and_stringified(self):
        report = run_over(FIXTURES / "np-load-mmap-mode" / "bad")
        keys = [(f.path, f.line, f.col) for f in report.findings]
        assert keys == sorted(keys)
        first = report.findings[0]
        assert str(first) == (f"{first.path}:{first.line}:{first.col}: "
                              f"{first.rule}: {first.message}")


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        report = run_over(FIXTURES / "registry-names-dotted" / "bad")
        text = render_text(report)
        assert "registry-names-dotted" in text
        assert "4 findings" in text

    def test_json_report_round_trips(self):
        report = run_over(FIXTURES / "no-ad-hoc-telemetry" / "bad")
        payload = json.loads(render_json(report))
        assert payload["files_checked"] == report.files_checked
        assert len(payload["findings"]) == len(report.findings)
        assert set(payload["findings"][0]) == {"rule", "path", "line",
                                               "col", "message"}
        assert payload["rules"] == [rule.name for rule in all_rules()]

    def test_clean_report_renders_zero_summary(self, tmp_path):
        (tmp_path / "empty.py").write_text("x = 1\n")
        text = render_text(run_over(tmp_path))
        assert "0 findings" in text


class TestCli:
    def test_lint_source_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_default_target_is_the_package(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        bad = FIXTURES / "np-load-mmap-mode" / "bad"
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "np-load-mmap-mode" in out

    def test_json_output_is_machine_readable(self, capsys):
        bad = FIXTURES / "answer-shapes-in-shaping" / "bad"
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == \
            ["answer-shapes-in-shaping"] * 2

    def test_rule_filter_restricts_the_run(self, capsys):
        bad = FIXTURES / "np-load-mmap-mode" / "bad"
        # The bad mmap corpus is clean under the telemetry rule alone.
        assert main(["lint", str(bad), "--rule", "no-ad-hoc-telemetry"]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad), "--rule", "np-load-mmap-mode",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["np-load-mmap-mode"]

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rule", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rules_by_name():
            assert name in out


def test_finding_is_frozen():
    finding = Finding("r", "p.py", 1, 0, "m")
    with pytest.raises(AttributeError):
        finding.line = 2
