"""Tests for the graph generators (paper examples, scale-free, stochastic baselines)."""

import numpy as np
import pytest

from repro import generators
from repro.triangles import edge_triangles, total_triangles, vertex_triangles


class TestDeterministicShapes:
    def test_complete_graph_counts(self):
        g = generators.complete_graph(6)
        assert g.n_vertices == 6
        assert g.n_edges == 15
        assert g.degrees().tolist() == [5] * 6

    def test_complete_graph_requires_positive(self):
        with pytest.raises(ValueError):
            generators.complete_graph(0)

    def test_looped_clique(self):
        g = generators.looped_clique(4)
        assert g.n_self_loops == 4
        assert g.without_self_loops() == generators.complete_graph(4)

    def test_jn_kron_jn_minus_identity_is_clique(self):
        """Example 1(c): J_nA ⊗ J_nB − I = K_{nA nB}."""
        from repro.core import KroneckerGraph

        product = KroneckerGraph(generators.looped_clique(3), generators.looped_clique(4))
        materialized = product.materialize().without_self_loops()
        assert materialized == generators.complete_graph(12)

    def test_cycle_graph(self):
        g = generators.cycle_graph(5)
        assert g.n_edges == 5
        assert g.degrees().tolist() == [2] * 5
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_path_graph(self):
        g = generators.path_graph(4)
        assert g.n_edges == 3
        assert generators.path_graph(1).n_edges == 0

    def test_star_graph(self):
        g = generators.star_graph(6)
        assert g.degrees()[0] == 6
        assert total_triangles(g) == 0

    def test_triangle_graph(self):
        assert generators.triangle_graph() == generators.complete_graph(3)

    def test_hub_cycle_matches_paper(self):
        g = generators.hub_cycle_graph()
        assert g.n_vertices == 5
        assert g.n_edges == 8
        assert total_triangles(g) == 4
        delta = edge_triangles(g)
        hub = [delta[0, v] for v in range(1, 5)]
        assert hub == [2, 2, 2, 2]


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        assert generators.erdos_renyi(30, 0.2, seed=3) == generators.erdos_renyi(30, 0.2, seed=3)

    def test_p_zero_and_one(self):
        assert generators.erdos_renyi(10, 0.0, seed=1).n_edges == 0
        assert generators.erdos_renyi(10, 1.0, seed=1) == generators.complete_graph(10)

    def test_self_loops_flag(self):
        g = generators.erdos_renyi(40, 0.5, seed=2, self_loops=True)
        assert g.n_self_loops > 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5)

    def test_bipartite_triangle_free(self):
        g = generators.random_bipartite_like(8, 9, 0.4, seed=1)
        assert total_triangles(g) == 0
        assert g.n_vertices == 17


class TestScaleFreeGenerators:
    def test_barabasi_albert_edge_count(self):
        g = generators.barabasi_albert(50, 3, seed=1)
        assert g.n_vertices == 50
        # m seed-star edges + m per additional vertex (minus possible duplicates: none by construction).
        assert g.n_edges == 3 + 3 * (50 - 4)

    def test_barabasi_albert_connected(self):
        g = generators.barabasi_albert(60, 2, seed=5)
        n_comp, _ = g.connected_components()
        assert n_comp == 1

    def test_barabasi_albert_validation(self):
        with pytest.raises(ValueError):
            generators.barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            generators.barabasi_albert(5, 0)

    def test_barabasi_albert_heavy_tail(self):
        g = generators.barabasi_albert(300, 2, seed=7)
        degrees = g.degrees()
        assert degrees.max() > 4 * np.median(degrees)

    def test_triangle_constrained_pa_delta_le_one(self):
        for seed in (1, 2, 3, 4):
            g = generators.triangle_constrained_pa(60, seed=seed)
            assert generators.max_edge_triangle_participation(g) <= 1

    def test_triangle_constrained_pa_has_triangles(self):
        g = generators.triangle_constrained_pa(80, seed=5)
        assert total_triangles(g) > 0

    def test_triangle_constrained_pa_connected(self):
        g = generators.triangle_constrained_pa(50, seed=9)
        n_comp, _ = g.connected_components()
        assert n_comp == 1

    def test_triangle_constrained_pa_validation(self):
        with pytest.raises(ValueError):
            generators.triangle_constrained_pa(1)

    def test_reduce_to_delta_le_one(self):
        g = generators.webgraph_like(70, seed=3)
        reduced = generators.reduce_to_delta_le_one(g)
        assert generators.max_edge_triangle_participation(reduced) <= 1
        # Connectivity of the original component structure is preserved.
        assert reduced.connected_components()[0] == g.connected_components()[0]

    def test_reduce_noop_when_already_satisfied(self):
        g = generators.triangle_constrained_pa(40, seed=2)
        reduced = generators.reduce_to_delta_le_one(g)
        assert reduced == g

    def test_webgraph_like_properties(self):
        g = generators.webgraph_like(120, seed=4)
        assert not g.has_self_loops
        assert g.connected_components()[0] == 1
        assert total_triangles(g) > 50
        assert g.degrees().max() > 3 * np.median(g.degrees())

    def test_webgraph_like_deterministic(self):
        assert generators.webgraph_like(50, seed=1) == generators.webgraph_like(50, seed=1)

    def test_webgraph_like_validation(self):
        with pytest.raises(ValueError):
            generators.webgraph_like(3, edges_per_vertex=5)
        with pytest.raises(ValueError):
            generators.webgraph_like(10, triad_probability=2.0)

    def test_web_notredame_substitute_scaled(self):
        g = generators.web_notredame_substitute(scale=0.001, seed=1)
        assert g.n_vertices >= 32
        assert total_triangles(g) > 0


class TestStochasticBaselines:
    def test_rmat_sizes(self):
        g = generators.rmat_graph(6, edge_factor=8, seed=3)
        assert g.n_vertices == 64
        assert g.n_edges > 0
        assert not g.has_self_loops

    def test_rmat_edges_shape(self):
        edges = generators.rmat_edges(5, edge_factor=4, seed=1)
        assert edges.shape == (4 * 32, 2)
        assert edges.max() < 32

    def test_rmat_directed(self):
        g = generators.rmat_directed_graph(5, edge_factor=4, seed=2)
        assert g.n_vertices == 32

    def test_rmat_probability_validation(self):
        with pytest.raises(ValueError):
            generators.rmat_edges(4, probs=(0.5, 0.2, 0.2, 0.2))
        with pytest.raises(ValueError):
            generators.rmat_edges(0)

    def test_rmat_skew(self):
        """With Graph500 probabilities low-id vertices accumulate most edges."""
        edges = generators.rmat_edges(7, edge_factor=16, seed=5)
        n = 128
        counts = np.bincount(edges.ravel(), minlength=n)
        assert counts[: n // 4].sum() > counts[n // 2:].sum()

    def test_stochastic_kronecker_probabilities(self):
        probs = generators.kronecker_power_probabilities(np.array([[0.9, 0.5], [0.5, 0.2]]), 3)
        assert probs.shape == (8, 8)
        assert probs.max() <= 0.9 ** 3 + 1e-12

    def test_stochastic_kronecker_validation(self):
        with pytest.raises(ValueError):
            generators.kronecker_power_probabilities(np.array([[1.5]]), 2)
        with pytest.raises(ValueError):
            generators.kronecker_power_probabilities(np.ones((2, 3)) * 0.5, 2)

    def test_expected_edge_count(self):
        init = np.array([[0.9, 0.5], [0.5, 0.2]])
        assert generators.expected_edge_count(init, 2) == pytest.approx(init.sum() ** 2)

    def test_stochastic_kronecker_graph(self):
        g = generators.stochastic_kronecker_graph(k=6, seed=1)
        assert g.n_vertices == 64
        assert not g.has_self_loops

    def test_stochastic_kronecker_deterministic(self):
        a = generators.stochastic_kronecker_graph(k=5, seed=9)
        b = generators.stochastic_kronecker_graph(k=5, seed=9)
        assert a == b

    def test_remark1_triangle_poverty(self):
        """Stochastic Kronecker graphs are triangle-poor vs. a non-stochastic product
        of comparable size (Remark 1)."""
        from repro.core import kron_triangle_count

        factor = generators.webgraph_like(32, seed=2)
        nonstochastic_triangles = kron_triangle_count(factor, factor)
        skg = generators.stochastic_kronecker_graph(k=10, seed=3)  # 1024 = 32*32 vertices
        skg_triangles = total_triangles(skg)
        assert nonstochastic_triangles > 10 * max(1, skg_triangles)
