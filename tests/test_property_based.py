"""Property-based tests (hypothesis) for core invariants and Kronecker identities."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import generators
from repro.core import (
    KroneckerGraph,
    index_maps,
    kron_degrees,
    kron_edge_triangles,
    kron_triangle_count,
    kron_vertex_triangles,
)
from repro.graphs import Graph
from repro.triangles import (
    count_triangles_edge_iterator,
    edge_triangles,
    total_triangles,
    vertex_triangles,
    vertex_triangles_node_iterator,
)

# Shared settings: the graph-valued strategies build scipy matrices, which
# hypothesis flags as slow data generation; that is expected and fine here.
GRAPH_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_vertices: int = 12, allow_self_loops: bool = False):
    """Random undirected graphs as edge sets over a small vertex range."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + (0 if allow_self_loops else 1), n)]
    if not possible:
        return Graph.empty(n)
    chosen = draw(st.lists(st.sampled_from(possible), max_size=len(possible), unique=True))
    return Graph.from_edges(chosen, n_vertices=n)


@st.composite
def graph_pairs(draw):
    """Pairs of small graphs whose Kronecker product stays tiny."""
    a = draw(small_graphs(max_vertices=7, allow_self_loops=True))
    b = draw(small_graphs(max_vertices=6, allow_self_loops=True))
    return a, b


# ---------------------------------------------------------------------------
# Index maps
# ---------------------------------------------------------------------------
class TestIndexMapProperties:
    @given(p=st.integers(min_value=0, max_value=10**9), n=st.integers(min_value=1, max_value=10**4))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, p, n):
        i, k = index_maps.factor_indices(p, n)
        assert index_maps.product_index(i, k, n) == p
        assert 0 <= k < n

    @given(i=st.integers(min_value=1, max_value=10**6), n=st.integers(min_value=1, max_value=10**3))
    @settings(max_examples=200, deadline=None)
    def test_one_based_round_trip(self, i, n):
        x = index_maps.alpha_1based(i, n)
        y = index_maps.beta_1based(i, n)
        assert index_maps.gamma_1based(x, y, n) == i
        assert 1 <= y <= n


# ---------------------------------------------------------------------------
# Triangle counting invariants
# ---------------------------------------------------------------------------
class TestTriangleInvariants:
    @given(graph=small_graphs(max_vertices=12))
    @GRAPH_SETTINGS
    def test_algorithms_agree(self, graph):
        matrix = vertex_triangles(graph)
        node = vertex_triangles_node_iterator(graph)
        wedge = count_triangles_edge_iterator(graph).per_vertex
        assert np.array_equal(matrix, node)
        assert np.array_equal(matrix, wedge)

    @given(graph=small_graphs(max_vertices=12))
    @GRAPH_SETTINGS
    def test_vertex_sum_is_three_tau(self, graph):
        assert vertex_triangles(graph).sum() == 3 * total_triangles(graph)

    @given(graph=small_graphs(max_vertices=12))
    @GRAPH_SETTINGS
    def test_edge_row_sums_are_twice_vertex_counts(self, graph):
        delta = edge_triangles(graph)
        assert np.array_equal(np.asarray(delta.sum(axis=1)).ravel(), 2 * vertex_triangles(graph))

    @given(graph=small_graphs(max_vertices=12, allow_self_loops=True))
    @GRAPH_SETTINGS
    def test_self_loops_never_change_triangles(self, graph):
        stripped = graph.without_self_loops()
        assert np.array_equal(vertex_triangles(graph), vertex_triangles(stripped))
        assert total_triangles(graph) == total_triangles(stripped)

    @given(graph=small_graphs(max_vertices=10), seed=st.integers(min_value=0, max_value=2**16))
    @GRAPH_SETTINGS
    def test_relabeling_permutes_counts(self, graph, seed):
        perm = np.random.default_rng(seed).permutation(graph.n_vertices)
        relabeled = graph.relabeled(perm)
        assert np.array_equal(vertex_triangles(relabeled), vertex_triangles(graph)[perm])


# ---------------------------------------------------------------------------
# Kronecker formula invariants (formula == direct on the materialized product)
# ---------------------------------------------------------------------------
class TestKroneckerFormulaProperties:
    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_degrees_match_materialized(self, pair):
        a, b = pair
        product = KroneckerGraph(a, b).materialize()
        assert np.array_equal(kron_degrees(a, b), product.degrees())

    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_vertex_triangles_match_materialized(self, pair):
        a, b = pair
        product = KroneckerGraph(a, b).materialize()
        assert np.array_equal(kron_vertex_triangles(a, b), vertex_triangles(product))

    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_edge_triangles_match_materialized(self, pair):
        a, b = pair
        product = KroneckerGraph(a, b).materialize()
        assert (kron_edge_triangles(a, b) != edge_triangles(product)).nnz == 0

    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_triangle_count_matches(self, pair):
        a, b = pair
        product = KroneckerGraph(a, b).materialize()
        assert kron_triangle_count(a, b) == total_triangles(product)

    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_kronecker_commutes_with_totals(self, pair):
        """τ(A ⊗ B) = τ(B ⊗ A): the product order changes labels, not counts."""
        a, b = pair
        assert kron_triangle_count(a, b) == kron_triangle_count(b, a)

    @given(pair=graph_pairs())
    @GRAPH_SETTINGS
    def test_loop_free_global_factorization(self, pair):
        a, b = pair
        a, b = a.without_self_loops(), b.without_self_loops()
        assert kron_triangle_count(a, b) == 6 * total_triangles(a) * total_triangles(b)


# ---------------------------------------------------------------------------
# Generator invariants
# ---------------------------------------------------------------------------
class TestGeneratorProperties:
    @given(n=st.integers(min_value=2, max_value=80), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_triangle_constrained_pa_invariant(self, n, seed):
        g = generators.triangle_constrained_pa(n, seed=seed)
        assert g.n_vertices == n
        assert generators.max_edge_triangle_participation(g) <= 1
        assert g.connected_components()[0] == 1

    @given(n=st.integers(min_value=5, max_value=60), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_webgraph_like_invariants(self, n, seed):
        g = generators.webgraph_like(n, edges_per_vertex=2, seed=seed)
        assert not g.has_self_loops
        assert g.connected_components()[0] == 1

    @given(graph=small_graphs(max_vertices=10))
    @GRAPH_SETTINGS
    def test_reduce_to_delta_le_one_postcondition(self, graph):
        reduced = generators.reduce_to_delta_le_one(graph)
        assert generators.max_edge_triangle_participation(reduced) <= 1
        assert reduced.connected_components()[0] == graph.connected_components()[0]
