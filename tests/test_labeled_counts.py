"""Tests for the labeled triangle census (Definitions 13-14, Fig. 6)."""

import numpy as np
import pytest

from repro import generators
from repro.graphs import VertexLabeledGraph, vertex_triangle_label_types
from repro.triangles import (
    edge_triangles,
    labeled_edge_triangle_counts,
    labeled_edge_triangle_counts_bruteforce,
    labeled_vertex_triangle_counts,
    labeled_vertex_triangle_counts_bruteforce,
    total_labeled_vertex_triangles,
    vertex_triangles,
)


@pytest.fixture
def rgb_triangle():
    """Single triangle with one vertex of each colour (r=0, g=1, b=2)."""
    return VertexLabeledGraph.from_graph(generators.complete_graph(3), [0, 1, 2])


@pytest.fixture
def monochrome_k4():
    """K4 with every vertex the same colour."""
    return VertexLabeledGraph.from_graph(generators.complete_graph(4), [0, 0, 0, 0], )


class TestSmallGraphs:
    def test_rgb_triangle_vertex_counts(self, rgb_triangle):
        counts = labeled_vertex_triangle_counts(rgb_triangle)
        # The red vertex sees one triangle whose other corners are green+blue.
        assert counts[(0, 1, 2)].tolist() == [1, 0, 0]
        assert counts[(1, 0, 2)].tolist() == [0, 1, 0]
        assert counts[(2, 0, 1)].tolist() == [0, 0, 1]
        # All same-colour-pair types are empty.
        assert counts[(0, 1, 1)].sum() == 0
        assert counts[(0, 2, 2)].sum() == 0

    def test_monochrome_counts_reduce_to_unlabeled(self, monochrome_k4):
        counts = labeled_vertex_triangle_counts(monochrome_k4)
        assert counts[(0, 0, 0)].tolist() == vertex_triangles(monochrome_k4).tolist()

    def test_rgb_triangle_edge_counts(self, rgb_triangle):
        counts = labeled_edge_triangle_counts(rgb_triangle)
        # Edge (green=1 -> red=0 entry) closed by the blue vertex: type (q1=0, q2=1, q3=2)
        # is stored at entry (i, j) with f(i)=q2=1, f(j)=q1=0.
        assert counts[(0, 1, 2)][1, 0] == 1
        assert counts[(0, 1, 2)].sum() == 1
        # No triangle has a red opposite vertex for the red-green edge.
        assert counts[(0, 1, 0)].sum() == 0

    def test_self_loops_rejected(self):
        base = generators.looped_clique(3)
        labeled = VertexLabeledGraph(base.adjacency, [0, 1, 2])
        with pytest.raises(ValueError):
            labeled_vertex_triangle_counts(labeled)
        with pytest.raises(ValueError):
            labeled_edge_triangle_counts(labeled)


class TestBruteForceAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_vertex_census_matches_bruteforce(self, seed):
        g = generators.random_labeled_graph(11, 0.4, 3, seed=seed)
        formula = labeled_vertex_triangle_counts(g)
        brute = labeled_vertex_triangle_counts_bruteforce(g)
        for t in brute:
            assert np.array_equal(formula[t], brute[t]), t

    @pytest.mark.parametrize("seed", [1, 2])
    def test_edge_census_matches_bruteforce(self, seed):
        g = generators.random_labeled_graph(10, 0.45, 3, seed=seed)
        formula = labeled_edge_triangle_counts(g)
        brute = labeled_edge_triangle_counts_bruteforce(g)
        for t in brute:
            assert np.array_equal(np.asarray(formula[t].todense()), brute[t]), t

    def test_two_label_alphabet(self):
        g = generators.random_labeled_graph(12, 0.4, 2, seed=5)
        formula = labeled_vertex_triangle_counts(g)
        brute = labeled_vertex_triangle_counts_bruteforce(g)
        for t in brute:
            assert np.array_equal(formula[t], brute[t])


class TestCoverageIdentities:
    @pytest.mark.parametrize("seed", [3, 6])
    def test_vertex_types_tile_unlabeled_counts(self, seed):
        g = generators.random_labeled_graph(14, 0.35, 3, seed=seed)
        counts = labeled_vertex_triangle_counts(g)
        assert np.array_equal(total_labeled_vertex_triangles(counts), vertex_triangles(g))

    @pytest.mark.parametrize("seed", [3, 6])
    def test_edge_types_tile_unlabeled_delta(self, seed):
        g = generators.random_labeled_graph(12, 0.4, 3, seed=seed)
        counts = labeled_edge_triangle_counts(g)
        total = None
        for mat in counts.values():
            total = mat if total is None else total + mat
        assert (total != edge_triangles(g)).nnz == 0

    def test_total_requires_nonempty(self):
        with pytest.raises(ValueError):
            total_labeled_vertex_triangles({})


class TestRequestedSubsets:
    def test_subset_vertex_types(self, labeled_small):
        counts = labeled_vertex_triangle_counts(labeled_small, types=[(0, 1, 2), (1, 1, 1)])
        assert set(counts) == {(0, 1, 2), (1, 1, 1)}

    def test_all_types_present_by_default(self, labeled_small):
        counts = labeled_vertex_triangle_counts(labeled_small)
        assert set(counts) == set(vertex_triangle_label_types(labeled_small.n_labels))
