"""Shared fixtures: small deterministic factor graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generators
from repro.graphs import DirectedGraph, Graph, VertexLabeledGraph
from repro.lint import runtime as lint_runtime


@pytest.fixture(scope="session", autouse=True)
def lock_order_sanitizer() -> lint_runtime.LockOrderSanitizer:
    """Arm the lock-order sanitizer for the whole suite.

    Every lock the store/obs/serve layers create goes through
    ``repro.lint.runtime.new_lock``, so with the sanitizer installed the
    16-thread store-churn and router fault-injection tests double as
    lock-discipline tests: any acquisition that inverts the observed
    global order (store.lru -> obs.instrument, …) raises
    ``LockOrderError`` deterministically instead of deadlocking once a
    year.
    """
    sanitizer = lint_runtime.install()
    yield sanitizer
    lint_runtime.uninstall()


@pytest.fixture
def triangle() -> Graph:
    """K3 — the single triangle."""
    return generators.complete_graph(3)


@pytest.fixture
def k4() -> Graph:
    return generators.complete_graph(4)


@pytest.fixture
def k5() -> Graph:
    return generators.complete_graph(5)


@pytest.fixture
def hub_cycle() -> Graph:
    """The Example 2 graph: 4-cycle plus hub (5 vertices, 8 edges, 4 triangles)."""
    return generators.hub_cycle_graph()


@pytest.fixture
def small_er() -> Graph:
    """Small Erdős–Rényi graph with a decent number of triangles."""
    return generators.erdos_renyi(16, 0.35, seed=11)


@pytest.fixture
def small_er_loops() -> Graph:
    """Small Erdős–Rényi graph with self loops on some vertices."""
    return generators.erdos_renyi(12, 0.35, seed=7, self_loops=True)


@pytest.fixture
def weblike_small() -> Graph:
    """Small scale-free factor with triangles (web-NotreDame stand-in)."""
    return generators.webgraph_like(60, edges_per_vertex=3, triad_probability=0.6, seed=3)


@pytest.fixture
def directed_small() -> DirectedGraph:
    """Directed factor exercising both reciprocal and one-way edges."""
    return generators.random_directed_graph(12, p_directed=0.3, p_reciprocal=0.25, seed=5)


@pytest.fixture
def labeled_small() -> VertexLabeledGraph:
    """Labeled factor with three colours."""
    return generators.random_labeled_graph(12, 0.4, 3, seed=9)


@pytest.fixture
def delta_le_one_factor() -> Graph:
    """Factor satisfying the Theorem 3 hypothesis (every edge in ≤ 1 triangle)."""
    return generators.triangle_constrained_pa(20, seed=13)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
