"""Tests for Theorem 3: Kronecker transfer of the truss decomposition."""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    check_truss_factor_assumptions,
    kron_truss_decomposition,
)
from repro.truss import truss_decomposition


@pytest.fixture
def factor_a():
    """Scale-free left factor with a non-trivial truss structure."""
    return generators.webgraph_like(40, edges_per_vertex=3, triad_probability=0.7, seed=41)


@pytest.fixture
def factor_b():
    """Right factor satisfying Δ_B ≤ 1 (Theorem 3 hypothesis)."""
    return generators.triangle_constrained_pa(18, seed=42)


class TestAssumptions:
    def test_accepts_valid_pair(self, factor_a, factor_b):
        check_truss_factor_assumptions(factor_a, factor_b)

    def test_rejects_delta_b_greater_than_one(self, factor_a, k5):
        with pytest.raises(ValueError):
            check_truss_factor_assumptions(factor_a, k5)

    def test_rejects_self_loops(self, factor_b):
        looped = generators.looped_clique(4)
        with pytest.raises(ValueError):
            check_truss_factor_assumptions(looped, factor_b)
        with pytest.raises(ValueError):
            check_truss_factor_assumptions(factor_b, looped)

    def test_rejects_directed_factor(self, factor_b, directed_small):
        with pytest.raises(TypeError):
            check_truss_factor_assumptions(directed_small, factor_b)

    def test_kron_truss_decomposition_enforces_assumptions(self, factor_a, k5):
        with pytest.raises(ValueError):
            kron_truss_decomposition(factor_a, k5)


class TestTransferCorrectness:
    def test_trussness_matrix_matches_direct_peeling(self, factor_a, factor_b):
        transferred = kron_truss_decomposition(factor_a, factor_b)
        product = KroneckerGraph(factor_a, factor_b).materialize()
        direct = truss_decomposition(product)
        assert transferred.max_truss == direct.max_truss
        assert (transferred.trussness_matrix() != direct.trussness).nnz == 0

    def test_truss_sizes_match_direct(self, factor_a, factor_b):
        transferred = kron_truss_decomposition(factor_a, factor_b)
        product = KroneckerGraph(factor_a, factor_b).materialize()
        direct = truss_decomposition(product)
        assert transferred.truss_sizes() == direct.truss_sizes()

    def test_edge_trussness_point_queries(self, factor_a, factor_b):
        transferred = kron_truss_decomposition(factor_a, factor_b)
        product = KroneckerGraph(factor_a, factor_b).materialize()
        direct = truss_decomposition(product)
        coo = direct.trussness.tocoo()
        rng = np.random.default_rng(1)
        picks = rng.choice(coo.nnz, size=min(40, coo.nnz), replace=False)
        for idx in picks:
            p, q = int(coo.row[idx]), int(coo.col[idx])
            assert transferred.edge_trussness(p, q) == int(coo.data[idx])

    def test_nonexistent_edge_trussness_zero(self, factor_a, factor_b):
        transferred = kron_truss_decomposition(factor_a, factor_b)
        # A vertex paired with itself is never an edge (no self loops anywhere).
        assert transferred.edge_trussness(0, 0) == 0

    def test_triangle_free_b_gives_trivial_decomposition(self, factor_a):
        b = generators.cycle_graph(6)  # triangle-free, Δ_B = 0 ≤ 1
        transferred = kron_truss_decomposition(factor_a, b)
        assert transferred.max_truss == 2
        assert transferred.truss_sizes() == {}
        product = KroneckerGraph(factor_a, b).materialize()
        direct = truss_decomposition(product)
        assert direct.truss_sizes() == {}

    def test_smaller_random_pair(self):
        a = generators.erdos_renyi(12, 0.35, seed=44)
        b = generators.triangle_constrained_pa(10, seed=45)
        transferred = kron_truss_decomposition(a, b)
        product = KroneckerGraph(a, b).materialize()
        direct = truss_decomposition(product)
        assert (transferred.trussness_matrix() != direct.trussness).nnz == 0


class TestGeneratorWorkflow:
    def test_generate_graph_with_known_truss_decomposition(self, factor_a, factor_b):
        """The paper's contribution (e): emit a large graph plus its exact truss classes."""
        transferred = kron_truss_decomposition(factor_a, factor_b)
        sizes = transferred.truss_sizes()
        assert sizes, "factor pair should produce a non-trivial decomposition"
        # Size identity: |T(κ)_C| = 2 |T(κ)_A| |T(3)_B| (undirected counts).
        from repro.truss import truss_decomposition as direct_decomp

        sizes_a = direct_decomp(factor_a).truss_sizes()
        b_triangle_edges = transferred.b_triangle_edges.nnz // 2
        for k, size in sizes.items():
            assert size == 2 * sizes_a[k] * b_triangle_edges

    def test_reduce_to_delta_le_one_enables_transfer(self):
        """Strategy (a): reducing an arbitrary graph makes it a valid right factor."""
        raw = generators.webgraph_like(30, seed=46)
        reduced = generators.reduce_to_delta_le_one(raw)
        a = generators.erdos_renyi(10, 0.4, seed=47)
        transferred = kron_truss_decomposition(a, reduced)
        product = KroneckerGraph(a, reduced).materialize()
        direct = truss_decomposition(product)
        assert (transferred.trussness_matrix() != direct.trussness).nnz == 0

    def test_example2_violates_hypothesis(self, hub_cycle):
        """Example 2 (hub-cycle ⊗ hub-cycle) is exactly the case Theorem 3 excludes."""
        with pytest.raises(ValueError):
            kron_truss_decomposition(hub_cycle, hub_cycle)
