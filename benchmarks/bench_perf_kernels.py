"""Perf — vectorized ground-truth kernels vs. the scalar per-edge path.

Measures the tentpole speedup of the batched kernel layer
(:mod:`repro.perf`): per-edge triangle ground truth evaluated with
``KroneckerTriangleStats.edge_values`` (one vectorized CSR gather per factor
component) against the scalar ``edge_value`` loop, plus the effect of
building the factored statistics once per generation run instead of once per
rank.

Runs in two modes (see ``benchmarks/conftest.py``):

* **full** — ``pytest benchmarks/bench_perf_kernels.py``: ≥10⁵ product
  edges, asserts the ≥50× throughput ratio and records it in the bench
  trajectory;
* **smoke** — plain tier-1 ``pytest`` or ``--quick``: small sizes, asserts
  only that the vectorized and scalar paths produce identical outputs, so
  the two implementations cannot silently diverge.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph, KroneckerTriangleStats
from repro.parallel import distributed_generate, generate_rank_edges, partition_edges
from repro.perf import CsrGatherer, csr_gather
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def perf_factors(quick_mode):
    """Factor pair sized so the product has ≥10⁵ edges in full mode."""
    if quick_mode:
        factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                            triad_probability=0.6, seed=3)
        factor_b = generators.triangle_constrained_pa(20, seed=13)
    else:
        factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                            triad_probability=0.6, seed=3)
        factor_b = generators.triangle_constrained_pa(90, seed=13)
    return factor_a, factor_b


def _timed(fn, *args, repeats: int = 3):
    """Best-of-``repeats`` wall time and the (last) result of ``fn(*args)``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_edge_statistics_throughput(perf_factors, quick_mode):
    """Batched ``edge_values`` vs. the scalar ``edge_value`` loop, same outputs."""
    factor_a, factor_b = perf_factors
    product = KroneckerGraph(factor_a, factor_b)
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    edges = product.edges(max_nnz=10_000_000)
    ps, qs = edges[:, 0], edges[:, 1]
    if not quick_mode:
        assert edges.shape[0] >= 100_000, "full mode must exercise ≥1e5 product edges"

    vec_time, vec_values = _timed(stats.edge_values, ps, qs)
    vec_throughput = edges.shape[0] / vec_time

    sample = min(2_000 if not quick_mode else 300, edges.shape[0])
    scalar_start = time.perf_counter()
    scalar_values = np.asarray(
        [stats.edge_value(int(p), int(q)) for p, q in zip(ps[:sample], qs[:sample])],
        dtype=np.int64,
    )
    scalar_time = time.perf_counter() - scalar_start
    scalar_throughput = sample / scalar_time

    # Identical outputs — the consistency half of the benchmark, asserted in
    # every mode so tier-1 catches any divergence between the two paths.
    assert np.array_equal(vec_values[:sample], scalar_values)

    ratio = vec_throughput / scalar_throughput
    print_section("Perf — per-edge ground-truth throughput (vectorized vs scalar)")
    print(f"  product: {product.n_vertices:,} vertices, {edges.shape[0]:,} directed edges")
    print(f"  vectorized edge_values: {vec_throughput:,.0f} edges/s "
          f"({vec_time*1e3:.1f} ms for the full edge list)")
    print(f"  scalar edge_value loop: {scalar_throughput:,.0f} edges/s "
          f"(sampled over {sample:,} edges)")
    print(f"  speedup: {ratio:,.1f}×")
    if not quick_mode:
        assert ratio >= 50.0, f"expected ≥50× vectorized speedup, measured {ratio:.1f}×"


def test_csr_gather_vs_scipy_scalar_indexing(perf_factors, quick_mode):
    """The raw kernel: one batched gather vs. scipy 1×1 sparse temporaries."""
    factor_a, _ = perf_factors
    adj = factor_a.adjacency
    rng = np.random.default_rng(42)
    n_queries = 2_000 if quick_mode else 50_000
    rows = rng.integers(0, adj.shape[0], n_queries)
    cols = rng.integers(0, adj.shape[1], n_queries)

    batch_time, batch_vals = _timed(csr_gather, adj, rows, cols)
    gatherer = CsrGatherer(adj)
    cached_time, cached_vals = _timed(gatherer.gather, rows, cols)

    sample = min(500, n_queries)
    scalar_start = time.perf_counter()
    scalar_vals = np.asarray([adj[int(i), int(j)] for i, j in zip(rows[:sample], cols[:sample])])
    scalar_time = time.perf_counter() - scalar_start

    assert np.array_equal(batch_vals, cached_vals)
    assert np.array_equal(batch_vals[:sample], scalar_vals)

    print_section("Perf — csr_gather kernel vs scipy scalar __getitem__")
    print(f"  {n_queries:,} point lookups on a {adj.shape[0]:,}-vertex factor "
          f"({adj.nnz:,} stored entries)")
    print(f"  csr_gather:          {n_queries / batch_time:,.0f} lookups/s")
    print(f"  CsrGatherer (cached): {n_queries / cached_time:,.0f} lookups/s")
    print(f"  scipy scalar [i, j]: {sample / scalar_time:,.0f} lookups/s")


def test_rank_generation_wall_time(perf_factors, quick_mode):
    """Shared factor statistics (built once) vs. a per-rank rebuild."""
    factor_a, factor_b = perf_factors
    n_ranks = 4 if quick_mode else 16

    shared_time, shared_outputs = _timed(
        lambda: distributed_generate(factor_a, factor_b, n_ranks, with_statistics=True),
        repeats=1 if quick_mode else 3,
    )

    partitions = partition_edges(factor_a.nnz, factor_b.nnz, n_ranks)

    def rebuild_per_rank():
        return [generate_rank_edges(factor_a, factor_b, part, with_statistics=True)
                for part in partitions]

    rebuild_time, rebuild_outputs = _timed(rebuild_per_rank,
                                           repeats=1 if quick_mode else 3)

    for shared, rebuilt in zip(shared_outputs, rebuild_outputs):
        assert np.array_equal(shared.edges, rebuilt.edges)
        assert np.array_equal(shared.edge_triangles, rebuilt.edge_triangles)
        assert np.array_equal(shared.source_vertex_triangles,
                              rebuilt.source_vertex_triangles)

    total_edges = sum(out.n_edges for out in shared_outputs)
    print_section("Perf — rank generation wall time (shared vs per-rank statistics)")
    print(f"  {n_ranks} ranks, {total_edges:,} product edges with full ground truth")
    print(f"  statistics built once:     {shared_time*1e3:8.1f} ms")
    print(f"  statistics rebuilt per rank: {rebuild_time*1e3:6.1f} ms")
    print(f"  saving: {rebuild_time / shared_time:,.2f}×")


def test_parallel_rank_execution(perf_factors, quick_mode):
    """Opt-in multiprocessing executor produces identical outputs to sequential."""
    factor_a, factor_b = perf_factors
    n_ranks = 2 if quick_mode else 8

    seq_time, seq_outputs = _timed(
        lambda: distributed_generate(factor_a, factor_b, n_ranks, with_statistics=True),
        repeats=1,
    )
    par_time, par_outputs = _timed(
        lambda: distributed_generate(factor_a, factor_b, n_ranks,
                                     with_statistics=True, use_processes=True),
        repeats=1,
    )

    for seq, par in zip(seq_outputs, par_outputs):
        assert seq.rank == par.rank
        assert np.array_equal(seq.edges, par.edges)
        assert np.array_equal(seq.edge_triangles, par.edge_triangles)

    print_section("Perf — sequential vs multiprocessing rank execution")
    print(f"  {n_ranks} ranks: sequential {seq_time*1e3:.1f} ms, "
          f"process pool {par_time*1e3:.1f} ms (includes pool spawn overhead)")
