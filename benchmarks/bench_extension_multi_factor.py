"""Extension — multi-factor products and clustering ground truth (DESIGN.md follow-ups).

Not a table in the paper, but the natural extensions its conclusion points at:
folding the formulas across more than two factors (the regime of the
large-scale generator the paper cites) and publishing clustering-coefficient
ground truth.  Both are validated against direct computation on a
materializable instance and timed at a larger, formula-only scale.
"""

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    MultiKroneckerGraph,
    kron_global_clustering,
    kron_local_clustering,
    multi_kron_triangle_count,
)
from repro.triangles import (
    global_clustering_coefficient,
    local_clustering_coefficients,
    total_triangles,
    vertex_triangles,
)
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def small_factors():
    return [
        generators.webgraph_like(20, edges_per_vertex=2, seed=1),
        generators.complete_graph(4),
        generators.triangle_constrained_pa(12, seed=2),
    ]


def test_multi_factor_statistics(benchmark, small_factors):
    product = MultiKroneckerGraph(small_factors)

    def run():
        return product.triangle_count(), product.degrees(), product.vertex_triangles()

    tau, degrees, triangles = benchmark(run)

    materialized = product.materialize()
    assert tau == total_triangles(materialized)
    assert np.array_equal(degrees, materialized.degrees())
    assert np.array_equal(triangles, vertex_triangles(materialized))
    print_section("Extension — 3-factor product statistics (validated against direct)")
    print(f"  factors {product.factor_sizes} -> {product.n_vertices:,} vertices, "
          f"{product.n_edges:,} edges, τ = {tau:,}")


def test_multi_factor_scaling(benchmark):
    """Five factors, ~10^8 product vertices — formula-only statistics stay cheap."""
    factors = [generators.webgraph_like(40, edges_per_vertex=2, seed=s) for s in range(5)]

    tau = benchmark(multi_kron_triangle_count, factors)

    n_vertices = 1
    for f in factors:
        n_vertices *= f.n_vertices
    assert tau > 0
    print_section("Extension — 5-factor product, formula-only global count")
    print(f"  product has {n_vertices:,} vertices; τ = {tau:,} computed from factor data only")


def test_clustering_ground_truth(benchmark, web_factor):
    small = generators.webgraph_like(60, seed=9)
    looped = generators.looped_clique(3)

    def run():
        return kron_local_clustering(small, looped), kron_global_clustering(small, looped)

    local, global_c = benchmark(run)

    materialized = KroneckerGraph(small, looped).materialize()
    assert np.allclose(local, local_clustering_coefficients(materialized))
    assert global_c == pytest.approx(global_clustering_coefficient(materialized))
    print_section("Extension — exact clustering coefficients from factor data")
    print(f"  product transitivity = {global_c:.5f}; "
          f"mean local clustering = {local.mean():.5f} (both match direct computation)")
    # Formula-only evaluation at a scale where materialization is impossible here:
    big_value = kron_global_clustering(web_factor, web_factor)
    print(f"  transitivity of the {web_factor.n_vertices ** 2:,}-vertex product "
          f"A ⊗ A (never materialized): {big_value:.5f}")
