"""E5 — Theorem 3: transferring the truss decomposition to the product.

Left factor: scale-free web-like graph.  Right factor: the paper's
triangle-constrained preferential-attachment generator (Δ_B ≤ 1).  The
benchmark times (i) the factored transfer and (ii) the direct peeling of the
materialized product, verifies they agree exactly, and reports the speedup —
the quantitative version of the paper's "known truss decomposition for free"
claim.
"""

import pytest

from repro import generators
from repro.core import KroneckerGraph, kron_truss_decomposition
from repro.truss import truss_decomposition
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def factors(small_web_factor, delta_le_one_factor):
    return small_web_factor, delta_le_one_factor


def test_thm3_transfer_from_factors(benchmark, factors):
    factor_a, factor_b = factors

    transferred = benchmark(kron_truss_decomposition, factor_a, factor_b)

    sizes = transferred.truss_sizes()
    assert sizes
    print_section("E5 / Theorem 3 — transferred truss decomposition (factor-side work only)")
    print(f"  A: {factor_a.n_vertices} vertices / {factor_a.n_edges} edges; "
          f"B: {factor_b.n_vertices} vertices / {factor_b.n_edges} edges "
          f"(max Δ_B = {generators.max_edge_triangle_participation(factor_b)})")
    product = KroneckerGraph(factor_a, factor_b)
    print(f"  product: {product.n_vertices:,} vertices, {product.n_edges:,} edges")
    for k, size in sorted(sizes.items()):
        print(f"  |T({k})_C| = {size:,}")


def test_thm3_direct_peeling_baseline(benchmark, factors):
    factor_a, factor_b = factors
    product = KroneckerGraph(factor_a, factor_b).materialize()

    direct = benchmark(truss_decomposition, product)

    transferred = kron_truss_decomposition(factor_a, factor_b)
    assert transferred.truss_sizes() == direct.truss_sizes()
    assert (transferred.trussness_matrix() != direct.trussness).nnz == 0
    print_section("E5 / Theorem 3 — direct peeling of the materialized product (baseline)")
    print(f"  direct and transferred decompositions agree on all "
          f"{direct.trussness.nnz // 2:,} edges")
    print("  (the transfer touches only factor-sized data; the baseline had to peel the "
          "full product — compare the two benchmark rows for the speedup)")
