"""E2 — Example 1(a)-(c): clique/looped-clique products with closed-form statistics.

For a sweep of factor sizes the benchmark evaluates the Kronecker formulas on
``K_nA ⊗ K_nB``, ``K_nA ⊗ J_nB`` and ``J_nA ⊗ J_nB`` and checks every value
against the closed forms printed in the paper's Example 1.
"""

from math import comb

import numpy as np
import pytest

from repro import generators
from repro.core import kron_degrees, kron_edge_triangles, kron_vertex_triangles
from benchmarks._report import print_section

SWEEP = [(8, 9), (12, 15), (20, 25)]


def _all_cases(n_a, n_b):
    return {
        "K⊗K": (generators.complete_graph(n_a), generators.complete_graph(n_b)),
        "K⊗J": (generators.complete_graph(n_a), generators.looped_clique(n_b)),
        "J⊗J": (generators.looped_clique(n_a), generators.looped_clique(n_b)),
    }


@pytest.mark.parametrize("n_a,n_b", SWEEP)
def test_ex1_vertex_formulas(benchmark, n_a, n_b):
    cases = _all_cases(n_a, n_b)

    def run():
        return {name: kron_vertex_triangles(a, b) for name, (a, b) in cases.items()}

    results = benchmark(run)
    n = n_a * n_b
    expected = {
        "K⊗K": (n + 1 - n_a - n_b) * (n + 4 - 2 * n_a - 2 * n_b) // 2,
        "K⊗J": (n - n_b) * (n - 2 * n_b) // 2,
        "J⊗J": comb(n - 1, 2),
    }
    print_section(f"E2 / Example 1 — vertex triangle participation (n_A={n_a}, n_B={n_b})")
    for name, values in results.items():
        assert set(values.tolist()) == {expected[name]}, name
        print(f"  {name}: every vertex participates in {expected[name]:,} triangles "
              f"(paper closed form reproduced)")


@pytest.mark.parametrize("n_a,n_b", SWEEP)
def test_ex1_edge_formulas(benchmark, n_a, n_b):
    cases = _all_cases(n_a, n_b)

    def run():
        return {name: kron_edge_triangles(a, b) for name, (a, b) in cases.items()}

    results = benchmark(run)
    n = n_a * n_b
    expected = {
        "K⊗K": n + 4 - 2 * n_a - 2 * n_b,
        "K⊗J": n - 2 * n_b,
        "J⊗J": n - 2,
    }
    print_section(f"E2 / Example 1 — edge triangle participation (n_A={n_a}, n_B={n_b})")
    for name, delta in results.items():
        off_diag_data = delta.data[np.asarray(delta.tocoo().row != delta.tocoo().col)]
        assert set(off_diag_data.tolist()) == {expected[name]}, name
        print(f"  {name}: every edge participates in {expected[name]:,} triangles")


@pytest.mark.parametrize("n_a,n_b", SWEEP)
def test_ex1_degree_formulas(benchmark, n_a, n_b):
    cases = _all_cases(n_a, n_b)

    def run():
        return {name: kron_degrees(a, b) for name, (a, b) in cases.items()}

    results = benchmark(run)
    n = n_a * n_b
    expected = {
        "K⊗K": n + 1 - n_a - n_b,
        "K⊗J": (n_a - 1) * n_b,
        "J⊗J": n - 1,
    }
    print_section(f"E2 / Example 1 — degrees (n_A={n_a}, n_B={n_b})")
    for name, degrees in results.items():
        assert set(degrees.tolist()) == {expected[name]}, name
        print(f"  {name}: every vertex has degree {expected[name]:,}")
