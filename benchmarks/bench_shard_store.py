"""Perf — out-of-core shard store: compaction, range queries, async spill.

Exercises the full ``repro.store`` pipeline on one factor pair:

1. stream the product to a per-block ``.npy`` spill
   (``distributed_generate(streaming=True, sink=...)``);
2. :func:`repro.store.compact_shards` the spill into source-sorted shards
   with a manifest v2 of per-shard vertex ranges;
3. serve ``degree`` / ``neighbors`` / ``egonet`` / ``edges_in_range`` queries
   from the :class:`repro.store.ShardStore` and assert every answer is
   identical to the materialized :class:`~repro.core.KroneckerGraph` — while
   counting that only the manifest-selected shards were decoded;
4. repeat the spill through the threaded :class:`repro.store.AsyncShardSink`
   and assert the compacted store is byte-for-byte the same.

Runs in two modes:

* **smoke** — swept into the tier-1 ``pytest`` run by
  ``benchmarks/conftest.py``: small sizes, store-vs-materialized equivalence
  asserted on every CI run;
* **full** — ``pytest -m slow benchmarks/bench_shard_store.py``: the
  Section VI-scale pair (~450k product edges) with measured compaction
  throughput, cold/warm query latency (the LRU serving the "heavy traffic"
  pattern), and sync-vs-async spill wall time.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.graphs.egonet import egonet
from repro.parallel import distributed_generate
from repro.store import AsyncShardSink, ShardStore, compact_shards
from benchmarks._report import emit_bench_json, print_section

N_RANKS = 8


def _spill(factor_a, factor_b, directory, *, sink_cls, n_ranks, block):
    product = KroneckerGraph(factor_a, factor_b)
    sink = sink_cls(directory, name=product.name, n_vertices=product.n_vertices)
    start = time.perf_counter()
    distributed_generate(factor_a, factor_b, n_ranks,
                         streaming=True, a_edges_per_block=block, sink=sink)
    return sink, time.perf_counter() - start


def _sorted_reference(product):
    edges = product.edges()
    return edges[np.lexsort((edges[:, 1], edges[:, 0]))]


def _assert_store_matches_product(store, product, *, n_probe=24, seed=0):
    """The acceptance bar: store answers identical to the materialized graph."""
    reference = _sorted_reference(product)
    assert np.array_equal(store.edges_in_range(0, product.n_vertices), reference)
    mid = product.n_vertices // 2
    ref_lo = reference[(reference[:, 0] >= 0) & (reference[:, 0] < mid)]
    assert np.array_equal(store.edges_in_range(0, mid), ref_lo)
    vs = np.arange(product.n_vertices)
    assert np.array_equal(store.degrees(vs), product.degrees())
    rng = np.random.default_rng(seed)
    for v in map(int, rng.choice(product.n_vertices, n_probe, replace=False)):
        assert np.array_equal(store.neighbors(v), product.neighbors(v))
        ego_store, ego_graph = store.egonet(v), egonet(product, v)
        assert np.array_equal(ego_store.vertices, ego_graph.vertices)
        assert (ego_store.graph.adjacency != ego_graph.graph.adjacency).nnz == 0
        assert ego_store.triangles_at_center() == ego_graph.triangles_at_center()


def _run_pipeline(factor_a, factor_b, tmp_path, *, n_ranks, block, target, label):
    product = KroneckerGraph(factor_a, factor_b)

    _, sync_time = _spill(factor_a, factor_b, tmp_path / "spill",
                          sink_cls=NpyShardSink, n_ranks=n_ranks, block=block)
    async_sink, async_time = _spill(factor_a, factor_b, tmp_path / "async-spill",
                                    sink_cls=AsyncShardSink,
                                    n_ranks=n_ranks, block=block)

    start = time.perf_counter()
    manifest = compact_shards(tmp_path / "spill", tmp_path / "store",
                              target_shard_edges=target)
    compact_time = time.perf_counter() - start
    async_manifest = compact_shards(tmp_path / "async-spill", tmp_path / "async-store",
                                    target_shard_edges=target)

    # The async and sync spills must compact to identical stores.
    assert async_manifest["shards"] == manifest["shards"]
    for shard in manifest["shards"]:
        assert np.array_equal(np.load(tmp_path / "store" / shard["file"]),
                              np.load(tmp_path / "async-store" / shard["file"]))

    store = ShardStore(tmp_path / "store", cache_shards=4)
    _assert_store_matches_product(store, product)

    # Selective decoding: a fresh store answers a vertex query from the one
    # or two shards its manifest range search selects, never a full scan.
    probe = ShardStore(tmp_path / "store", cache_shards=4)
    probe.degree(0)
    assert probe.shard_reads <= 2
    if probe.n_shards > 2:
        assert probe.shard_reads < probe.n_shards

    print_section(f"Perf — out-of-core shard store ({label})")
    print(f"  product: {product.nnz:,} directed edges over {n_ranks} ranks; "
          f"{len(manifest['shards'])} compacted shards of ≤ {target:,} edges")
    print(f"  spill:   sync {sync_time * 1e3:.1f} ms, async {async_time * 1e3:.1f} ms "
          f"(writer busy {async_sink.writer_busy_s * 1e3:.1f} ms, "
          f"back-pressure {async_sink.producer_wait_s * 1e3:.1f} ms)")
    print(f"  compact: {manifest['total_edges'] / compact_time:,.0f} edges/s "
          f"({compact_time * 1e3:.1f} ms)")
    return store, manifest, async_sink, (sync_time, async_time, compact_time)


def test_shard_store_smoke(tmp_path):
    """Tier-1 smoke: compacted-store queries equal the materialized product."""
    factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20, seed=13)
    store, manifest, _, _ = _run_pipeline(
        factor_a, factor_b, tmp_path, n_ranks=N_RANKS, block=8,
        target=1500, label="smoke")
    assert manifest["format_version"] == 2
    assert manifest["sorted_by"] == "source"
    # Vertex ranges tile the store in order.
    mins = [shard["src_min"] for shard in manifest["shards"]]
    maxs = [shard["src_max"] for shard in manifest["shards"]]
    assert mins == sorted(mins) and maxs == sorted(maxs)
    assert all(lo <= hi for lo, hi in zip(mins, maxs))


@pytest.mark.slow
def test_shard_store_throughput_full(tmp_path):
    """Full sizes: query throughput with a warm LRU and async spill overlap."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    product = KroneckerGraph(factor_a, factor_b)
    store, manifest, async_sink, times = _run_pipeline(
        factor_a, factor_b, tmp_path, n_ranks=N_RANKS, block=32,
        target=65_536, label="full")

    # Heavy-traffic pattern: repeated egonet queries with an LRU sized to the
    # working set (an egonet's subgraph gather touches sources across the
    # store, so the hot set here is every shard).
    store = ShardStore(tmp_path / "store", cache_shards=store.n_shards + 1)
    rng = np.random.default_rng(7)
    centres = rng.choice(product.n_vertices // 8, 64, replace=False)
    start = time.perf_counter()
    for v in map(int, centres):
        store.egonet(v)
    cold_time = time.perf_counter() - start
    reads_cold = store.shard_reads
    start = time.perf_counter()
    for v in map(int, centres):
        store.egonet(v)
    warm_time = time.perf_counter() - start
    assert store.shard_reads == reads_cold, \
        "warm-cache queries must not touch disk again"

    degrees = store.out_degrees(np.arange(product.n_vertices))
    assert int(degrees.sum()) == product.nnz
    stats = store.stats()
    # The zero-copy decode convention: a warm mmap store holds mappings,
    # not private row copies.
    assert stats["mmap"] and stats["resident_bytes"] == 0
    assert stats["mapped_bytes"] > 0
    print(f"  queries: 64 egonets cold {cold_time * 1e3:.1f} ms "
          f"({reads_cold} shard reads), warm {warm_time * 1e3:.1f} ms "
          f"({store.cache_hits} cache hits)")
    print(f"  cache residency: {stats['mapped_bytes'] / 1e6:.1f} MB mapped, "
          f"{stats['resident_bytes']} bytes copied (mmap decode)")
    print(f"  async/sync spill wall-time ratio: {times[1] / times[0]:.2f}×")
    # Correctness (byte-identical stores) is asserted above; the timing bound
    # only guards against pathological overhead, loose enough for noisy CI.
    assert times[1] <= times[0] * 10, \
        "async sink overhead blew past 10× the synchronous spill"

    emit_bench_json("shard_store", {
        "mode": "full",
        "product_edges": int(product.nnz),
        "n_shards": int(store.n_shards),
        "compact_edges_per_s": round(manifest["total_edges"] / times[2], 1),
        "spill_sync_s": round(times[0], 4),
        "spill_async_s": round(times[1], 4),
        "egonets_cold_ms": round(cold_time * 1e3, 2),
        "egonets_warm_ms": round(warm_time * 1e3, 2),
        "mapped_bytes_warm": int(stats["mapped_bytes"]),
        "resident_bytes_warm": int(stats["resident_bytes"]),
    })
