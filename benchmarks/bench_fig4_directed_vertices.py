"""E6 — Fig. 4 / Theorem 4: the fifteen directed triangle types at every product vertex.

Times the Kronecker evaluation of all fifteen per-vertex type counts for
``C = A ⊗ B`` (directed A, undirected B with self loops) and checks the
result against the direct census of the materialized product.
"""

import numpy as np
import pytest

from repro.core import KroneckerGraph, kron_directed_vertex_triangles
from repro.graphs import DirectedGraph
from repro.triangles import (
    CANONICAL_VERTEX_TYPES,
    directed_vertex_triangle_counts,
    total_directed_vertex_triangles,
    vertex_triangles,
)
from benchmarks._report import print_section


def test_fig4_kronecker_formula(benchmark, directed_factor, undirected_right_factor):
    formula = benchmark(kron_directed_vertex_triangles, directed_factor, undirected_right_factor)

    assert set(formula) == set(CANONICAL_VERTEX_TYPES)
    product = DirectedGraph(
        KroneckerGraph(directed_factor, undirected_right_factor).materialize_adjacency()
    )
    direct = directed_vertex_triangle_counts(product)
    print_section("E6 / Fig. 4 — directed vertex triangle census of C = A ⊗ B")
    print(f"  A: {directed_factor.n_vertices} vertices "
          f"({directed_factor.n_reciprocal_edges} reciprocal pairs, "
          f"{directed_factor.n_directed_edges} one-way arcs); "
          f"B: {undirected_right_factor.n_vertices} vertices")
    print(f"  {'type':>6} {'total (formula)':>16} {'total (direct)':>15}")
    for name in CANONICAL_VERTEX_TYPES:
        assert np.array_equal(formula[name], direct[name]), name
        print(f"  {name:>6} {int(formula[name].sum()):>16,} {int(direct[name].sum()):>15,}")
    coverage = total_directed_vertex_triangles(formula)
    undirected = vertex_triangles(product.undirected_version())
    assert np.array_equal(coverage, undirected)
    print("  coverage identity: Σ over the 15 types equals the undirected triangle "
          "participation of C_u at every vertex")


def test_fig4_direct_census_baseline(benchmark, directed_factor, undirected_right_factor):
    product = DirectedGraph(
        KroneckerGraph(directed_factor, undirected_right_factor).materialize_adjacency()
    )

    direct = benchmark(directed_vertex_triangle_counts, product)

    assert set(direct) == set(CANONICAL_VERTEX_TYPES)
    print_section("E6 / Fig. 4 — direct census on the materialized product (baseline)")
    print(f"  product has {product.n_vertices:,} vertices and {product.n_arcs:,} arcs; "
          "compare timing with the formula row above")
