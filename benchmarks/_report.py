"""Small reporting helpers shared by the benchmark modules.

Besides the console banner, full-mode benchmarks record their headline
numbers as machine-readable ``BENCH_<name>.json`` files at the repo root via
:func:`emit_bench_json` — throughput, problem sizes, and the git revision —
so the perf trajectory across PRs can be diffed without re-parsing console
logs.  Smoke (tier-1) runs never write them: CI timing is noise.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

#: Repo root — ``BENCH_*.json`` artifacts land here so every bench's record
#: is one predictable glob away.
_REPO_ROOT = Path(__file__).resolve().parent.parent


def print_section(title: str) -> None:
    """Uniform section banner for benchmark reports (visible with ``pytest -s``)."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _git_rev() -> str:
    """Short revision of the working tree, ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    *payload* carries the bench's own numbers (throughput, sizes); the
    helper stamps the bench name and the current git revision so a series
    of these files reads as a perf trajectory over commits.  Callers emit
    only in full (``-m slow``) mode — smoke timings are CI noise.
    """
    record = {"bench": str(name), "git_rev": _git_rev(), **payload}
    path = _REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
