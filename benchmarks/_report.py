"""Small reporting helpers shared by the benchmark modules."""

from __future__ import annotations


def print_section(title: str) -> None:
    """Uniform section banner for benchmark reports (visible with ``pytest -s``)."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
