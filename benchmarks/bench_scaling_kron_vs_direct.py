"""E11 — Section I complexity claim: formula-side counting is sub-linear in |E_C|.

Sweeps the factor size and times (a) the Kronecker-formula triangle count of
``A ⊗ A`` (work grows with the factor) against (b) direct triangle counting on
the materialized product (work grows with the product).  The paper's claim is
the asymptotic gap — O(|E_C|^{3/4}) worst case, often O(τ(A)+τ(B)) — and the
expected *shape* is that the direct cost grows roughly quadratically faster,
so the ratio widens as the factor grows.
"""

import time

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph, kron_triangle_count
from repro.triangles import total_triangles
from benchmarks._report import print_section

FACTOR_SIZES = [60, 120, 240]


@pytest.fixture(scope="module")
def factors():
    return {n: generators.webgraph_like(n, seed=31) for n in FACTOR_SIZES}


@pytest.mark.parametrize("n", FACTOR_SIZES)
def test_formula_count_scaling(benchmark, factors, n):
    factor = factors[n]
    tau = benchmark(kron_triangle_count, factor, factor)
    assert tau == 6 * total_triangles(factor) ** 2
    product = KroneckerGraph(factor, factor)
    print_section(f"E11 — Kronecker-formula count, factor n={n}")
    print(f"  product: {product.n_vertices:,} vertices, {product.nnz:,} entries, "
          f"τ(C) = {tau:,} (computed from the factor only)")


@pytest.mark.parametrize("n", FACTOR_SIZES)
def test_direct_count_scaling(benchmark, factors, n):
    factor = factors[n]
    product = KroneckerGraph(factor, factor).materialize()

    tau = benchmark(total_triangles, product)

    assert tau == kron_triangle_count(factor, factor)
    print_section(f"E11 — direct count on the materialized product, factor n={n}")
    print(f"  product: {product.n_vertices:,} vertices, {product.n_edges:,} edges, τ = {tau:,}")


def test_crossover_summary(benchmark):
    """One-shot timing sweep (outside pytest-benchmark's repetition) summarising
    the widening gap; asserts the formula path wins by a growing factor."""

    def sweep():
        rows = []
        for n in FACTOR_SIZES:
            factor = generators.webgraph_like(n, seed=31)
            start = time.perf_counter()
            tau_formula = kron_triangle_count(factor, factor)
            formula_time = time.perf_counter() - start
            product = KroneckerGraph(factor, factor).materialize()
            start = time.perf_counter()
            tau_direct = total_triangles(product)
            direct_time = time.perf_counter() - start
            assert tau_formula == tau_direct
            rows.append((n, product.n_edges, formula_time, direct_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_section("E11 — formula vs direct triangle counting (one pass)")
    print(f"  {'factor n':>9} {'|E_C|':>12} {'formula (s)':>12} {'direct (s)':>12} {'speedup':>9}")
    speedups = []
    for n, edges, formula_time, direct_time in rows:
        speedup = direct_time / max(formula_time, 1e-9)
        speedups.append(speedup)
        print(f"  {n:>9} {edges:>12,} {formula_time:>12.4f} {direct_time:>12.4f} {speedup:>8.1f}x")
    # Shape check: the advantage grows with the product size.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 3.0
