"""E4 — Example 2 / Fig. 3: truss structure of the hub-cycle Kronecker square.

Reproduces the exact numbers of Example 2: the 5-vertex hub-cycle factor
(8 edges, 4 triangles), its Kronecker square with 25 vertices, 128 edges and
96 triangles, the per-edge participation histogram {1: 32, 2: 64, 4: 32}, and
the truss decomposition with 128 edges in the 3-truss, 80 in the 4-truss and
none in the 5-truss.
"""

import collections

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph, kron_edge_triangles, kron_triangle_count
from repro.truss import truss_decomposition
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def hub_cycle():
    return generators.hub_cycle_graph()


def test_ex2_product_statistics(benchmark, hub_cycle):
    def run():
        product = KroneckerGraph(hub_cycle, hub_cycle)
        return product.n_vertices, product.n_edges, kron_triangle_count(hub_cycle, hub_cycle)

    n_vertices, n_edges, triangles = benchmark(run)
    assert (n_vertices, n_edges, triangles) == (25, 128, 96)
    print_section("E4 / Example 2 — hub-cycle ⊗ hub-cycle global statistics")
    print(f"  vertices={n_vertices}  edges={n_edges}  triangles={triangles} "
          f"(paper: 25 / 128 / 96)")


def test_ex2_edge_participation_histogram(benchmark, hub_cycle):
    delta = benchmark(kron_edge_triangles, hub_cycle, hub_cycle)

    counts = collections.Counter(delta.data.tolist())
    undirected = {value: count // 2 for value, count in counts.items()}
    assert undirected == {1: 32, 2: 64, 4: 32}
    print_section("E4 / Example 2 — per-edge triangle participation classes")
    print(f"  {undirected[1]} cycle-cycle edges in 1 triangle, "
          f"{undirected[2]} hub-cycle/cycle-hub edges in 2, "
          f"{undirected[4]} hub-hub edges in 4 (paper: 32 / 64 / 32)")


def test_ex2_truss_decomposition(benchmark, hub_cycle):
    product = KroneckerGraph(hub_cycle, hub_cycle).materialize()

    decomp = benchmark(truss_decomposition, product)

    sizes = decomp.truss_sizes()
    assert sizes == {3: 128, 4: 80}
    assert decomp.max_truss == 4
    print_section("E4 / Example 2 — truss decomposition of the product")
    print(f"  |T(3)| = {sizes[3]}  |T(4)| = {sizes[4]}  |T(5)| = 0 (paper: 128 / 80 / 0)")
    print("  (neither factor has a 4-truss — a simple Kronecker transfer would miss it, "
          "motivating the Δ_B ≤ 1 hypothesis of Theorem 3)")


def test_ex2_factor_truss(benchmark, hub_cycle):
    decomp = benchmark(truss_decomposition, hub_cycle)
    assert decomp.truss_sizes() == {3: 8}
    assert decomp.max_truss == 3
    print_section("E4 / Example 2 — factor truss decomposition")
    print("  all 8 factor edges lie in the 3-truss and none in the 4-truss (paper agrees)")
