"""E8 — Fig. 6 / Theorems 6-7: labeled triangle censuses at product vertices and edges."""

import numpy as np
import pytest

from repro.core import (
    KroneckerGraph,
    kron_inherited_labels,
    kron_labeled_edge_triangles,
    kron_labeled_vertex_triangles,
)
from repro.graphs import VertexLabeledGraph, vertex_triangle_label_types
from repro.triangles import (
    labeled_edge_triangle_counts,
    labeled_vertex_triangle_counts,
)
from benchmarks._report import print_section

COLOURS = {0: "r", 1: "g", 2: "b"}


def _materialize(labeled_factor, right_factor):
    product = KroneckerGraph(labeled_factor, right_factor)
    return VertexLabeledGraph(
        product.materialize_adjacency(),
        kron_inherited_labels(labeled_factor, right_factor),
        n_labels=labeled_factor.n_labels,
        validate=False,
    )


def test_fig6_vertex_formula(benchmark, labeled_factor, undirected_right_factor):
    formula = benchmark(kron_labeled_vertex_triangles, labeled_factor, undirected_right_factor)

    assert set(formula) == set(vertex_triangle_label_types(labeled_factor.n_labels))
    direct = labeled_vertex_triangle_counts(_materialize(labeled_factor, undirected_right_factor))
    print_section("E8 / Fig. 6 — labeled vertex triangle census of C = A ⊗ B (|L| = 3)")
    print(f"  {'type':>8} {'total (formula)':>16} {'total (direct)':>15}")
    for (q1, q2, q3), values in sorted(formula.items()):
        assert np.array_equal(values, direct[(q1, q2, q3)])
        name = f"{COLOURS[q1].upper()}{COLOURS[q2]}{COLOURS[q3]}"
        print(f"  {name:>8} {int(values.sum()):>16,} {int(direct[(q1, q2, q3)].sum()):>15,}")


def test_fig6_edge_formula(benchmark, labeled_factor, undirected_right_factor):
    formula = benchmark(kron_labeled_edge_triangles, labeled_factor, undirected_right_factor)

    direct = labeled_edge_triangle_counts(_materialize(labeled_factor, undirected_right_factor))
    mismatches = [t for t in formula if (formula[t] != direct[t]).nnz != 0]
    assert not mismatches
    totals = {t: int(m.sum()) for t, m in formula.items() if m.nnz}
    print_section("E8 / Fig. 6 — labeled edge triangle census of C = A ⊗ B")
    print(f"  {len(formula)} (q1, q2, q3) types evaluated; "
          f"{len(totals)} are non-empty; all match the direct census exactly")


def test_fig6_direct_vertex_census_baseline(benchmark, labeled_factor, undirected_right_factor):
    product = _materialize(labeled_factor, undirected_right_factor)

    direct = benchmark(labeled_vertex_triangle_counts, product)

    assert len(direct) == len(vertex_triangle_label_types(labeled_factor.n_labels))
    print_section("E8 / Fig. 6 — direct labeled census on the materialized product (baseline)")
    print(f"  product has {product.n_vertices:,} vertices; compare timing with the formula row")
