"""E9 — Section VI table: factor and product statistics via Kronecker formulas only.

The paper's table lists vertices / edges / triangles for A, B = A + I,
A ⊗ A and A ⊗ B, with the trillion-scale product rows computed from the
factors alone in ~10 seconds on a laptop.  Our factor is the synthetic
web-NotreDame stand-in (see DESIGN.md), so absolute numbers differ, but the
structural identities of the table are asserted:

* |V(A⊗A)| = |V(A)|²  and  |E(A⊗A)| = 2 |E(A)|²,
* τ(A⊗A) = 6 τ(A)²,
* B = A + I adds |V| edges and no triangles,
* τ(A⊗B) > τ(A⊗A)  (self loops boost triangles).
"""

import pytest

from repro.analysis import format_table, graph_summary, kronecker_summary
from benchmarks._report import print_section


def test_table1_rows_from_formulas(benchmark, web_factor, web_factor_loops):
    def build_table():
        return [
            graph_summary(web_factor, name="A"),
            graph_summary(web_factor_loops, name="B = A + I"),
            kronecker_summary(web_factor, web_factor, name="A ⊗ A"),
            kronecker_summary(web_factor, web_factor_loops, name="A ⊗ B"),
        ]

    rows = benchmark(build_table)

    a_row, b_row, aa_row, ab_row = rows
    assert b_row.n_edges == a_row.n_edges + a_row.n_vertices
    assert b_row.n_triangles == a_row.n_triangles
    assert aa_row.n_vertices == a_row.n_vertices ** 2
    assert aa_row.n_edges == 2 * a_row.n_edges ** 2
    assert aa_row.n_triangles == 6 * a_row.n_triangles ** 2
    assert ab_row.n_vertices == aa_row.n_vertices
    assert ab_row.n_edges > aa_row.n_edges
    assert ab_row.n_triangles > aa_row.n_triangles

    print_section("E9 / Section VI — summary table (synthetic web-NotreDame stand-in)")
    print(format_table(rows))
    print()
    print("paper (web-NotreDame, for reference):")
    print("  A      325.7K  1.1M   4.3M")
    print("  B=A+I  325.7K  1.4M   4.3M")
    print("  A ⊗ A  106.1B  2.38T  111.4T")
    print("  A ⊗ B  106.1B  2.73T  141.0T")
    print("shape checks: |E(A⊗A)| = 2|E(A)|², τ(A⊗A) = 6τ(A)², τ(A⊗B) > τ(A⊗A) — all hold")


def test_table1_full_scale_factor_cost(benchmark):
    """How the factor-side cost grows: build the table for a 4× larger stand-in.

    The product described would have ~10¹⁰ edges; the timed work remains
    factor-sized (this is the paper's '10.5 seconds on a commodity laptop'
    observation, scaled to our pure-Python substrate).
    """
    from repro import generators

    factor = generators.web_notredame_substitute(scale=0.04, seed=7)
    factor_b = factor.with_self_loops()

    def build_table():
        return [
            kronecker_summary(factor, factor, name="A ⊗ A"),
            kronecker_summary(factor, factor_b, name="A ⊗ B"),
        ]

    rows = benchmark(build_table)
    print_section("E9 — larger stand-in (factor-side cost only)")
    print(f"  factor: {factor.n_vertices:,} vertices, {factor.n_edges:,} edges")
    print(format_table(rows))
    assert rows[0].n_vertices == factor.n_vertices ** 2
