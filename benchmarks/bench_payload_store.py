"""Perf — payload-carrying shard store: exact ground truth served from disk.

The acceptance bar of the payload pipeline: a product streamed to disk with
``payload_columns=("triangles", "trussness")``, compacted, and served by
:class:`repro.store.ShardStore` must hand back per-edge values **exactly
equal** (same dtype, same values) to
:meth:`repro.core.KroneckerTriangleStats.edge_values` and
:meth:`~repro.core.truss_formulas.KroneckerTrussDecomposition.edge_trussness_batch`
recomputed from the factors — the spilled store is a full stand-in for the
materialized product, topology *and* ground truth.

Also asserted on every run:

* payload compaction is **byte-idempotent**: re-compacting the payload store
  reproduces every shard file byte-for-byte;
* payload compaction stays bounded-memory (exercised with a merge chunk far
  smaller than the edge count);
* point lookups (``edge_payloads``) agree with the row-sliced range queries.

Runs in two modes:

* **smoke** — swept into the tier-1 ``pytest`` run by
  ``benchmarks/conftest.py``: small sizes, equality asserted on every CI run;
* **full** — ``pytest -m slow benchmarks/bench_payload_store.py``: the
  Section VI-scale pair with measured payload-spill overhead vs. a
  topology-only spill and warm/cold payload query throughput.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import generators
from repro.core import (
    KroneckerGraph,
    KroneckerTriangleStats,
    kron_truss_decomposition,
)
from repro.graphs import NpyShardSink
from repro.parallel import distributed_generate
from repro.store import ShardStore, compact_shards
from benchmarks._report import print_section

N_RANKS = 6
PAYLOAD = ("triangles", "trussness")


def _spill(factor_a, factor_b, directory, *, block, payload_columns=()):
    product = KroneckerGraph(factor_a, factor_b)
    sink = NpyShardSink(directory, name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=payload_columns)
    start = time.perf_counter()
    distributed_generate(factor_a, factor_b, N_RANKS,
                         streaming=True, a_edges_per_block=block, sink=sink,
                         payload_columns=payload_columns)
    return time.perf_counter() - start


def _assert_payloads_exact(store, factor_a, factor_b):
    """Served payloads must equal the closed forms recomputed from factors."""
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    truss = kron_truss_decomposition(factor_a, factor_b)
    rows = store.edges_in_range(0, store.n_vertices, with_payload=True)
    assert rows.dtype == np.int64
    expected_triangles = stats.edge_values(rows[:, 0], rows[:, 1])
    expected_trussness = truss.edge_trussness_batch(rows[:, 0], rows[:, 1])
    assert rows[:, 2].dtype == expected_triangles.dtype
    assert np.array_equal(rows[:, 2], expected_triangles)
    assert rows[:, 3].dtype == expected_trussness.dtype
    assert np.array_equal(rows[:, 3], expected_trussness)
    # Point lookups agree with the range rows.
    probe = rows[:: max(1, rows.shape[0] // 64)]
    assert np.array_equal(store.edge_payloads(probe[:, 0], probe[:, 1]),
                          probe[:, 2:])
    return rows


def _run_pipeline(factor_a, factor_b, tmp_path, *, block, target, chunk, label):
    product = KroneckerGraph(factor_a, factor_b)
    plain_time = _spill(factor_a, factor_b, tmp_path / "plain-spill", block=block)
    payload_time = _spill(factor_a, factor_b, tmp_path / "spill",
                          block=block, payload_columns=PAYLOAD)

    start = time.perf_counter()
    manifest = compact_shards(tmp_path / "spill", tmp_path / "store",
                              target_shard_edges=target,
                              merge_chunk_edges=chunk)
    compact_time = time.perf_counter() - start
    assert manifest["payload_columns"] == ["src", "dst", *PAYLOAD]

    store = ShardStore(tmp_path / "store", cache_shards=4)
    assert store.payload_columns == PAYLOAD
    rows = _assert_payloads_exact(store, factor_a, factor_b)

    # Payload rows are permutation-identical to the topology: the (src, dst)
    # columns match the topology-only compaction of the plain spill exactly.
    compact_shards(tmp_path / "plain-spill", tmp_path / "plain-store",
                   target_shard_edges=target, merge_chunk_edges=chunk)
    plain = ShardStore(tmp_path / "plain-store", cache_shards=4)
    assert np.array_equal(rows[:, :2],
                          plain.edges_in_range(0, plain.n_vertices))

    # Byte-idempotent recompaction of a payload store.
    again = compact_shards(tmp_path / "store", tmp_path / "again",
                           target_shard_edges=target, merge_chunk_edges=chunk)
    assert again["shards"] == manifest["shards"]
    for shard in manifest["shards"]:
        assert ((tmp_path / "store" / shard["file"]).read_bytes()
                == (tmp_path / "again" / shard["file"]).read_bytes())

    print_section(f"Perf — payload-carrying shard store ({label})")
    print(f"  product: {product.nnz:,} directed edges over {N_RANKS} ranks; "
          f"{len(manifest['shards'])} shards of ≤ {target:,} payload rows")
    print(f"  spill:   topology-only {plain_time * 1e3:.1f} ms, "
          f"with {len(PAYLOAD)} payload columns {payload_time * 1e3:.1f} ms "
          f"({payload_time / max(plain_time, 1e-9):.2f}×)")
    print(f"  compact: {manifest['total_edges'] / compact_time:,.0f} rows/s "
          f"({compact_time * 1e3:.1f} ms, merge chunk {chunk:,})")
    return store, manifest


def test_payload_store_smoke(tmp_path):
    """Tier-1 smoke: served payloads exactly equal the recomputed formulas."""
    factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20, seed=13)
    store, manifest = _run_pipeline(factor_a, factor_b, tmp_path,
                                    block=8, target=1500, chunk=256,
                                    label="smoke")
    assert manifest["format_version"] == 2
    # The egonet/subgraph payload variants serve the induced ground truth.
    ego, rows = store.egonet(store.n_vertices // 2, with_payload=True)
    assert rows.shape[1] == 2 + len(PAYLOAD)
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    assert np.array_equal(rows[:, 2], stats.edge_values(rows[:, 0], rows[:, 1]))


@pytest.mark.slow
def test_payload_store_throughput_full(tmp_path):
    """Full sizes: payload spill overhead and payload query throughput."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    product = KroneckerGraph(factor_a, factor_b)
    store, _ = _run_pipeline(factor_a, factor_b, tmp_path,
                             block=32, target=65_536, chunk=16_384,
                             label="full")

    store = ShardStore(tmp_path / "store", cache_shards=store.n_shards + 1)
    rows = store.edges_in_range(0, store.n_vertices, with_payload=True)
    rng = np.random.default_rng(7)
    picks = rng.choice(rows.shape[0], 200_000)
    start = time.perf_counter()
    served = store.edge_payloads(rows[picks, 0], rows[picks, 1])
    lookup_time = time.perf_counter() - start
    assert np.array_equal(served, rows[picks, 2:])
    print(f"  queries: {picks.size / lookup_time:,.0f} warm payload "
          f"lookups/s ({lookup_time * 1e3:.1f} ms for {picks.size:,})")
    assert int(rows[:, 2].sum()) == int(
        KroneckerTriangleStats.from_factors(factor_a, factor_b)
        .edge_matrix().sum())
    assert product.nnz == rows.shape[0]
