"""Ablation — materialized vs. implicit (streamed) product construction (DESIGN.md §5).

Quantifies the trade-off behind the library's central design decision: the
implicit :class:`KroneckerGraph` answers local queries and streams edges in
bounded memory, whereas materializing via ``scipy.sparse.kron`` pays product-
sized time and memory but then amortizes repeated global queries.  The
benchmark times edge enumeration through both paths and per-vertex degree
queries through both paths.
"""

import numpy as np
import pytest

from repro.core import KroneckerGraph
from repro.parallel import stream_edge_count
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def product(small_web_factor, delta_le_one_factor):
    return KroneckerGraph(small_web_factor, delta_le_one_factor)


def test_materialize_product(benchmark, product):
    adjacency = benchmark(product.materialize_adjacency)
    assert adjacency.nnz == product.nnz
    print_section("Ablation — materialize C with scipy.sparse.kron")
    print(f"  {adjacency.shape[0]:,} vertices, {adjacency.nnz:,} stored entries, "
          f"≈{adjacency.data.nbytes + adjacency.indices.nbytes + adjacency.indptr.nbytes:,} bytes")


def test_stream_edges_implicit(benchmark, product):
    count = benchmark(stream_edge_count, product, a_edges_per_block=512)
    assert count == product.nnz
    print_section("Ablation — stream C's edges from the implicit product")
    print(f"  {count:,} edges enumerated in blocks of 512 A-entries "
          f"(peak memory bounded by the block, not by |E_C|)")


def test_degree_queries_implicit(benchmark, product):
    rng = np.random.default_rng(0)
    queries = rng.integers(0, product.n_vertices, size=2000)

    def run():
        return [product.degree(int(p)) for p in queries]

    degrees = benchmark(run)
    assert len(degrees) == queries.size
    print_section("Ablation — 2000 point degree queries on the implicit product")
    print("  each query touches two factor CSR rows; no product-sized state exists")


def test_degree_queries_materialized(benchmark, product):
    adjacency = product.materialize_adjacency()
    rng = np.random.default_rng(0)
    queries = rng.integers(0, product.n_vertices, size=2000)

    def run():
        return [int(adjacency.indptr[p + 1] - adjacency.indptr[p]) for p in queries]

    degrees = benchmark(run)
    assert len(degrees) == queries.size
    print_section("Ablation — 2000 point degree queries on the materialized product")
    print("  faster per query, but only after paying the materialization cost above")
