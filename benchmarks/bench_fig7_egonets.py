"""E10 — Fig. 7: egonets of probe vertices in A ⊗ A and A ⊗ B match the formulas.

Selects three degree-3 factor vertices with 1, 2 and 3 triangles (as in the
paper), maps them to the nine corresponding product vertices of ``A ⊗ A`` and
``A ⊗ B``, extracts each egonet from the *implicit* product, and verifies the
centre's degree and triangle count against Theorem 1 / Corollary 1.  The
timed portion is the egonet extraction + direct counting (the validation work
an auditor would run); the formula side is microseconds.
"""

import numpy as np
import pytest

from repro.core import KroneckerGraph, KroneckerTriangleStats, kron_degree_at
from repro.graphs import egonet
from repro.triangles import vertex_triangles
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def probes(web_factor):
    degrees = web_factor.degrees()
    triangles = vertex_triangles(web_factor)
    picks = {}
    for wanted in (1, 2, 3):
        candidates = np.flatnonzero((degrees == 3) & (triangles == wanted))
        if candidates.size:
            picks[wanted] = int(candidates[0])
    assert picks, "stand-in factor must contain degree-3 probe vertices"
    return picks


@pytest.mark.parametrize("right", ["A", "B"])
def test_fig7_egonet_validation(benchmark, web_factor, web_factor_loops, probes, right):
    factor_b = web_factor if right == "A" else web_factor_loops
    product = KroneckerGraph(web_factor, factor_b)
    stats = KroneckerTriangleStats.from_factors(web_factor, factor_b)
    n_b = factor_b.n_vertices
    probe_products = [
        (tri_i, tri_k, i * n_b + k)
        for tri_i, i in probes.items()
        for tri_k, k in probes.items()
    ]

    def extract_all():
        return [
            (p, egonet(product, p).degree_of_center(), egonet(product, p).triangles_at_center())
            for _, _, p in probe_products
        ]

    results = benchmark(extract_all)

    title = "A ⊗ A" if right == "A" else "A ⊗ B"
    print_section(f"E10 / Fig. 7 — egonets of the 9 probe vertices in {title}")
    expected_degree = 9 if right == "A" else 12
    for (tri_i, tri_k, p), (p2, degree, triangles) in zip(probe_products, results):
        formula_t = int(stats.vertex_value(p))
        formula_d = int(kron_degree_at(web_factor, factor_b, p))
        assert degree == formula_d == expected_degree
        assert triangles == formula_t
        print(f"  p={p:>10} (from factor triangles {tri_i}×{tri_k}): "
              f"degree={degree:>2}, triangles ego={triangles:>3} formula={formula_t:>3}")
    print(f"  all degrees equal {expected_degree} "
          f"({'3·3' if right == 'A' else '3·(3+1)'}), matching the paper's Fig. 7")
