"""E12 — Remark 1: stochastic Kronecker graphs are triangle-poor; non-stochastic are tunable.

Compares, at matched vertex count, the per-edge triangle density and global
clustering of (a) the non-stochastic Kronecker product of a web-like factor
with itself, (b) a stochastic Kronecker sample (independent Bernoulli edges
from the Kronecker-power probability matrix) and (c) an R-MAT sample.  The
paper's qualitative claim (after Seshadhri et al.) is that the independent-edge
stochastic model closes very few triangles, while the non-stochastic product
has abundant triangles and can be tuned further by adding self loops to a
factor.
"""

import numpy as np
import pytest

from repro import generators
from repro.core import kron_triangle_count
from repro.triangles import global_clustering_coefficient, total_triangles
from benchmarks._report import print_section

FACTOR_N = 64  # product has 4096 vertices, matching 2^12 stochastic samples


@pytest.fixture(scope="module")
def web_factor_small():
    return generators.webgraph_like(FACTOR_N, seed=3)


def test_rem1_nonstochastic_product(benchmark, web_factor_small):
    tau = benchmark(kron_triangle_count, web_factor_small, web_factor_small)
    edges = (web_factor_small.nnz ** 2) // 2
    assert tau > 0
    print_section("E12 / Remark 1 — non-stochastic Kronecker product")
    print(f"  {FACTOR_N ** 2:,} vertices, {edges:,} edges, τ = {tau:,}, "
          f"triangles/edge = {tau / edges:.3f}")


def test_rem1_stochastic_kronecker(benchmark, web_factor_small):
    skg = benchmark(generators.stochastic_kronecker_graph, k=12, seed=5)
    tau_skg = total_triangles(skg)
    density_skg = tau_skg / max(1, skg.n_edges)

    tau_ns = kron_triangle_count(web_factor_small, web_factor_small)
    density_ns = tau_ns / ((web_factor_small.nnz ** 2) // 2)
    print_section("E12 / Remark 1 — stochastic Kronecker sample (independent edges)")
    print(f"  {skg.n_vertices:,} vertices, {skg.n_edges:,} edges, τ = {tau_skg:,}, "
          f"triangles/edge = {density_skg:.4f}")
    print(f"  non-stochastic product for comparison: triangles/edge = {density_ns:.3f} "
          f"({density_ns / max(density_skg, 1e-9):.0f}× denser)")
    assert density_ns > 10 * density_skg


def test_rem1_rmat_reference(benchmark):
    rmat = benchmark(generators.rmat_graph, 12, 8, seed=6)
    tau = total_triangles(rmat)
    clustering = global_clustering_coefficient(rmat)
    print_section("E12 / Remark 1 — R-MAT reference sample")
    print(f"  {rmat.n_vertices:,} vertices, {rmat.n_edges:,} edges, τ = {tau:,}, "
          f"transitivity = {clustering:.4f}")
    print("  (R-MAT's duplicate-collapsed hub core does close triangles at this tiny scale; "
          "the independent-edge SKG above is the model Remark 1 targets)")


def test_rem1_tunability_with_self_loops(benchmark, web_factor_small):
    looped = web_factor_small.with_self_loops()

    def both():
        return (kron_triangle_count(web_factor_small, web_factor_small),
                kron_triangle_count(web_factor_small, looped))

    plain, boosted = benchmark(both)
    assert boosted > plain
    print_section("E12 / Remark 1 — tuning triangle counts with self loops")
    print(f"  τ(A ⊗ A)       = {plain:,}")
    print(f"  τ(A ⊗ (A + I)) = {boosted:,}  ({boosted / plain:.2f}× more)")
