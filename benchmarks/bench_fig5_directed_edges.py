"""E7 — Fig. 5 / Theorem 5: the fifteen directed triangle types at every product edge."""

import pytest

from repro.core import KroneckerGraph, kron_directed_edge_triangles
from repro.graphs import DirectedGraph
from repro.triangles import CANONICAL_EDGE_TYPES, directed_edge_triangle_counts
from benchmarks._report import print_section


def test_fig5_kronecker_formula(benchmark, directed_factor, undirected_right_factor):
    formula = benchmark(kron_directed_edge_triangles, directed_factor, undirected_right_factor)

    assert set(formula) == set(CANONICAL_EDGE_TYPES)
    product = DirectedGraph(
        KroneckerGraph(directed_factor, undirected_right_factor).materialize_adjacency()
    )
    direct = directed_edge_triangle_counts(product)
    print_section("E7 / Fig. 5 — directed edge triangle census of C = A ⊗ B")
    print(f"  {'type':>6} {'total (formula)':>16} {'total (direct)':>15}")
    for name in CANONICAL_EDGE_TYPES:
        assert (formula[name] != direct[name]).nnz == 0, name
        print(f"  {name:>6} {int(formula[name].sum()):>16,} {int(direct[name].sum()):>15,}")


def test_fig5_direct_census_baseline(benchmark, directed_factor, undirected_right_factor):
    product = DirectedGraph(
        KroneckerGraph(directed_factor, undirected_right_factor).materialize_adjacency()
    )

    direct = benchmark(directed_edge_triangle_counts, product)

    assert set(direct) == set(CANONICAL_EDGE_TYPES)
    print_section("E7 / Fig. 5 — direct census on the materialized product (baseline)")
    print(f"  product has {product.n_arcs:,} arcs; compare timing with the formula row above")
