"""Perf — the asyncio edge-query service over a compacted shard store.

The serving acceptance bar (PR 5): stand a :class:`repro.serve`
server on an ephemeral localhost port over ONE concurrent-safe
:class:`~repro.store.ShardStore`, hammer it from many client threads, and
assert that **every query type served over the socket returns results
exactly equal — values and, for payloads, dtype — to the in-process store
answer**: ``degree`` / ``degrees`` / ``neighbors`` (± payload) /
``edges_in_range`` (± payload) / ``egonet`` (± payload) / ``subgraph``
(± payload) / ``edge_payloads``.  After the run the shared store's
``stats()`` must show ``cache_hits > 0`` — the LRU is one per worker, not
one per connection.

Runs in two modes:

* **smoke** — swept into the tier-1 ``pytest`` run by
  ``benchmarks/conftest.py``: small sizes, the full equality matrix under
  8 concurrent clients on every CI run, requests/s reported;
* **full** — ``pytest -m slow benchmarks/bench_query_server.py``: the
  Section VI-scale pair with a client-concurrency throughput sweep
  (1 → 16 threads) over the scalar-coalescing hot path, the mixed-query
  workload, and the protocol-v2 binary-vs-JSON bulk range-scan sweep
  (acceptance bar: binary ≥ 5× JSON rows/s, byte-equal answers).  Full
  runs record their headline numbers as ``BENCH_*.json`` at the repo root.

PR 7 adds the fleet tier: the smoke stands a range-routed fleet
(:class:`~tests._fleet_harness.FleetHarness`: partition → 3 slice workers →
:class:`~repro.serve.RangeRouter`) behind the *same* full equality matrix —
routed answers byte-equal to the single store under ≥ 8 concurrent
clients — and the full run sweeps 1 → 4 workers over the mixed workload,
recording ``BENCH_query_router.json``.

PR 8 adds the observability bar: warmups are routed through the new
``reset_stats`` op (so reported counters cover only the timed window), and
a tier-1 smoke asserts the tracing instrumentation costs ≤ 5% on the
scalar degree path — a traced pass vs. a trace-disabled pass, best-of-N
interleaved.

PR 10 extends that bar to the continuous sampling profiler: a tier-1
smoke arms the profiler over the wire (the ``profile`` op, toggled
outside the timed windows) and asserts the armed scalar path costs ≤ 5%
vs. unarmed, position-paired per round; the full run records the headline
numbers as ``BENCH_profiler_overhead.json``.
"""

from __future__ import annotations

import gc
import socket
import threading
import time

import numpy as np
import pytest

from repro import generators
from repro.core import KroneckerGraph
from repro.graphs import NpyShardSink
from repro.obs import TraceRecorder, trace
from repro.parallel import distributed_generate
from repro.serve import QueryClient, ThreadedServer, protocol
from repro.store import ShardStore, compact_shards
from benchmarks._report import emit_bench_json, print_section

N_RANKS = 6
N_CLIENTS = 8
PAYLOAD = ("triangles", "trussness")


def _build_store(factor_a, factor_b, tmp_path, *, block, target):
    product = KroneckerGraph(factor_a, factor_b)
    sink = NpyShardSink(tmp_path / "spill", name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=PAYLOAD)
    distributed_generate(factor_a, factor_b, N_RANKS,
                         streaming=True, a_edges_per_block=block, sink=sink,
                         payload_columns=PAYLOAD)
    compact_shards(tmp_path / "spill", tmp_path / "store",
                   target_shard_edges=target)
    return tmp_path / "store", product


def _assert_every_query_type_equal(client: QueryClient,
                                   reference: ShardStore,
                                   vertices, selection) -> int:
    """One client's pass over the full query surface; returns requests sent."""
    requests = 0
    n = reference.n_vertices
    for v in map(int, vertices):
        assert client.degree(v) == reference.degree(v)
        served_neighbors = client.neighbors(v)
        local_neighbors = reference.neighbors(v)
        assert served_neighbors.dtype == local_neighbors.dtype == np.int64
        assert np.array_equal(served_neighbors, local_neighbors)
        requests += 2

    batch = np.asarray(vertices, dtype=np.int64)
    served_degrees = client.degrees(batch)
    assert served_degrees.dtype == np.int64
    assert np.array_equal(served_degrees, reference.degrees(batch))
    requests += 1

    for with_payload in (False, True):
        served_rows = client.edges_in_range(n // 4, n // 2,
                                            with_payload=with_payload)
        local_rows = reference.edges_in_range(n // 4, n // 2,
                                              with_payload=with_payload)
        assert served_rows.dtype == local_rows.dtype == np.int64
        assert np.array_equal(served_rows, local_rows)
        # The v2 binary bulk plane must return the identical array —
        # values, dtype, shape — from raw bytes instead of JSON lists.
        binary_rows = client.edges_in_range(n // 4, n // 2,
                                            with_payload=with_payload,
                                            binary=True)
        assert binary_rows.dtype == local_rows.dtype == np.int64
        assert np.array_equal(binary_rows, local_rows)
        requests += 2

    centre = int(vertices[0])
    served_ego, served_ego_rows = client.egonet(centre, with_payload=True)
    local_ego, local_ego_rows = reference.egonet(centre, with_payload=True)
    assert np.array_equal(served_ego.vertices, local_ego.vertices)
    assert (served_ego.graph.adjacency != local_ego.graph.adjacency).nnz == 0
    assert served_ego.triangles_at_center() == local_ego.triangles_at_center()
    assert served_ego_rows.dtype == local_ego_rows.dtype == np.int64
    assert np.array_equal(served_ego_rows, local_ego_rows)
    requests += 1

    served_sub, served_sub_rows = client.subgraph(selection, with_payload=True)
    local_sub, local_sub_rows = reference.subgraph(selection, with_payload=True)
    assert (served_sub.adjacency != local_sub.adjacency).nnz == 0
    assert np.array_equal(served_sub_rows, local_sub_rows)
    requests += 1

    probe = local_rows[:: max(1, local_rows.shape[0] // 16)]
    served_payloads = client.edge_payloads(probe[:, 0], probe[:, 1])
    local_payloads = reference.edge_payloads(probe[:, 0], probe[:, 1])
    assert served_payloads.dtype == local_payloads.dtype == np.int64
    assert np.array_equal(served_payloads, local_payloads)
    requests += 1
    return requests


def _concurrent_equivalence(server, reference, *, n_clients, rounds, seed):
    """`n_clients` threads × `rounds` full-surface passes; returns
    (total requests, wall seconds, failures)."""
    rng = np.random.default_rng(seed)
    n = reference.n_vertices
    failures = []
    counts = [0] * n_clients
    barrier = threading.Barrier(n_clients + 1)
    # Draw every worker's inputs here, single-threaded: numpy Generators are
    # not thread-safe, and the run must be reproducible from the seed.
    inputs = [(rng.choice(n, 6, replace=False),
               [int(v) for v in rng.choice(n, 10, replace=False)])
              for _ in range(n_clients)]

    def worker(index):
        vertices, selection = inputs[index]
        try:
            with QueryClient(server.host, server.port) as client:
                barrier.wait(timeout=60)
                for _ in range(rounds):
                    counts[index] += _assert_every_query_type_equal(
                        client, reference, vertices, selection)
        except Exception as exc:
            failures.append((index, exc))

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    # Workers block on the barrier until everyone's connection is up, so the
    # timed window measures concurrent serving, not connection setup.
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    return sum(counts), elapsed, failures


def test_query_server_smoke(tmp_path, quick_mode):
    """Tier-1: every query type byte-equal over the socket, ≥ 8 concurrent
    clients, one shared store LRU (cache hits > 0)."""
    factor_a = generators.webgraph_like(60 if quick_mode else 320,
                                        edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20 if quick_mode else 90,
                                                  seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=8 if quick_mode else 32,
                                      target=1500 if quick_mode else 65_536)
    reference = ShardStore(store_dir, cache_shards=8)

    with ThreadedServer(store_dir, cache_shards=8) as server:
        served_store = server.server.store
        requests, elapsed, failures = _concurrent_equivalence(
            server, reference, n_clients=N_CLIENTS,
            rounds=1 if quick_mode else 3, seed=7)
        assert not failures, failures[:3]

        # The acceptance criterion: one ShardStore served every connection
        # and its LRU was shared across them.
        stats = served_store.stats()
        assert stats["cache_hits"] > 0
        assert stats["cached_shards"] <= 8

        server_stats = server.server.stats()["server"]
        assert server_stats["errors"] == 0
        assert server_stats["connections_total"] >= N_CLIENTS
        assert sum(server_stats["requests"].values()) >= requests
        assert server_stats["binary"]["frames"] >= 2 * N_CLIENTS

        # A v1-JSON request must still round-trip unchanged: same single
        # JSON frame, identical body to a v2 JSON-plane request.
        n = reference.n_vertices
        wire_args = {"lo": n // 4, "hi": n // 2, "with_payload": False}
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as raw:
            protocol.write_frame(
                raw, {"v": 1, "op": "edges_in_range", "args": wire_args})
            v1_response = protocol.read_frame(raw)
            protocol.write_frame(
                raw, {"v": 2, "op": "edges_in_range", "args": wire_args})
            v2_response = protocol.read_frame(raw)
        assert v1_response is not None and v1_response["ok"]
        assert v1_response == v2_response

    print_section("Perf — asyncio query server "
                  f"({'smoke' if quick_mode else 'full'})")
    print(f"  product: {product.nnz:,} directed edges; "
          f"{reference.n_shards} shards served to {N_CLIENTS} "
          "concurrent clients")
    print(f"  equivalence: {requests:,} mixed requests, every answer "
          f"byte-equal to the in-process store "
          f"({requests / elapsed:,.0f} requests/s)")
    print(f"  shared LRU: {stats['shard_reads']} shard reads, "
          f"{stats['cache_hits']} cache hits across all connections")
    print(f"  coalescing: degree {server_stats['coalesced']['degree']}, "
          f"neighbors {server_stats['coalesced']['neighbors']}")


def test_query_router_smoke(tmp_path, quick_mode):
    """Tier-1: the range-routed fleet answers the full query surface
    byte-equal to the single store, ≥ 8 concurrent clients."""
    from _fleet_harness import FleetHarness

    factor_a = generators.webgraph_like(60 if quick_mode else 320,
                                        edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20 if quick_mode else 90,
                                                  seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=8 if quick_mode else 32,
                                      target=600 if quick_mode else 65_536)
    reference = ShardStore(store_dir, cache_shards=8)

    with FleetHarness(store_dir, n_slices=3) as harness:
        requests, elapsed, failures = _concurrent_equivalence(
            harness, reference, n_clients=N_CLIENTS,
            rounds=1 if quick_mode else 3, seed=7)
        assert not failures, failures[:3]

        # The fleet rollup reports the *parent* store's shard count (slices
        # overlap on boundary shards) and real worker traffic.
        stats = harness.router.server.stats()
        assert stats["fleet"]["workers"] == 3
        assert all(report["ok"] for report in stats["workers"])
        assert stats["store"]["n_shards"] == reference.n_shards
        assert stats["store"]["shard_reads"] >= 1

    print_section("Perf — range-routed fleet "
                  f"({'smoke' if quick_mode else 'full'})")
    print(f"  product: {product.nnz:,} directed edges; "
          f"{reference.n_shards} shards split over 3 slice workers, "
          f"{N_CLIENTS} concurrent clients")
    print(f"  equivalence: {requests:,} routed requests, every answer "
          f"byte-equal to the single store "
          f"({requests / elapsed:,.0f} requests/s)")


def _scalar_pass(client: QueryClient, vertices, expected,
                 latencies_ns: list) -> None:
    """One serial pass of scalar ``degree`` requests, appending each
    request's round-trip time (ns) to *latencies_ns*."""
    for v, d in zip(vertices, expected):
        start = time.perf_counter_ns()
        answer = client.degree(int(v))
        latencies_ns.append(time.perf_counter_ns() - start)
        assert answer == int(d)


def test_instrumentation_overhead_smoke(tmp_path, quick_mode):
    """Tier-1: the PR 8 instrumentation (registry counters + trace spans)
    costs ≤ 5% on the scalar degree hot path.

    Every vertex is queried twice back to back — once trace-disabled,
    once under an active trace (per-request client span, wire-propagated
    trace id, server-side span recording) — and the *median of the paired
    per-request deltas* is compared against the budget.  Pairing, not
    pass totals: the instrumentation is a uniform microsecond-scale shift
    per request, while anything aggregated over seconds is dominated by
    scheduler-noise tails and second-scale machine drift that would drown
    it.  The pair order alternates so warm-second-request bias cancels.

    The budget check is best-of-3: client, event loop, and decode
    executor ping-pong context switches on however few cores CI grants,
    so any single wall measurement carries tens of µs of scheduling
    noise that only ever *inflates* the delta.  The deterministic
    instrumentation cost is the minimum over repeated measurements
    (the same reasoning behind min-based perf CI comparisons); a real
    regression — say a per-span ``os.urandom`` call or an extra
    contextvar switch sneaking back in — shifts every attempt and still
    fails.
    """
    factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20, seed=13)
    store_dir, _ = _build_store(factor_a, factor_b, tmp_path,
                                block=8, target=1500)
    reference = ShardStore(store_dir, cache_shards=8)
    rng = np.random.default_rng(17)
    vertices = rng.choice(reference.n_vertices, 100 if quick_mode else 200)
    expected = reference.degrees(vertices)
    rounds = 8 if quick_mode else 10

    with ThreadedServer(store_dir, cache_shards=8) as server:
        with QueryClient(server.host, server.port) as client:
            # Warm the server LRU and both code paths, then route the warmup
            # through the PR 8 reset op: the registry afterwards reports only
            # the timed window below, not the warmup traffic.
            _scalar_pass(client, vertices, expected, [])
            with trace.start_trace("warmup", TraceRecorder()):
                _scalar_pass(client, vertices, expected, [])
            assert client.reset_stats() == {"query": "reset_stats",
                                            "reset": True}

            # GC pauses are benchmark noise, not instrumentation cost:
            # collect up front, then sample both modes with the collector
            # off.  ``activate`` (one trace per round, entered around just
            # the traced half of each pair, outside the timed window)
            # keeps the recorder on its fast path while letting the two
            # modes alternate request by request.
            def measure() -> tuple:
                """One attempt: (plain median µs, paired-delta median µs)."""
                deltas_ns = []
                plain_ns = []
                pcn = time.perf_counter_ns
                gc.collect()
                gc.disable()
                try:
                    for round_index in range(rounds):
                        adopt = trace.activate(TraceRecorder(),
                                               trace.new_trace_id())
                        for i, (v, d) in enumerate(zip(vertices, expected)):
                            v, d = int(v), int(d)
                            if (round_index + i) % 2 == 0:
                                t0 = pcn()
                                a_plain = client.degree(v)
                                t1 = pcn()
                                with adopt:
                                    t2 = pcn()
                                    a_traced = client.degree(v)
                                    t3 = pcn()
                            else:
                                with adopt:
                                    t2 = pcn()
                                    a_traced = client.degree(v)
                                    t3 = pcn()
                                t0 = pcn()
                                a_plain = client.degree(v)
                                t1 = pcn()
                            assert a_plain == d and a_traced == d
                            plain_ns.append(t1 - t0)
                            deltas_ns.append((t3 - t2) - (t1 - t0))
                finally:
                    gc.enable()
                return (float(np.median(plain_ns)) / 1e3,
                        float(np.median(deltas_ns)) / 1e3)

            # The absolute epsilon (10 µs) is the observed scheduling-noise
            # floor of paired measurements on a busy one-core container.
            attempts = []
            for _ in range(3):
                plain_us, delta_us = measure()
                attempts.append((plain_us, delta_us))
                if delta_us <= plain_us * 0.05 + 10.0:
                    break

        # reset_stats wiped the two warmup passes: the degree counter
        # covers exactly the timed attempts, two passes each.
        requests = server.server.stats()["server"]["requests"]
        assert requests.get("degree", 0) == (
            2 * rounds * len(vertices) * len(attempts))

    plain_us, delta_us = attempts[-1]
    overhead = delta_us / plain_us
    pairs = rounds * len(vertices)
    assert delta_us <= plain_us * 0.05 + 10.0, (
        f"tracing adds {delta_us:+.0f} µs to the {plain_us:.0f} µs median "
        f"scalar round trip ({overhead * 100:+.1f}%; best of "
        f"{len(attempts)} attempts × {pairs} request pairs: "
        + ", ".join(f"{d:+.0f} µs" for _, d in attempts)
        + "); the instrumentation budget is 5%")

    print_section("Perf — instrumentation overhead (smoke)")
    print(f"  scalar degree path, {pairs} traced/untraced request pairs "
          f"per attempt, {len(attempts)} attempt(s):")
    print(f"  trace-disabled: {plain_us:>6.0f} µs median round trip")
    print(f"  tracing delta:  {delta_us:>+6.1f} µs median paired delta "
          f"({overhead * 100:+.1f}%; budget 5% + 10 µs noise floor = "
          f"{plain_us * 0.05 + 10.0:.0f} µs)")


def _profiler_overhead_attempt(client: QueryClient, vertices, expected,
                               *, rounds: int, hz: float) -> tuple:
    """One attempt: (plain median µs, paired-delta median µs).

    Each round runs one unarmed and one profiler-armed serial pass over
    the *same* vertices — the profiler toggled through the wire
    ``profile`` op strictly outside the timed windows — and pairs the
    two passes position by position (same vertex, same LRU state).  The
    pass order alternates per round so warm-second-pass bias and
    second-scale machine drift cancel in the deltas.
    """
    plain_ns: list = []
    armed_ns: list = []
    gc.collect()
    gc.disable()
    try:
        for round_index in range(rounds):
            order = (("plain", "armed") if round_index % 2 == 0
                     else ("armed", "plain"))
            for mode in order:
                sink: list = []
                if mode == "armed":
                    client.profile("start", hz=hz)
                _scalar_pass(client, vertices, expected, sink)
                if mode == "armed":
                    client.profile("stop")
                (armed_ns if mode == "armed" else plain_ns).extend(sink)
    finally:
        gc.enable()
    deltas = np.asarray(armed_ns, dtype=np.int64) - \
        np.asarray(plain_ns, dtype=np.int64)
    return (float(np.median(plain_ns)) / 1e3,
            float(np.median(deltas)) / 1e3)


def _run_profiler_overhead(client: QueryClient, vertices, expected,
                           *, rounds: int, hz: float) -> list:
    """Warm both modes, zero the aggregates, then measure best-of-3.

    Returns the attempt list of (plain µs, delta µs); same best-of
    reasoning as the tracing gate above — scheduling noise only ever
    inflates a paired delta, so the deterministic cost is the minimum
    over repeated attempts.
    """
    _scalar_pass(client, vertices, expected, [])
    client.profile("start", hz=hz)
    _scalar_pass(client, vertices, expected, [])
    client.profile("stop")
    client.profile("reset")
    client.reset_stats()

    attempts = []
    for _ in range(3):
        plain_us, delta_us = _profiler_overhead_attempt(
            client, vertices, expected, rounds=rounds, hz=hz)
        attempts.append((plain_us, delta_us))
        if delta_us <= plain_us * 0.05 + 10.0:
            break
    return attempts


def _assert_profiler_budget(attempts: list, hz: float) -> None:
    plain_us, delta_us = attempts[-1]
    assert delta_us <= plain_us * 0.05 + 10.0, (
        f"the armed profiler ({hz:g} Hz) adds {delta_us:+.0f} µs to the "
        f"{plain_us:.0f} µs median scalar round trip "
        f"({delta_us / plain_us * 100:+.1f}%; best of {len(attempts)} "
        "attempts: "
        + ", ".join(f"{d:+.0f} µs" for _, d in attempts)
        + "); the profiler budget is 5%")


def test_profiler_overhead_smoke(tmp_path, quick_mode):
    """Tier-1: the PR 10 sampling profiler, armed at its default rate,
    costs ≤ 5% on the scalar degree hot path.

    Unlike the tracing gate the profiler is a server-wide toggle, not a
    per-request mode — so the pairing is pass-against-pass per round
    (position-matched vertices), not request-against-request.
    """
    factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20, seed=13)
    store_dir, _ = _build_store(factor_a, factor_b, tmp_path,
                                block=8, target=1500)
    reference = ShardStore(store_dir, cache_shards=8)
    rng = np.random.default_rng(17)
    vertices = rng.choice(reference.n_vertices, 100 if quick_mode else 200)
    expected = reference.degrees(vertices)
    rounds = 8 if quick_mode else 10
    hz = 67.0  # the profiler's default operating rate

    with ThreadedServer(store_dir, cache_shards=8) as server:
        with QueryClient(server.host, server.port) as client:
            attempts = _run_profiler_overhead(
                client, vertices, expected, rounds=rounds, hz=hz)
            # The armed halves really sampled: the aggregate the attempts
            # left behind is non-empty and frozen (profiler disarmed).
            answer = client.profile()
            assert answer["running"] is False
            assert answer["profile"]["samples"] >= 1
        assert server.server.stats()["server"]["errors"] == 0

    _assert_profiler_budget(attempts, hz)
    plain_us, delta_us = attempts[-1]
    print_section("Perf — sampling profiler overhead (smoke)")
    print(f"  scalar degree path, {rounds} armed/unarmed pass pairs "
          f"× {len(vertices)} vertices, {len(attempts)} attempt(s):")
    print(f"  unarmed:       {plain_us:>6.0f} µs median round trip")
    print(f"  armed @ {hz:g} Hz: {delta_us:>+6.1f} µs median paired delta "
          f"({delta_us / plain_us * 100:+.1f}%; budget 5% + 10 µs noise "
          f"floor = {plain_us * 0.05 + 10.0:.0f} µs)")


@pytest.mark.slow
def test_profiler_overhead_full(tmp_path):
    """Full sizes: the profiler-armed scalar path at the default and a 4×
    rate, headline numbers recorded as ``BENCH_profiler_overhead.json``."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=32, target=65_536)
    reference = ShardStore(store_dir, cache_shards=16)
    rng = np.random.default_rng(17)
    vertices = rng.choice(reference.n_vertices, 512)
    expected = reference.degrees(vertices)
    rounds = 10

    print_section("Perf — sampling profiler overhead (full)")
    print(f"  product: {product.nnz:,} directed edges, "
          f"{reference.n_shards} shards; {rounds} pass pairs × "
          f"{len(vertices)} vertices per attempt")
    sweep = []
    with ThreadedServer(store_dir, cache_shards=16,
                        decode_threads=8) as server:
        with QueryClient(server.host, server.port) as client:
            for hz in (67.0, 268.0):
                attempts = _run_profiler_overhead(
                    client, vertices, expected, rounds=rounds, hz=hz)
                _assert_profiler_budget(attempts, hz)
                plain_us, delta_us = attempts[-1]
                samples = client.profile()["profile"]["samples"]
                assert samples >= 1
                sweep.append({"hz": hz,
                              "plain_us": round(plain_us, 2),
                              "delta_us": round(delta_us, 2),
                              "overhead_pct": round(
                                  delta_us / plain_us * 100, 2),
                              "samples": int(samples),
                              "attempts": len(attempts)})
                print(f"  armed @ {hz:>5g} Hz: {delta_us:>+6.1f} µs on a "
                      f"{plain_us:.0f} µs round trip "
                      f"({delta_us / plain_us * 100:+.1f}%, "
                      f"{samples} samples)")
        assert server.server.stats()["server"]["errors"] == 0

    emit_bench_json("profiler_overhead", {
        "mode": "full",
        "product_edges": int(product.nnz),
        "n_shards": int(reference.n_shards),
        "pairs_per_attempt": rounds * len(vertices),
        "budget_pct": 5.0,
        "sweep": sweep,
    })


@pytest.mark.slow
def test_query_router_scaling_full(tmp_path):
    """Full sizes: the mixed workload against fleets of 1 → 4 slice
    workers, routed answers byte-equal throughout."""
    from _fleet_harness import FleetHarness

    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=32, target=65_536)
    reference = ShardStore(store_dir, cache_shards=16)

    print_section("Perf — range-routed fleet (1 → 4 worker sweep)")
    print(f"  product: {product.nnz:,} directed edges, "
          f"{reference.n_shards} shards")
    sweep = []
    for n_workers in (1, 2, 3, 4):
        with FleetHarness(store_dir, n_slices=n_workers,
                          cache_shards=16, decode_threads=8,
                          timeout=60.0) as harness:
            requests, elapsed, failures = _concurrent_equivalence(
                harness, reference, n_clients=8, rounds=2,
                seed=29 + n_workers)
            assert not failures, failures[:3]
            rollup = harness.fleet.stats()
            assert rollup["workers"] == n_workers
            assert rollup["n_shards"] == reference.n_shards
        rate = requests / elapsed
        sweep.append({"workers": n_workers, "requests": requests,
                      "seconds": round(elapsed, 3),
                      "requests_per_s": round(rate, 1)})
        print(f"  {n_workers:>2} workers: {rate:>8,.0f} mixed requests/s "
              f"({requests:,} in {elapsed * 1e3:.0f} ms), "
              "every answer byte-equal")

    emit_bench_json("query_router", {
        "mode": "full",
        "product_edges": int(product.nnz),
        "n_shards": int(reference.n_shards),
        "n_clients": 8,
        "sweep": sweep,
    })


@pytest.mark.slow
def test_query_server_throughput_full(tmp_path):
    """Full sizes: client-concurrency sweep over the scalar hot path."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=32, target=65_536)
    reference = ShardStore(store_dir, cache_shards=16)
    n = reference.n_vertices
    rng = np.random.default_rng(11)
    hot_vertices = rng.choice(n // 4, 2048)
    expected_degrees = reference.degrees(hot_vertices)

    print_section("Perf — asyncio query server (concurrency sweep)")
    print(f"  product: {product.nnz:,} directed edges, "
          f"{reference.n_shards} shards")
    with ThreadedServer(store_dir, cache_shards=16,
                        decode_threads=8) as server:
        # Warm the LRU, then zero the counters through the reset op so the
        # coalescing numbers printed below cover only the sweep itself.
        with QueryClient(server.host, server.port) as warm:
            for v in hot_vertices[:64]:
                warm.degree(int(v))
            warm.reset_stats()
        for n_clients in (1, 2, 4, 8, 16):
            per_client = 2048 // n_clients
            failures = []
            barrier = threading.Barrier(n_clients + 1)

            def worker(index):
                lo = index * per_client
                chunk = hot_vertices[lo:lo + per_client]
                expected = expected_degrees[lo:lo + per_client]
                try:
                    with QueryClient(server.host, server.port) as client:
                        barrier.wait(timeout=60)
                        for v, d in zip(chunk, expected):
                            assert client.degree(int(v)) == int(d)
                except Exception as exc:
                    failures.append((index, exc))

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n_clients)]
            for thread in threads:
                thread.start()
            barrier.wait(timeout=60)
            start = time.perf_counter()
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - start
            assert not failures, failures[:3]
            total = per_client * n_clients
            print(f"  {n_clients:>3} clients: {total / elapsed:>8,.0f} "
                  f"scalar degree requests/s ({total:,} in "
                  f"{elapsed * 1e3:.0f} ms)")
        coalesced = server.server.stats()["server"]["coalesced"]["degree"]
        print(f"  coalescing over the sweep: {coalesced['requests']:,} "
              f"requests in {coalesced['batches']:,} batches "
              f"(max batch {coalesced['max_batch']})")

        # Mixed workload at 8 clients for the headline number.
        requests, elapsed, failures = _concurrent_equivalence(
            server, reference, n_clients=8, rounds=2, seed=29)
        assert not failures, failures[:3]
        print(f"  mixed workload: {requests / elapsed:,.0f} requests/s "
              f"over 8 clients, every answer byte-equal")
        assert server.server.stats()["store"]["cache_hits"] > 0

    emit_bench_json("query_server_scalar", {
        "mode": "full",
        "product_edges": int(product.nnz),
        "n_shards": int(reference.n_shards),
        "mixed_requests_per_s": round(requests / elapsed, 1),
        "coalesced_degree_batches": int(coalesced["batches"]),
        "coalesced_degree_requests": int(coalesced["requests"]),
    })


@pytest.mark.slow
def test_binary_plane_throughput_full(tmp_path):
    """Full sizes: warm ``edges_in_range`` over the v2 binary plane must be
    ≥ 5× the JSON plane in rows/s, byte-equal to the in-process answer, and
    copy-free on the warm server store."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    store_dir, product = _build_store(factor_a, factor_b, tmp_path,
                                      block=32, target=65_536)
    reference = ShardStore(store_dir, cache_shards=16)
    n = reference.n_vertices
    lo, hi = n // 4, n // 2
    expected = reference.edges_in_range(lo, hi, with_payload=True)

    with ThreadedServer(store_dir, cache_shards=16,
                        decode_threads=8) as server:
        with QueryClient(server.host, server.port) as client:
            # Warm both planes once, asserting byte equality on the way.
            json_rows = client.edges_in_range(lo, hi, with_payload=True)
            binary_rows = client.edges_in_range(lo, hi, with_payload=True,
                                                binary=True)
            assert json_rows.dtype == binary_rows.dtype == expected.dtype
            assert np.array_equal(json_rows, expected)
            assert np.array_equal(binary_rows, expected)

            served_store = server.server.store
            warm_stats = served_store.stats()
            assert warm_stats["mmap"] and warm_stats["resident_bytes"] == 0

            def rows_per_s(repeats: int, **kwargs) -> float:
                start = time.perf_counter()
                total = 0
                for _ in range(repeats):
                    total += client.edges_in_range(lo, hi, **kwargs).shape[0]
                return total / (time.perf_counter() - start)

            json_rate = rows_per_s(3, with_payload=True)
            binary_rate = rows_per_s(12, with_payload=True, binary=True)

            # Warm bulk scans must not decode (or privately copy) shards:
            # the cache counters are flat across the whole timed sweep.
            after_stats = served_store.stats()
            assert after_stats["shard_reads"] == warm_stats["shard_reads"]
            assert after_stats["resident_bytes"] == 0
            assert after_stats["mapped_bytes"] == warm_stats["mapped_bytes"]

    speedup = binary_rate / json_rate
    mb_per_s = binary_rate * expected.shape[1] * 8 / 1e6
    print_section("Perf — binary bulk plane vs JSON plane (full)")
    print(f"  range [{lo}, {hi}): {expected.shape[0]:,} rows × "
          f"{expected.shape[1]} cols ({expected.nbytes / 1e6:.1f} MB)")
    print(f"  JSON plane:   {json_rate:>12,.0f} rows/s")
    print(f"  binary plane: {binary_rate:>12,.0f} rows/s "
          f"({mb_per_s:,.0f} MB/s)")
    print(f"  speedup: {speedup:.1f}×")
    assert speedup >= 5.0, (
        f"binary plane is only {speedup:.1f}× the JSON plane; "
        "the acceptance bar is 5×")

    emit_bench_json("query_server_binary", {
        "mode": "full",
        "product_edges": int(product.nnz),
        "n_shards": int(reference.n_shards),
        "range_rows": int(expected.shape[0]),
        "range_bytes": int(expected.nbytes),
        "json_rows_per_s": round(json_rate, 1),
        "binary_rows_per_s": round(binary_rate, 1),
        "binary_mb_per_s": round(mb_per_s, 1),
        "binary_speedup": round(speedup, 2),
    })
