"""Shared fixtures for the reproduction benchmarks.

Each benchmark module corresponds to one experiment id (E1-E14) from
DESIGN.md; the fixtures here build the factor graphs once per session so that
the timed portions measure only the operation under study.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generators


@pytest.fixture(scope="session")
def web_factor():
    """The Section VI web-NotreDame stand-in (about 3.3k vertices at 1% scale)."""
    return generators.web_notredame_substitute(scale=0.01, seed=7)


@pytest.fixture(scope="session")
def web_factor_loops(web_factor):
    """B = A + I."""
    return web_factor.with_self_loops()


@pytest.fixture(scope="session")
def small_web_factor():
    """A smaller web-like factor whose Kronecker square is still materializable."""
    return generators.webgraph_like(220, edges_per_vertex=3, triad_probability=0.65, seed=9)


@pytest.fixture(scope="session")
def delta_le_one_factor():
    """Right factor satisfying the Theorem 3 hypothesis."""
    return generators.triangle_constrained_pa(60, seed=13)


@pytest.fixture(scope="session")
def directed_factor():
    return generators.random_directed_graph(80, p_directed=0.05, p_reciprocal=0.04, seed=17)


@pytest.fixture(scope="session")
def labeled_factor():
    return generators.random_labeled_graph(70, 0.07, 3, seed=19, label_weights=[0.5, 0.3, 0.2])


@pytest.fixture(scope="session")
def undirected_right_factor():
    """Small undirected right factor (with self loops) for the directed/labeled products."""
    return generators.erdos_renyi(10, 0.4, seed=23, self_loops=True)

