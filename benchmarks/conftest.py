"""Shared fixtures for the reproduction benchmarks.

Each benchmark module corresponds to one experiment id (E1-E14) from
DESIGN.md; the fixtures here build the factor graphs once per session so that
the timed portions measure only the operation under study.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro import generators

# tests/_fleet_harness.py (partition → slice workers → router, with fault
# injection) is shared between tests/test_router.py and the fleet smoke in
# bench_query_server.py; the tests directory is not a package, so running
# `pytest benchmarks/...` directly needs it on sys.path explicitly.
_TESTS_DIR = str(Path(__file__).resolve().parent.parent / "tests")
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

#: Benchmark modules that double as tier-1 consistency smoke tests: the
#: plain ``pytest`` invocation does not match ``bench_*.py`` files, so we
#: collect these explicitly — in smoke mode — to guarantee the vectorized,
#: scalar, streamed, materialized and shard-store paths cannot silently
#: diverge.  Their
#: full-size runs opt out of tier-1 through the ``slow`` marker registered
#: in ``pytest.ini`` (run them with ``pytest -m slow benchmarks/<file>``)
#: or, for ``bench_perf_kernels.py``, by naming the file directly.
_SMOKE_BENCHES = ("bench_perf_kernels.py", "bench_streaming.py",
                  "bench_shard_store.py", "bench_payload_store.py",
                  "bench_query_server.py")


def pytest_collect_file(file_path, parent):
    """Collect the smoke benchmarks even under the default ``test_*`` glob.

    Skipped when the file was named directly on the command line — pytest's
    builtin collector already picks up explicit arguments, and returning a
    second ``Module`` here would run every benchmark twice.
    """
    if file_path.name in _SMOKE_BENCHES and not parent.session.isinitpath(file_path):
        return pytest.Module.from_parent(parent, path=file_path)
    return None


@pytest.fixture(scope="session")
def quick_mode(request) -> bool:
    """Whether the perf benchmark should run in smoke mode.

    Smoke mode is on when ``--quick`` was passed, *or* when the benchmark was
    swept up implicitly (tier-1 ``pytest`` with no explicit benchmark path on
    the command line).  Running ``pytest benchmarks/bench_perf_kernels.py``
    directly gets the full problem sizes and the ≥50× speedup assertion.
    """
    config = request.config
    if config.getoption("--quick"):
        return True

    def names_bench_file(arg: str) -> bool:
        # Positional path argument (optionally with a ::nodeid suffix) whose
        # file name is a smoke-benchmark module.  config.args holds only
        # pytest's resolved positional arguments, so flag values (-k,
        # --deselect, --ignore ...) that merely mention the name cannot flip
        # full mode on.
        from pathlib import Path
        return Path(arg.split("::", 1)[0]).name in _SMOKE_BENCHES

    return not any(names_bench_file(str(a)) for a in config.args)


@pytest.fixture(scope="session")
def web_factor():
    """The Section VI web-NotreDame stand-in (about 3.3k vertices at 1% scale)."""
    return generators.web_notredame_substitute(scale=0.01, seed=7)


@pytest.fixture(scope="session")
def web_factor_loops(web_factor):
    """B = A + I."""
    return web_factor.with_self_loops()


@pytest.fixture(scope="session")
def small_web_factor():
    """A smaller web-like factor whose Kronecker square is still materializable."""
    return generators.webgraph_like(220, edges_per_vertex=3, triad_probability=0.65, seed=9)


@pytest.fixture(scope="session")
def delta_le_one_factor():
    """Right factor satisfying the Theorem 3 hypothesis."""
    return generators.triangle_constrained_pa(60, seed=13)


@pytest.fixture(scope="session")
def directed_factor():
    return generators.random_directed_graph(80, p_directed=0.05, p_reciprocal=0.04, seed=17)


@pytest.fixture(scope="session")
def labeled_factor():
    return generators.random_labeled_graph(70, 0.07, 3, seed=19, label_weights=[0.5, 0.3, 0.2])


@pytest.fixture(scope="session")
def undirected_right_factor():
    """Small undirected right factor (with self loops) for the directed/labeled products."""
    return generators.erdos_renyi(10, 0.4, seed=23, self_loops=True)

