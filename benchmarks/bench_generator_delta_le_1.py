"""E13 — Section III.D generators: scale-free factors with Δ ≤ 1 per edge.

Benchmarks both strategies for producing a right factor that satisfies the
Theorem 3 hypothesis — the preferential-attachment generator (strategy b) and
the edge-deletion reduction of an arbitrary graph (strategy a) — and checks
the post-conditions: every edge participates in at most one triangle, the
graph is connected, the degree distribution is right-skewed, and triangles
still exist (so the transferred truss decomposition is non-trivial).
"""

import numpy as np
import pytest

from repro import generators
from repro.analysis import heavy_tail_summary
from repro.triangles import total_triangles
from benchmarks._report import print_section


@pytest.mark.parametrize("n", [200, 800])
def test_strategy_b_triangle_constrained_pa(benchmark, n):
    graph = benchmark(generators.triangle_constrained_pa, n, seed=71)

    assert graph.n_vertices == n
    assert generators.max_edge_triangle_participation(graph) <= 1
    assert graph.connected_components()[0] == 1
    tau = total_triangles(graph)
    assert tau > 0
    summary = heavy_tail_summary(graph.degrees())
    print_section(f"E13 / strategy (b) — triangle-constrained PA generator, n = {n}")
    print(f"  edges = {graph.n_edges:,}, triangles = {tau:,}, max Δ per edge = "
          f"{generators.max_edge_triangle_participation(graph)}")
    print(f"  degree stats: max = {int(summary['max'])}, mean = {summary['mean']:.2f}, "
          f"hill α ≈ {summary['hill_exponent']:.2f}")
    assert summary["max"] > 4 * summary["mean"]  # right-skewed, scale-free-ish


@pytest.mark.parametrize("n", [80, 160])
def test_strategy_a_edge_deletion(benchmark, n):
    raw = generators.webgraph_like(n, seed=72)

    reduced = benchmark(generators.reduce_to_delta_le_one, raw)

    assert generators.max_edge_triangle_participation(reduced) <= 1
    assert reduced.connected_components()[0] == raw.connected_components()[0]
    print_section(f"E13 / strategy (a) — edge-deletion reduction, n = {n}")
    print(f"  before: {raw.n_edges:,} edges, {total_triangles(raw):,} triangles "
          f"(max Δ = {generators.max_edge_triangle_participation(raw)})")
    print(f"  after:  {reduced.n_edges:,} edges, {total_triangles(reduced):,} triangles "
          f"(max Δ = {generators.max_edge_triangle_participation(reduced)})")
