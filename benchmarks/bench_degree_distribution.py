"""E3 — Section III.A: degree distribution of the product and max-degree-ratio squaring.

Times the factor-histogram convolution that yields the exact degree histogram
of ``A ⊗ A`` (never touching product-sized arrays) and reports the heavy-tail
diagnostics the paper discusses: the product distribution stays heavy-tailed
and the max-degree / n ratio is the square of the factor's ratio.
"""

import numpy as np
import pytest

from repro.analysis import (
    complementary_cdf,
    degree_histogram,
    heavy_tail_summary,
    hill_tail_exponent,
    product_histogram,
)
from repro.core import kron_max_degree_ratio, max_degree_ratio
from benchmarks._report import print_section


def test_degree_histogram_convolution(benchmark, web_factor):
    hist_a = degree_histogram(web_factor)

    hist_c = benchmark(product_histogram, hist_a, hist_a)

    n_c = web_factor.n_vertices ** 2
    assert sum(hist_c.values()) == n_c
    # Mean degree multiplies: Σ d·count / n.
    mean_a = sum(v * c for v, c in hist_a.items()) / web_factor.n_vertices
    mean_c = sum(v * c for v, c in hist_c.items()) / n_c
    assert mean_c == pytest.approx(mean_a ** 2)

    values, ccdf = complementary_cdf(hist_c)
    print_section("E3 — degree distribution of A ⊗ A from factor histograms")
    print(f"  factor A: {web_factor.n_vertices:,} vertices, mean degree {mean_a:.2f}, "
          f"max degree {max(hist_a)}")
    print(f"  product : {n_c:,} vertices, mean degree {mean_c:.2f}, max degree {max(hist_c)}")
    print(f"  product degree support has {len(hist_c):,} distinct values")
    tail_points = [(int(v), float(p)) for v, p in zip(values, ccdf) if p < 1e-3][:5]
    print(f"  deep tail of the CCDF (P[deg >= d] < 1e-3): {tail_points}")


def test_max_degree_ratio_squares(benchmark, web_factor):
    ratio_c = benchmark(kron_max_degree_ratio, web_factor, web_factor)

    ratio_a = max_degree_ratio(web_factor)
    assert ratio_c == pytest.approx(ratio_a ** 2)
    print_section("E3 — max-degree / n ratio squares under the Kronecker product")
    print(f"  ‖d_A‖∞ / n_A = {ratio_a:.5f}")
    print(f"  ‖d_C‖∞ / n_C = {ratio_c:.7f} = (‖d_A‖∞ / n_A)²")


def test_heavy_tail_preserved(benchmark, web_factor):
    degrees_a = web_factor.degrees()

    def run():
        hist_a = degree_histogram(web_factor)
        hist_c = product_histogram(hist_a, hist_a)
        sample = np.repeat(
            np.fromiter(hist_c.keys(), dtype=np.int64),
            np.fromiter(hist_c.values(), dtype=np.int64),
        )
        return heavy_tail_summary(sample)

    summary_c = benchmark(run)
    summary_a = heavy_tail_summary(degrees_a)
    print_section("E3 — heavy-tail diagnostics (Hill exponent)")
    print(f"  factor A : hill α ≈ {summary_a['hill_exponent']:.2f}, "
          f"max/n = {summary_a['max_over_n']:.5f}")
    print(f"  product C: hill α ≈ {summary_c['hill_exponent']:.2f}, "
          f"max/n = {summary_c['max_over_n']:.7f}")
    # The product tail must remain heavy (finite, moderate exponent), and the
    # tail exponent does not blow up relative to the factor's.
    assert np.isfinite(summary_c["hill_exponent"])
    assert summary_c["hill_exponent"] < 2 * summary_a["hill_exponent"] + 1
