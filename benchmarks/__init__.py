"""Reproduction benchmarks: one module per table/figure/example of the paper."""
