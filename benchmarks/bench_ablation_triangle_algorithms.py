"""Ablation — factor-side triangle algorithms (DESIGN.md §5).

The Kronecker formulas need per-factor triangle statistics; this ablation
times the three interchangeable implementations (sparse ``A ∘ A²`` kernel,
node-iterator, degree-ordered wedge iterator) on the same scale-free factor
and confirms they produce identical results.  It justifies the library's
default choice (the matrix kernel) and quantifies what the wedge-check
counter costs.
"""

import numpy as np
import pytest

from repro import generators
from repro.triangles import (
    count_triangles_edge_iterator,
    edge_triangles,
    vertex_triangle_participation,
    vertex_triangles,
)
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def factor():
    return generators.webgraph_like(1200, edges_per_vertex=3, triad_probability=0.6, seed=81)


@pytest.mark.parametrize("method", ["matrix", "node", "wedge"])
def test_vertex_participation_algorithms(benchmark, factor, method):
    result = benchmark(vertex_triangle_participation, factor, method=method)
    reference = vertex_triangles(factor)
    assert np.array_equal(result, reference)
    print_section(f"Ablation — per-vertex triangle participation via '{method}'")
    print(f"  factor: {factor.n_vertices:,} vertices, {factor.n_edges:,} edges, "
          f"Σ t = {int(reference.sum()):,}")


def test_edge_participation_matrix_kernel(benchmark, factor):
    delta = benchmark(edge_triangles, factor)
    assert delta.nnz > 0
    print_section("Ablation — per-edge participation via the A ∘ A² kernel")
    print(f"  {delta.nnz // 2:,} undirected edges carry a participation value")


def test_edge_participation_wedge_iterator(benchmark, factor):
    census = benchmark(count_triangles_edge_iterator, factor)
    assert (census.per_edge != edge_triangles(factor)).nnz == 0
    print_section("Ablation — per-edge participation via the wedge iterator")
    print(f"  wedge checks performed: {census.wedge_checks:,} "
          f"(the work measure the paper reports for its factor census)")
