"""E1 — Figure 1 sanity check: local triangle stats of C are products of factor stats.

Reproduces the schematic of Fig. 1: for sampled vertices/edges of ``C = A ⊗ B``
the triangle statistic equals the product of the factor statistics (times 2
for vertices of loop-free products).  The benchmark times the full formula
evaluation for the product and asserts the multiplicative structure.
"""

import numpy as np
import pytest

from repro import generators
from repro.core import kron_edge_triangles, kron_vertex_triangles
from repro.triangles import edge_triangles, vertex_triangles
from benchmarks._report import print_section


@pytest.fixture(scope="module")
def factors():
    a = generators.webgraph_like(150, seed=1)
    b = generators.webgraph_like(120, seed=2)
    return a, b


def test_fig1_vertex_statistics_multiply(benchmark, factors):
    a, b = factors
    t_a, t_b = vertex_triangles(a), vertex_triangles(b)

    t_c = benchmark(kron_vertex_triangles, a, b)

    n_b = b.n_vertices
    rng = np.random.default_rng(0)
    samples = rng.integers(0, a.n_vertices * n_b, size=200)
    expected = 2 * t_a[samples // n_b] * t_b[samples % n_b]
    assert np.array_equal(t_c[samples], expected)

    print_section("E1 / Fig. 1 — vertex triangle stats multiply across factors")
    shown = samples[:5]
    for p in shown:
        i, k = int(p) // n_b, int(p) % n_b
        print(f"  t_C[{int(p):>6}] = {t_c[p]:>6} = 2 · t_A[{i}]({t_a[i]}) · t_B[{k}]({t_b[k]})")


def test_fig1_edge_statistics_multiply(benchmark, factors):
    a, b = factors
    delta_a, delta_b = edge_triangles(a), edge_triangles(b)

    delta_c = benchmark(kron_edge_triangles, a, b)

    coo_a = delta_a.tocoo()
    coo_b = delta_b.tocoo()
    n_b = b.n_vertices
    rng = np.random.default_rng(1)
    checked = 0
    for _ in range(100):
        ia = rng.integers(0, coo_a.nnz)
        ib = rng.integers(0, coo_b.nnz)
        i, j, va = int(coo_a.row[ia]), int(coo_a.col[ia]), int(coo_a.data[ia])
        k, l, vb = int(coo_b.row[ib]), int(coo_b.col[ib]), int(coo_b.data[ib])
        p, q = i * n_b + k, j * n_b + l
        assert delta_c[p, q] == va * vb
        checked += 1
    print_section("E1 / Fig. 1 — edge triangle stats multiply across factors")
    print(f"  verified Δ_C[p,q] = Δ_A[i,j] · Δ_B[k,l] on {checked} sampled edge pairs")
