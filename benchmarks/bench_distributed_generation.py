"""E14 — Communication-free distributed generation (the paper's motivating use case [3]).

Partitions the product's edge generation over simulated ranks, times the
per-rank generation, and verifies the defining property: the union of the
per-rank outputs equals the product exactly, with no inter-rank communication
and near-perfect load balance.
"""

import numpy as np
import pytest

from repro.core import KroneckerGraph, kron_triangle_count
from repro.parallel import (
    SimulatedComm,
    balance_statistics,
    distributed_generate,
    merge_rank_outputs,
    partition_edges,
    stream_edge_count,
)
from benchmarks._report import print_section


@pytest.mark.parametrize("n_ranks", [2, 8, 32])
def test_distributed_generation(benchmark, small_web_factor, delta_le_one_factor, n_ranks):
    factor_a, factor_b = small_web_factor, delta_le_one_factor
    product = KroneckerGraph(factor_a, factor_b)

    outputs = benchmark(distributed_generate, factor_a, factor_b, n_ranks,
                        with_statistics=False)

    merged = merge_rank_outputs(outputs, product.n_vertices)
    assert merged.nnz == product.nnz
    assert merged.max() == 1  # no edge generated twice
    assert (merged != product.materialize_adjacency()).nnz == 0

    partitions = partition_edges(factor_a.nnz, factor_b.nnz, n_ranks)
    # One A entry is the indivisible unit of an edge partition, so nnz(B)
    # bounds what any contiguous partitioner could balance to.
    balance = balance_statistics(partitions, max_atom_load=factor_b.nnz)
    assert balance["bounded_imbalance"] <= 2.0
    print_section(f"E14 — communication-free generation over {n_ranks} ranks")
    print(f"  product: {product.n_vertices:,} vertices, {product.nnz:,} entries")
    print(f"  per-rank load: mean {balance['mean']:,.0f} edges, "
          f"imbalance {balance['imbalance']:.3f}, "
          f"bounded imbalance {balance['bounded_imbalance']:.3f} (≤ 2 guaranteed)")
    print("  union of rank outputs equals the product exactly; no rank exchanged any data")


def test_distributed_triangle_mass_reduction(benchmark, small_web_factor, delta_le_one_factor):
    """Each rank also emits exact local ground truth; an all-reduce of the per-edge
    triangle mass reproduces 6 τ(C)."""
    factor_a, factor_b = small_web_factor, delta_le_one_factor
    n_ranks = 4

    def run():
        outputs = distributed_generate(factor_a, factor_b, n_ranks, with_statistics=True)
        comm = SimulatedComm(n_ranks)
        reduced = None
        for out in outputs:
            reduced = comm.allreduce_sum("mass", out.rank, int(out.edge_triangles.sum()))
        return reduced

    reduced = benchmark.pedantic(run, rounds=1, iterations=1)
    tau = kron_triangle_count(factor_a, factor_b)
    assert reduced == 6 * tau
    print_section("E14 — per-rank ground truth reduces to the global count")
    print(f"  Σ_ranks Σ_edges Δ = {reduced:,} = 6 τ(C) with τ(C) = {tau:,}")


def test_streaming_edge_pass(benchmark, web_factor):
    """Bounded-memory pass over a product far bigger than the materialization limit."""
    product = KroneckerGraph(web_factor, web_factor)

    count = benchmark.pedantic(stream_edge_count, args=(product,),
                               kwargs={"a_edges_per_block": 256}, rounds=1, iterations=1)
    assert count == product.nnz
    print_section("E14 — streamed edge pass (single rank, bounded memory)")
    print(f"  streamed {count:,} directed edges of {product.name} "
          f"({product.n_vertices:,} vertices) without materializing the adjacency")
