"""Perf — streaming rank pipeline vs. materialized per-rank generation.

Compares the two execution modes of :func:`repro.parallel.distributed_generate`
on the same factor pair and rank count:

* **materialized** — each rank allocates its whole ``slice × nnz(B)`` edge
  array (plus payloads) at once;
* **streamed** — each rank folds bounded ``a_edges_per_block × nnz(B)``
  blocks into a :class:`~repro.parallel.streaming.StreamingRankAccumulator`
  and never holds more than one block.

Reported: generation throughput (edges/s) of both modes and the peak
per-rank allocation (largest rank slice vs. largest streamed block).  In
every mode the streamed aggregates are asserted equal to the materialized
ones and validated against the closed-form factor statistics, so tier-1
cannot let the two paths diverge.

Runs in two modes:

* **smoke** — swept into the tier-1 ``pytest`` run by
  ``benchmarks/conftest.py``: small sizes, equality/validation assertions
  only;
* **full** — ``pytest -m slow benchmarks/bench_streaming.py``: the
  Section VI-scale factor pair (~450k product edges), plus the
  bounded-memory assertion that the peak streamed block is a small fraction
  of the materialized peak.
"""

from __future__ import annotations

import time

import pytest

from repro import generators
from repro.core import KroneckerTriangleStats, ValidationAccumulator
from repro.parallel import StreamingRankAccumulator, distributed_generate
from benchmarks._report import print_section

N_RANKS = 8
BLOCK = 32


def _materialized_aggregate(outputs) -> StreamingRankAccumulator:
    total = None
    for out in outputs:
        acc = StreamingRankAccumulator.from_rank_output(out)
        total = acc if total is None else total + acc
    return total


def _compare_modes(factor_a, factor_b, *, n_ranks: int, block: int, label: str):
    """Run both modes, assert agreement, and return the measured numbers."""
    start = time.perf_counter()
    outputs = distributed_generate(factor_a, factor_b, n_ranks)
    materialized_time = time.perf_counter() - start
    peak_slice = max(out.n_edges for out in outputs)

    start = time.perf_counter()
    result = distributed_generate(factor_a, factor_b, n_ranks,
                                  streaming=True, a_edges_per_block=block)
    streamed_time = time.perf_counter() - start

    n_edges = result.n_edges
    block_bound = block * factor_b.nnz
    assert result.max_block_edges <= block_bound, \
        "streamed rank held more than one block"
    assert result.total.summary() == _materialized_aggregate(outputs).summary(), \
        "streamed aggregates diverge from the materialized path"
    report = ValidationAccumulator(factor_a, factor_b,
                                   stats=result.stats).validate(result.total)
    assert report.passed, report.summary()

    print_section(f"Perf — streaming vs materialized generation ({label})")
    print(f"  product: {n_edges:,} directed edges over {n_ranks} ranks, "
          f"block = {block} A-entries")
    print(f"  materialized: {n_edges / materialized_time:,.0f} edges/s "
          f"({materialized_time * 1e3:.1f} ms), peak rank slice {peak_slice:,} edges")
    print(f"  streamed:     {n_edges / streamed_time:,.0f} edges/s "
          f"({streamed_time * 1e3:.1f} ms), peak block {result.max_block_edges:,} "
          f"edges (bound {block_bound:,})")
    return peak_slice, result.max_block_edges, materialized_time, streamed_time


def test_streaming_smoke():
    """Tier-1 smoke: both modes agree exactly on a small factor pair."""
    factor_a = generators.webgraph_like(60, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(20, seed=13)
    peak_slice, peak_block, _, _ = _compare_modes(
        factor_a, factor_b, n_ranks=N_RANKS, block=8, label="smoke")
    assert peak_block <= peak_slice


def test_streaming_smoke_shares_statistics(monkeypatch):
    """The streamed path builds the factored statistics exactly once per run."""
    import repro.parallel.distributed as distributed_mod

    factor_a = generators.webgraph_like(40, edges_per_vertex=3,
                                        triad_probability=0.6, seed=5)
    factor_b = generators.triangle_constrained_pa(15, seed=13)
    calls = []
    original = KroneckerTriangleStats.from_factors.__func__

    def counting_from_factors(cls, a, b):
        calls.append(1)
        return original(cls, a, b)

    monkeypatch.setattr(distributed_mod.KroneckerTriangleStats, "from_factors",
                        classmethod(counting_from_factors))
    distributed_generate(factor_a, factor_b, 6, streaming=True, a_edges_per_block=8)
    assert len(calls) == 1


@pytest.mark.slow
def test_streaming_throughput_full():
    """Full sizes: bounded blocks must be a small fraction of the rank slice."""
    factor_a = generators.webgraph_like(320, edges_per_vertex=3,
                                        triad_probability=0.6, seed=3)
    factor_b = generators.triangle_constrained_pa(90, seed=13)
    peak_slice, peak_block, materialized_time, streamed_time = _compare_modes(
        factor_a, factor_b, n_ranks=N_RANKS, block=BLOCK, label="full")
    ratio = (materialized_time / streamed_time) if streamed_time else float("inf")
    print(f"  streamed/materialized wall-time ratio: {1 / ratio:.2f}×")
    # The point of streaming is memory, not speed — but it must not collapse.
    assert peak_block * 4 <= peak_slice, \
        "streamed peak should be well under the materialized rank slice"
    assert streamed_time <= materialized_time * 10, \
        "streaming overhead blew past 10× the materialized path"
