#!/usr/bin/env python
"""Section VI reproduction: web-scale factor, product summary table, Fig. 7 egonets.

The paper takes the undirected web-NotreDame crawl as factor ``A``, sets
``B = A + I``, and reports the vertex/edge/triangle counts of ``A ⊗ A`` and
``A ⊗ B`` computed purely from Kronecker formulas, then validates by plotting
egonets of nine product vertices derived from three degree-3 factor vertices
with 1, 2 and 3 triangles.

Without network access we use the synthetic web-like stand-in
(:func:`repro.generators.web_notredame_substitute`, see DESIGN.md for the
substitution rationale).  Use ``--scale`` to grow the factor: the formula side
keeps working far beyond what could ever be materialized.

Run with ``python examples/validate_web_scale.py [--scale 0.01]``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import core, generators
from repro.analysis import format_table, graph_summary, kronecker_summary
from repro.graphs import egonet
from repro.triangles import vertex_triangles


def pick_probe_vertices(factor) -> dict:
    """Vertices of degree 3 with exactly 1, 2, 3 triangles (the Fig. 7 probes)."""
    degrees = factor.degrees()
    triangles = vertex_triangles(factor)
    picks = {}
    for wanted in (1, 2, 3):
        candidates = np.flatnonzero((degrees == 3) & (triangles == wanted))
        if candidates.size:
            picks[wanted] = int(candidates[0])
    return picks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="factor size as a fraction of web-NotreDame's 325,729 vertices")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    factor_a = generators.web_notredame_substitute(scale=args.scale, seed=args.seed)
    factor_b = factor_a.with_self_loops()
    print(f"factor A: {factor_a}")

    # ------------------------------------------------------------------
    # The summary table (Section VI), all product rows via Kronecker formulas.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    rows = [
        graph_summary(factor_a, name="A"),
        graph_summary(factor_b, name="B = A + I"),
        kronecker_summary(factor_a, factor_a, name="A ⊗ A"),
        kronecker_summary(factor_a, factor_b, name="A ⊗ B"),
    ]
    elapsed = time.perf_counter() - start
    print()
    print(format_table(rows))
    print(f"\n(table computed in {elapsed:.2f}s — the product rows describe graphs "
          f"with {rows[2].n_edges:,} and {rows[3].n_edges:,} edges without building them)")

    # ------------------------------------------------------------------
    # Fig. 7: probe vertices and their product egonets.
    # ------------------------------------------------------------------
    picks = pick_probe_vertices(factor_a)
    if len(picks) < 3:
        print("\n(factor has no degree-3 probes for some triangle counts; "
              "egonet table will be partial)")
    t_a = vertex_triangles(factor_a)
    print("\nFig. 7 probe vertices in A (degree 3):")
    for tri, v in picks.items():
        print(f"  vertex {v}: {tri} triangle(s)")

    for b_name, factor in (("A ⊗ A", factor_a), ("A ⊗ B", factor_b)):
        product = core.KroneckerGraph(factor_a, factor)
        stats = core.KroneckerTriangleStats.from_factors(factor_a, factor)
        print(f"\negonets of the probe products in {b_name}:")
        for tri_i, i in picks.items():
            for tri_k, k in picks.items():
                p = i * factor.n_vertices + k
                ego = egonet(product, p)
                formula = int(stats.vertex_value(p))
                status = "ok" if ego.triangles_at_center() == formula else "MISMATCH"
                print(f"  p={p:>12}  degree={ego.degree_of_center():>3}  "
                      f"triangles: egonet={ego.triangles_at_center():>3} formula={formula:>3} [{status}]")

    # ------------------------------------------------------------------
    # Randomized egonet validation, as the harness would run it.
    # ------------------------------------------------------------------
    report = core.validate_egonets(factor_a, factor_b, n_samples=9, seed=1)
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
