#!/usr/bin/env python
"""Generate a graph with *known* truss decomposition (Theorem 3 workflow).

The recipe from Section III.D:

1. take any scale-free left factor ``A`` and compute its truss decomposition
   directly (it is small, so this is cheap);
2. build a right factor ``B`` in which every edge participates in at most one
   triangle — either with the paper's preferential-attachment generator
   (strategy b) or by reducing an arbitrary graph (strategy a);
3. the truss decomposition of the large product ``C = A ⊗ B`` is then known in
   closed form: a product edge is in ``T(κ)_C`` iff its ``A``-edge is in
   ``T(κ)_A`` and its ``B``-edge lies in a triangle.

The script prints the transferred truss class sizes and, at small scale,
verifies them against the direct peeling algorithm on the materialized
product.  It also shows the Example 2 counter-example where the hypothesis
fails and the naive transfer would be wrong.

Run with ``python examples/truss_ground_truth.py``.
"""

from __future__ import annotations

from repro import core, generators
from repro.core import KroneckerGraph
from repro.truss import truss_decomposition


def theorem3_workflow() -> None:
    print("=" * 68)
    print("Theorem 3: truss decomposition of C = A ⊗ B from factor data")
    print("=" * 68)

    factor_a = generators.webgraph_like(120, edges_per_vertex=3, triad_probability=0.7, seed=51)
    factor_b = generators.triangle_constrained_pa(40, seed=52)
    print(f"A: {factor_a}")
    print(f"B: {factor_b}  (max Δ_B = "
          f"{generators.max_edge_triangle_participation(factor_b)})")

    transferred = core.kron_truss_decomposition(factor_a, factor_b)
    print(f"\nmax κ-truss of the product: {transferred.max_truss}")
    print("transferred truss sizes (undirected edges per κ-truss):")
    for k, size in sorted(transferred.truss_sizes().items()):
        print(f"  T({k}): {size:,}")

    product = KroneckerGraph(factor_a, factor_b)
    print(f"\nproduct size: {product.n_vertices:,} vertices, {product.n_edges:,} edges")
    if product.nnz <= 2_000_000:
        direct = truss_decomposition(product.materialize())
        agree = transferred.truss_sizes() == direct.truss_sizes()
        print(f"direct peeling of the materialized product agrees: {agree}")

    # Point queries never need the product either:
    p, q = 0, factor_b.n_vertices  # product edge pairing A-edge (0, 1) with B-edge (0, 0)?
    sample_edges = product.edges(max_nnz=5_000_000)[:5]
    print("\nsample edge trussness (from factor data only):")
    for p, q in sample_edges:
        print(f"  ({int(p)}, {int(q)}): trussness {transferred.edge_trussness(int(p), int(q))}")


def strategy_a_reduction() -> None:
    print()
    print("=" * 68)
    print("Strategy (a): reduce an arbitrary graph to Δ ≤ 1 for use as factor B")
    print("=" * 68)
    raw = generators.webgraph_like(80, seed=53)
    reduced = generators.reduce_to_delta_le_one(raw)
    print(f"before: {raw}  (max Δ = {generators.max_edge_triangle_participation(raw)})")
    print(f"after:  {reduced}  (max Δ = {generators.max_edge_triangle_participation(reduced)})")

    factor_a = generators.erdos_renyi(30, 0.15, seed=54)
    report = core.validate_truss_transfer(factor_a, reduced)
    print(f"truss transfer validation with the reduced factor: "
          f"{'PASS' if report.passed else 'FAIL'}")


def example2_counterexample() -> None:
    print()
    print("=" * 68)
    print("Example 2: why the hypothesis Δ_B ≤ 1 is needed")
    print("=" * 68)
    hub_cycle = generators.hub_cycle_graph()
    print(f"A = B = hub-cycle graph: {hub_cycle} "
          f"(max Δ = {generators.max_edge_triangle_participation(hub_cycle)})")
    try:
        core.kron_truss_decomposition(hub_cycle, hub_cycle)
    except ValueError as exc:
        print(f"kron_truss_decomposition correctly refuses: {exc}")

    product = KroneckerGraph(hub_cycle, hub_cycle).materialize()
    direct = truss_decomposition(product)
    print(f"direct decomposition of the 25-vertex product: sizes {direct.truss_sizes()} "
          f"(a 4-truss appears even though neither factor has one)")


def main() -> None:
    theorem3_workflow()
    strategy_a_reduction()
    example2_counterexample()


if __name__ == "__main__":
    main()
