#!/usr/bin/env python
"""Communication-free distributed generation of a Kronecker benchmark graph.

Simulates the paper's motivating use case [3]: a set of ranks, each holding
only the two small factors, emits disjoint slices of the product edge list
together with exact local triangle ground truth, with zero inter-rank
communication.  The driver then verifies that

* the union of the per-rank edge lists is exactly ``E_C``,
* per-rank triangle mass sums (via a simulated all-reduce) to ``6 τ(C)``, and
* the rank loads are balanced.

Finally the product's edge stream is spilled to disk in bounded-memory chunks,
the single-node analogue of writing the graph to a parallel file system.

Run with ``python examples/distributed_generation.py [--ranks 8]``.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro import core, generators
from repro.parallel import (
    SimulatedComm,
    balance_statistics,
    distributed_generate,
    merge_rank_outputs,
    partition_edges,
    stream_edges_to_file,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--factor-size", type=int, default=300)
    args = parser.parse_args()

    factor_a = generators.webgraph_like(args.factor_size, seed=61)
    factor_b = generators.triangle_constrained_pa(48, seed=62)
    product = core.KroneckerGraph(factor_a, factor_b)
    print(f"A: {factor_a}")
    print(f"B: {factor_b}")
    print(f"C = A ⊗ B: {product.n_vertices:,} vertices, {product.nnz:,} stored entries")

    # ------------------------------------------------------------------
    # Partition and per-rank generation.
    # ------------------------------------------------------------------
    partitions = partition_edges(factor_a.nnz, factor_b.nnz, args.ranks)
    balance = balance_statistics(partitions)
    print(f"\npartition over {args.ranks} ranks: "
          f"mean load {balance['mean']:,.0f} edges/rank, imbalance {balance['imbalance']:.3f}")

    start = time.perf_counter()
    outputs = distributed_generate(factor_a, factor_b, args.ranks, with_statistics=False)
    gen_time = time.perf_counter() - start
    print(f"generation: {sum(o.n_edges for o in outputs):,} edges emitted in {gen_time:.2f}s "
          f"({args.ranks} simulated ranks, no communication)")

    # ------------------------------------------------------------------
    # Verification: union of rank outputs equals the product.
    # ------------------------------------------------------------------
    merged = merge_rank_outputs(outputs, product.n_vertices)
    if product.nnz <= 5_000_000:
        exact = (merged != product.materialize_adjacency()).nnz == 0
        print(f"union of rank edge lists equals the materialized product: {exact}")

    # ------------------------------------------------------------------
    # Global triangle count via a simulated all-reduce of per-rank mass.
    # The ground truth from the formulas is the reference.
    # ------------------------------------------------------------------
    stats_outputs = distributed_generate(factor_a, factor_b, args.ranks, with_statistics=True)
    comm = SimulatedComm(args.ranks)
    reduced = None
    for out in stats_outputs:
        reduced = comm.allreduce_sum("delta_mass", out.rank, int(out.edge_triangles.sum()))
    tau = core.kron_triangle_count(factor_a, factor_b)
    print(f"\nall-reduced per-edge triangle mass: {reduced:,}")
    print(f"6 · τ(C) from the Kronecker formula: {6 * tau:,}   "
          f"({'match' if reduced == 6 * tau else 'MISMATCH'})")

    # ------------------------------------------------------------------
    # Stream the edge list to disk in chunks.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "product_edges.tsv"
        start = time.perf_counter()
        written = stream_edges_to_file(product, path, a_edges_per_block=512)
        stream_time = time.perf_counter() - start
        size_mb = path.stat().st_size / 1e6
        print(f"\nstreamed {written:,} edges to disk in {stream_time:.2f}s ({size_mb:.1f} MB); "
              f"the compressed factor bundle would be "
              f"{(factor_a.nnz + factor_b.nnz) * 16 / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
