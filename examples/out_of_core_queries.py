#!/usr/bin/env python
"""Out-of-core egonet queries: generate → stream → compact → query → serve.

The end-to-end never-materialize-``C`` workflow the shard store enables.  A
Kronecker product far larger than memory is streamed to a per-block ``.npy``
spill by the communication-free rank pipeline (validated on the fly against
the closed-form factor statistics), the spill is compacted into source-sorted
shards with a manifest v2 of per-shard vertex ranges, and the Figure 7
egonet spot checks are then served straight from the disk store:

* each query binary-searches the manifest and decodes only the shards whose
  vertex range it touches,
* repeated queries hit the store's LRU of decoded shards instead of disk, and
* every egonet triangle count is compared against the exact Kronecker-formula
  value ``t_C[p]`` — the paper's validation loop running on spilled edges,
  with the product adjacency never built.

The spill carries **payload columns**: each shard row is
``(src, dst, triangles, trussness)``, the per-edge ground truth evaluated
per block during generation, so the disk store serves not just the topology
but the paper's central asset — exact closed-form edge statistics — and the
payload check compares the served payloads against
``KroneckerTriangleStats.edge_values`` / ``edge_trussness_batch`` recomputed
from the factors.

The final section exercises the **served mode** (PR 5): the same store goes
behind the :mod:`repro.serve` asyncio server on an ephemeral localhost port,
and a wire-level :class:`~repro.serve.QueryClient` re-runs the egonet and
payload checks over the socket — every remote answer must equal the
in-process one, and the server's ``stats`` request shows the shared decode
LRU and request coalescing doing their jobs.

Run with ``python examples/out_of_core_queries.py [--ranks 8]``.
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import core, generators
from repro.core import ValidationAccumulator
from repro.parallel import distributed_generate
from repro.serve import QueryClient, ThreadedServer
from repro.store import AsyncShardSink, ShardStore, compact_shards


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--factor-size", type=int, default=300)
    parser.add_argument("--egonets", type=int, default=30)
    args = parser.parse_args()

    factor_a = generators.webgraph_like(args.factor_size, seed=61)
    factor_b = generators.triangle_constrained_pa(48, seed=62)
    product = core.KroneckerGraph(factor_a, factor_b)
    print(f"A: {factor_a}")
    print(f"B: {factor_b}")
    print(f"C = A ⊗ B: {product.n_vertices:,} vertices, {product.nnz:,} stored entries "
          "(never materialized below)")

    with tempfile.TemporaryDirectory() as tmp:
        spill = Path(tmp) / "spill"
        store_dir = Path(tmp) / "store"

        # --------------------------------------------------------------
        # 1. Stream the product to disk; the async sink overlaps shard
        #    writes with block generation, and the reduced aggregates are
        #    validated against the factor-side closed forms on the fly.
        #    payload_columns widens every spilled block with the exact
        #    per-edge ground truth, evaluated through the run's single
        #    cached-key gatherer.
        # --------------------------------------------------------------
        payload = ("triangles", "trussness")
        sink = AsyncShardSink(spill, name=product.name,
                              n_vertices=product.n_vertices,
                              payload_columns=payload)
        start = time.perf_counter()
        result = distributed_generate(factor_a, factor_b, args.ranks,
                                      streaming=True, a_edges_per_block=256,
                                      sink=sink, payload_columns=payload)
        spill_time = time.perf_counter() - start
        report = ValidationAccumulator(factor_a, factor_b,
                                       stats=result.stats).validate(result.total)
        print(f"\nstreamed {result.n_edges:,} edges over {args.ranks} ranks "
              f"in {spill_time:.2f}s "
              f"(writer busy {sink.writer_busy_s:.2f}s, overlapped)")
        print(f"on-the-fly validation: {'PASS' if report.passed else 'FAIL'}")

        # --------------------------------------------------------------
        # 2. Compact: external merge sort into source-sorted shards with
        #    per-shard vertex ranges (manifest v2).
        # --------------------------------------------------------------
        start = time.perf_counter()
        manifest = compact_shards(spill, store_dir, target_shard_edges=65_536)
        compact_time = time.perf_counter() - start
        print(f"compacted into {len(manifest['shards'])} source-sorted shards "
              f"in {compact_time:.2f}s "
              f"({manifest['total_edges'] / compact_time:,.0f} edges/s)")

        # --------------------------------------------------------------
        # 3. Serve egonet queries from the store and check each against
        #    the exact formula value (Fig. 7, but over spilled edges).
        # --------------------------------------------------------------
        store = ShardStore(store_dir, cache_shards=8)
        t_c = core.kron_vertex_triangles(factor_a, factor_b)
        rng = np.random.default_rng(7)
        centres = rng.choice(product.n_vertices, args.egonets, replace=False)
        start = time.perf_counter()
        mismatches = 0
        for v in map(int, centres):
            ego = store.egonet(v)
            if ego.triangles_at_center() != int(t_c[v]):
                mismatches += 1
        query_time = time.perf_counter() - start
        print(f"\n{args.egonets} egonets served from disk in {query_time:.2f}s: "
              f"{store.shard_reads} shard reads, {store.cache_hits} cache hits")
        print(f"egonet triangle counts vs. Kronecker formula t_C[p]: "
              f"{args.egonets - mismatches}/{args.egonets} match "
              f"({'PASS' if mismatches == 0 else 'FAIL'})")

        # Warm-cache repeat: the heavy-traffic serving pattern.
        reads_before = store.shard_reads
        start = time.perf_counter()
        for v in map(int, centres):
            store.egonet(v)
        warm_time = time.perf_counter() - start
        print(f"warm repeat: {warm_time * 1e3:.0f} ms, "
              f"{store.shard_reads - reads_before} new shard reads")

        # --------------------------------------------------------------
        # 4. Serve the per-edge payloads back from disk and check them
        #    against the closed-form factor statistics — the spilled store
        #    is a full stand-in for the materialized product, topology
        #    and ground truth.
        # --------------------------------------------------------------
        stats = core.KroneckerTriangleStats.from_factors(factor_a, factor_b)
        truss = core.kron_truss_decomposition(factor_a, factor_b)
        rows = store.edges_in_range(0, product.n_vertices // 4,
                                    with_payload=True)
        expected_tri = stats.edge_values(rows[:, 0], rows[:, 1])
        expected_truss = truss.edge_trussness_batch(rows[:, 0], rows[:, 1])
        tri_ok = bool(np.array_equal(rows[:, 2], expected_tri))
        truss_ok = bool(np.array_equal(rows[:, 3], expected_truss))
        print(f"\npayload check over {rows.shape[0]:,} served rows: "
              f"triangles {'PASS' if tri_ok else 'FAIL'}, "
              f"trussness {'PASS' if truss_ok else 'FAIL'}")
        p, q = map(int, rows[0, :2])
        print(f"point lookup edge ({p}, {q}): {store.edge_payload(p, q)} "
              f"(formula: triangles={int(stats.edge_value(p, q))}, "
              f"trussness={int(truss.edge_trussness(p, q))})")

        # --------------------------------------------------------------
        # 5. Served mode: the same store behind the asyncio query server,
        #    exercised through the wire-level client.  One concurrent-safe
        #    ShardStore answers every connection; scalar degree/neighbors
        #    requests coalesce into batch calls; answers are byte-equal to
        #    the in-process ones.
        # --------------------------------------------------------------
        with ThreadedServer(store_dir, cache_shards=8) as server:
            print(f"\nserving the store on {server.address} "
                  "(asyncio, length-prefixed JSON frames)")
            with QueryClient(server.host, server.port) as client:
                served_centres = centres[:10]
                n_served = len(served_centres)
                served_mismatches = 0
                start = time.perf_counter()
                for v in map(int, served_centres):
                    ego = client.egonet(v)
                    if ego.triangles_at_center() != int(t_c[v]):
                        served_mismatches += 1
                served_time = time.perf_counter() - start
                print(f"{n_served} egonets served over the socket in "
                      f"{served_time:.2f}s: "
                      f"{n_served - served_mismatches}/{n_served} match "
                      f"t_C[p] "
                      f"({'PASS' if served_mismatches == 0 else 'FAIL'})")

                # Payloads over the wire: identical rows, identical dtype.
                served_rows = client.edges_in_range(
                    0, product.n_vertices // 4, with_payload=True)
                wire_ok = bool(np.array_equal(served_rows, rows)) \
                    and served_rows.dtype == rows.dtype
                print(f"served payload rows equal the local store: "
                      f"{'PASS' if wire_ok else 'FAIL'} "
                      f"({served_rows.shape[0]:,} rows)")
                print(f"served point lookup edge ({p}, {q}): "
                      f"{client.edge_payload(p, q)}")

                # A burst of concurrent scalar degree requests from several
                # client threads: the server folds simultaneous scalars into
                # batched store calls (visible in the coalescing stats).
                burst = rng.choice(product.n_vertices, 64, replace=False)
                expected = {int(v): store.degree(int(v)) for v in burst}
                burst_failures = []

                def hammer(offset: int) -> None:
                    try:
                        with QueryClient(server.host, server.port) as cc:
                            for v in map(int, burst[offset::4]):
                                assert cc.degree(v) == expected[v]
                    except Exception as exc:
                        burst_failures.append(exc)

                workers = [threading.Thread(target=hammer, args=(i,))
                           for i in range(4)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                print(f"concurrent degree burst: {len(burst)} scalar "
                      f"requests from 4 clients "
                      f"({'PASS' if not burst_failures else 'FAIL'})")

                report = client.stats()
                server_side = report["server"]
                print(f"server stats: "
                      f"{sum(server_side['requests'].values())} requests, "
                      f"{report['store']['shard_reads']} shard reads, "
                      f"{report['store']['cache_hits']} cache hits, "
                      f"degree coalescing {server_side['coalesced']['degree']}")


if __name__ == "__main__":
    main()
