#!/usr/bin/env python
"""Diverse triangle statistics: the directed (Fig. 4-5) and labeled (Fig. 6) censuses.

Builds a directed factor and a vertex-labeled factor, pairs each with an
undirected right factor, and prints the per-type triangle totals of the
Kronecker product computed two ways:

* from the Kronecker formulas of Theorems 4-7 (factor-sized work only), and
* directly on the materialized product (possible here because the example is
  intentionally small) — the two columns agree exactly.

Run with ``python examples/directed_and_labeled_census.py``.
"""

from __future__ import annotations

import numpy as np

from repro import core, generators
from repro.graphs import DirectedGraph, VertexLabeledGraph
from repro.triangles import (
    CANONICAL_VERTEX_TYPES,
    directed_vertex_triangle_counts,
    labeled_vertex_triangle_counts,
)


def directed_census() -> None:
    print("=" * 68)
    print("Directed triangle census (Theorem 4)")
    print("=" * 68)
    factor_a = generators.random_directed_graph(40, p_directed=0.08, p_reciprocal=0.06, seed=11)
    factor_b = generators.erdos_renyi(8, 0.4, seed=12, self_loops=True)
    print(f"A: {factor_a}")
    print(f"B: {factor_b}")

    formula = core.kron_directed_vertex_triangles(factor_a, factor_b)
    product = DirectedGraph(core.KroneckerGraph(factor_a, factor_b).materialize_adjacency())
    direct = directed_vertex_triangle_counts(product)

    print(f"\n{'type':>6} {'formula total':>15} {'direct total':>15}")
    for name in CANONICAL_VERTEX_TYPES:
        f_total, d_total = int(formula[name].sum()), int(direct[name].sum())
        marker = "" if f_total == d_total else "   <-- MISMATCH"
        print(f"{name:>6} {f_total:>15,} {d_total:>15,}{marker}")

    report = core.validate_directed_product(factor_a, factor_b)
    print(f"\nfull per-vertex/per-edge validation: {'PASS' if report.passed else 'FAIL'}")


def labeled_census() -> None:
    print()
    print("=" * 68)
    print("Vertex-labeled triangle census (Theorem 6), |L| = 3")
    print("=" * 68)
    factor_a = generators.random_labeled_graph(36, 0.12, 3, seed=21,
                                               label_weights=[0.5, 0.3, 0.2])
    factor_b = generators.erdos_renyi(8, 0.4, seed=22)
    print(f"A: {factor_a}")
    print(f"B: {factor_b}")

    formula = core.kron_labeled_vertex_triangles(factor_a, factor_b)
    labels_c = core.kron_inherited_labels(factor_a, factor_b)
    product = VertexLabeledGraph(
        core.KroneckerGraph(factor_a, factor_b).materialize_adjacency(),
        labels_c, n_labels=3, validate=False,
    )
    direct = labeled_vertex_triangle_counts(product)

    colour = {0: "r", 1: "g", 2: "b"}
    print(f"\n{'type':>10} {'formula total':>15} {'direct total':>15}")
    for (q1, q2, q3), values in sorted(formula.items()):
        name = f"{colour[q1].upper()}{colour[q2]}{colour[q3]}"
        f_total, d_total = int(values.sum()), int(direct[(q1, q2, q3)].sum())
        marker = "" if f_total == d_total else "   <-- MISMATCH"
        print(f"{name:>10} {f_total:>15,} {d_total:>15,}{marker}")

    report = core.validate_labeled_product(factor_a, factor_b)
    print(f"\nfull per-vertex/per-edge validation: {'PASS' if report.passed else 'FAIL'}")


def main() -> None:
    directed_census()
    labeled_census()


if __name__ == "__main__":
    main()
