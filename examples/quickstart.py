#!/usr/bin/env python
"""Quickstart: generate a Kronecker benchmark graph with exact triangle ground truth.

This is the 60-second tour of the library:

1. build two small scale-free factors,
2. form the (implicit) Kronecker product ``C = A ⊗ B``,
3. read off the exact degree / triangle statistics of the product from the
   Kronecker formulas — no product-sized computation anywhere,
4. spot-check a few vertices with egonets extracted straight from the implicit
   product (the Figure 7 validation of the paper).

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import core, generators
from repro.analysis import format_table, graph_summary, kronecker_summary
from repro.graphs import egonet


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Factors: a scale-free graph A, and B = A + I (self loop at every
    #    vertex) which boosts the product's triangle counts (Section VI).
    # ------------------------------------------------------------------
    factor_a = generators.webgraph_like(1_500, edges_per_vertex=3, seed=1)
    factor_b = factor_a.with_self_loops()

    # ------------------------------------------------------------------
    # 2. The implicit product.  Nothing of size n_A·n_B is allocated here.
    # ------------------------------------------------------------------
    product = core.KroneckerGraph(factor_a, factor_b)
    print(f"product: {product}")
    print(f"  vertices: {product.n_vertices:,}")
    print(f"  edges:    {product.n_edges:,}")

    # ------------------------------------------------------------------
    # 3. Exact ground-truth statistics from the Kronecker formulas.
    # ------------------------------------------------------------------
    tau = core.kron_triangle_count(factor_a, factor_b)
    print(f"  triangles (exact, via Cor. 1): {tau:,}")

    rows = [
        graph_summary(factor_a, name="A"),
        graph_summary(factor_b, name="B = A + I"),
        kronecker_summary(factor_a, factor_a, name="A ⊗ A"),
        kronecker_summary(factor_a, factor_b, name="A ⊗ B"),
    ]
    print()
    print(format_table(rows))

    # Lazy per-vertex / per-edge ground truth, sized by the factors only:
    stats = core.KroneckerTriangleStats.from_factors(factor_a, factor_b)
    sample_vertices = np.array([0, 123_456, 1_000_000]) % product.n_vertices
    print()
    print("sampled vertex triangle counts (formula):",
          dict(zip(sample_vertices.tolist(), stats.vertex_value(sample_vertices).tolist())))

    # ------------------------------------------------------------------
    # 4. Validation: build egonets of sampled product vertices and count
    #    triangles inside them directly (no formulas involved).
    # ------------------------------------------------------------------
    print()
    print("egonet spot checks (degree / triangles: egonet vs formula)")
    degrees = None
    for p in sample_vertices:
        ego = egonet(product, int(p))
        formula_t = int(stats.vertex_value(int(p)))
        formula_d = core.kron_degree_at(factor_a, factor_b, int(p))
        status = "ok" if (ego.triangles_at_center() == formula_t
                          and ego.degree_of_center() == formula_d) else "MISMATCH"
        print(f"  vertex {int(p):>9}: degree {ego.degree_of_center():>4} vs {formula_d:>4}, "
              f"triangles {ego.triangles_at_center():>6} vs {formula_t:>6}   [{status}]")

    report = core.validate_egonets(factor_a, factor_b, n_samples=5, seed=42)
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
