#!/usr/bin/env python
"""Multi-factor Kronecker products: reaching extreme scales with many small factors.

The generator the paper builds on composes *many* small factors; because the
Kronecker product is associative every formula in this library folds across
the factor list.  This example builds a product of four small scale-free
factors, prints its exact statistics (degrees, triangles, clustering) without
ever materializing it, and spot-checks a few egonets.

Run with ``python examples/multi_factor_power_law.py``.
"""

from __future__ import annotations

import numpy as np

from repro import generators
from repro.analysis import heavy_tail_summary
from repro.core import MultiKroneckerGraph
from repro.graphs import egonet


def main() -> None:
    factors = [
        generators.webgraph_like(40, edges_per_vertex=2, seed=1),
        generators.webgraph_like(30, edges_per_vertex=2, seed=2),
        generators.complete_graph(4),
        generators.triangle_constrained_pa(25, seed=3),
    ]
    product = MultiKroneckerGraph(factors, name="A1⊗A2⊗K4⊗TPA")

    print(f"{product}")
    print(f"  factor sizes: {product.factor_sizes}")
    print(f"  product vertices: {product.n_vertices:,}")
    print(f"  product edges:    {product.n_edges:,}")

    # Exact global statistics — all factor-level arithmetic.
    tau = product.triangle_count()
    print(f"  product triangles (exact): {tau:,}")

    degrees = product.degrees()
    summary = heavy_tail_summary(degrees)
    print(f"  degree distribution: max = {int(summary['max'])}, mean = {summary['mean']:.2f}, "
          f"max/n = {summary['max_over_n']:.2e}, hill α ≈ {summary['hill_exponent']:.2f}")

    t = product.vertex_triangles()
    print(f"  triangle participation: max = {int(t.max())}, "
          f"vertices in ≥1 triangle = {(t > 0).sum():,} / {t.size:,}")

    # Spot-check egonets extracted from the implicit product.
    rng = np.random.default_rng(0)
    print("\negonet spot checks:")
    for p in rng.integers(0, product.n_vertices, size=5):
        ego = egonet(product, int(p))
        ok = ego.triangles_at_center() == int(t[p]) and ego.degree_of_center() == int(degrees[p])
        print(f"  vertex {int(p):>9}: degree {ego.degree_of_center():>4} "
              f"triangles {ego.triangles_at_center():>5} vs formula {int(t[p]):>5} "
              f"[{'ok' if ok else 'MISMATCH'}]")


if __name__ == "__main__":
    main()
