"""Range router: one asyncio front-end over N vertex-range slice workers.

The horizontal-scale half of the serving story.  :func:`partition_manifest
<repro.store.partition.partition_manifest>` cuts a compacted manifest into
contiguous vertex-range slices; each slice is served by an ordinary
:class:`~repro.serve.ShardStoreServer` worker (optionally replicated); and a
:class:`RangeRouter` fronts the fleet speaking the **same wire protocol** —
a client cannot tell a router from a single server except by the extra
``fleet`` sections in ``hello`` / ``stats``.

The construction is deliberately thin:

* :class:`FleetStore` is a *store façade*: it implements the four batch
  primitives (``degrees`` / ``edges_for_sources`` / ``edges_in_range`` /
  ``edge_payloads``) by splitting each request across the worker ranges,
  fanning the slices out concurrently over the existing v1/v2 protocol
  (blocking :class:`~repro.serve.QueryClient` calls on a dedicated pool),
  and merging the answers back in source order.  Everything else — scalar
  wrappers, ``subgraph``, ``egonet`` — comes from the same
  :class:`~repro.store.StoreQueryMixin` the local store uses, so routed
  answers are byte-equal to single-store answers *by construction*.
* :class:`RangeRouter` is :class:`ShardStoreServer` serving that façade:
  framing, request coalescing, the binary bulk plane, and error frames are
  inherited unchanged.  Only ``hello`` (adds the fleet description) and
  ``stats`` (rolls per-worker stats up into a fleet answer) are overridden.
* :class:`_WorkerChannel` owns one slice's wire connections: a small pool of
  reused clients against the preferred replica, and on a *transport*
  failure (``OSError`` / :class:`~repro.serve.protocol.ProtocolError` —
  never a server-reported store error) it retries the call **once** against
  the next replica address, then fails with a worker-naming
  :class:`ConnectionError` that travels back to the router's client as an
  error frame on an intact connection.

Routing is strict: a vertex is asked only of the worker whose *assigned*
half-open range contains it, so a boundary shard listed by two slices is
never served twice, and concatenating per-worker answers in range order *is*
the global ``(src, dst)`` sort order.

Telemetry (PR 8): per-worker call/failover/failure counters are
``fleet.worker_*{worker=<index>}`` series in the fleet's
:class:`~repro.obs.MetricsRegistry` (the router adopts it, so ``metrics``
exposes fleet and server series side by side).  Every replica attempt runs
under a ``fleet.worker_call`` trace span — a failed primary attempt records
``status="error"`` and the failover retry lands as its *sibling* — and
:meth:`FleetStore._scatter` carries the active trace context onto the
fan-out threads with ``contextvars.copy_context()``.  The router's
``trace`` op merges its own spans with each worker's (fetched over the
wire), so one routed query answers with the whole tree.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.lint.runtime import new_lock
from repro.obs import (
    EventLog,
    MetricsRegistry,
    ProfileStats,
    merge_events,
    trace,
)
from repro.serve import protocol, shaping
from repro.serve.client import QueryClient
from repro.serve.server import ShardStoreServer, ThreadedServer, _arg
from repro.store.query import StoreQueryMixin

__all__ = ["FleetStore", "RangeRouter", "ThreadedRouter",
           "fleet_info_from_manifest"]


def fleet_info_from_manifest(manifest: dict) -> dict:
    """The fleet-level store description, taken from the *parent* manifest
    (summing per-slice manifests would double-count boundary shards)."""
    return {
        "name": manifest.get("name") or "",
        "n_vertices": int(manifest["n_vertices"]),
        "total_edges": int(manifest["total_edges"]),
        "n_shards": len(manifest["shards"]),
        "payload_columns": list(manifest["payload_columns"][2:]),
    }


class _WorkerChannel:
    """One slice's wire channel: reused blocking clients over the slice's
    replica addresses, with one failover retry per call.

    ``call(fn)`` runs ``fn(client)`` against the *preferred* replica.  On a
    transport failure it retries exactly once against the next address in
    the replica ring (with a single replica that is the same address — a
    restarted worker is picked back up); a second failure raises a
    :class:`ConnectionError` naming the worker, its range, and both failed
    attempts.  A successful failover makes the surviving replica preferred,
    so later calls do not re-pay the dead primary's connect timeout.

    Thread-safe: the router fans calls out from a pool, so the idle-client
    list and the counters are lock-guarded.  Exceptions raised by the
    *server* (error frames re-raised by the client, e.g. a store
    ``ValueError``) are not transport failures and propagate untouched —
    retrying them on a replica would just fail identically.
    """

    def __init__(self, index: int, src_lo: int, src_hi: int,
                 addresses: Sequence[str], *,
                 timeout: Optional[float] = 30.0,
                 registry: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None):
        if not addresses:
            raise ValueError(f"worker {index} has no addresses")
        self.index = int(index)
        self.src_lo = int(src_lo)
        self.src_hi = int(src_hi)
        self.addresses = [str(address) for address in addresses]
        self.timeout = timeout
        self._lock = new_lock("fleet.worker_pool")
        self._events = events if events is not None else EventLog()
        self._idle: List = []  # (address_index, QueryClient) pairs
        self._preferred = 0
        registry = registry if registry is not None else MetricsRegistry()
        self._calls = registry.counter("fleet.worker_calls",
                                       worker=self.index)
        self._failovers = registry.counter("fleet.worker_failovers",
                                           worker=self.index)
        self._failures = registry.counter("fleet.worker_failures",
                                          worker=self.index)

    @property
    def calls(self) -> int:
        return self._calls.value

    @property
    def failovers(self) -> int:
        return self._failovers.value

    @property
    def failures(self) -> int:
        return self._failures.value

    def _checkout(self):
        with self._lock:
            preferred = self._preferred
            while self._idle:
                address_index, client = self._idle.pop()
                if address_index == preferred:
                    return preferred, client
                client.close()  # pooled connection to a demoted replica
        return preferred, QueryClient.from_address(
            self.addresses[preferred], timeout=self.timeout)

    def _checkin(self, address_index: int, client: QueryClient) -> None:
        with self._lock:
            if address_index == self._preferred:
                self._idle.append((address_index, client))
                return
        client.close()

    def call(self, fn):
        """Run ``fn(client)`` with one replica-failover retry.

        Each replica attempt is its own ``fleet.worker_call`` trace span
        (a no-op without an active trace): a dead primary leaves an
        error-status span and the failover retry records a *sibling*
        span, so the trace tree shows both attempts side by side.
        """
        self._calls.inc()
        address_index, client = self._checkout()
        try:
            with trace.span("fleet.worker_call", worker=self.index,
                            address=self.addresses[address_index]):
                result = fn(client)
        except (OSError, protocol.ProtocolError) as first:
            client.close()
            self._failures.inc()
            # Flight-recorder events stamp the active trace automatically
            # (channel calls run in the request's copied context on the
            # fan-out threads), so a failover links back to the routed
            # query that tripped it.
            self._events.emit("fleet.replica_death", worker=self.index,
                              address=self.addresses[address_index],
                              error=str(first))
            with self._lock:
                fallback = (address_index + 1) % len(self.addresses)
            retry = QueryClient.from_address(self.addresses[fallback],
                                             timeout=self.timeout)
            try:
                with trace.span("fleet.worker_call", worker=self.index,
                                address=self.addresses[fallback],
                                failover=True):
                    result = fn(retry)
            except (OSError, protocol.ProtocolError) as second:
                retry.close()
                self._failures.inc()
                self._events.emit("fleet.replica_death", worker=self.index,
                                  address=self.addresses[fallback],
                                  error=str(second))
                raise ConnectionError(
                    f"worker {self.index} (sources [{self.src_lo}, "
                    f"{self.src_hi})) is unavailable: "
                    f"{self.addresses[address_index]} failed ({first}); "
                    f"retry on {self.addresses[fallback]} failed ({second})"
                ) from second
            self._failovers.inc()
            self._events.emit("fleet.failover", worker=self.index,
                              src_lo=self.src_lo, src_hi=self.src_hi,
                              from_address=self.addresses[address_index],
                              to_address=self.addresses[fallback])
            with self._lock:
                self._preferred = fallback
            self._checkin(fallback, retry)
            return result
        self._checkin(address_index, client)
        return result

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for _, client in idle:
            client.close()


class FleetStore(StoreQueryMixin):
    """Store façade over N range-sliced workers — the router's ``store``.

    Parameters
    ----------
    slices:
        One dict per worker, in range order:
        ``{"src_lo", "src_hi", "addresses": ["host:port", ...]}``.  The
        assigned half-open ranges must tile ``[0, n_vertices)`` exactly
        (empty ``lo == hi`` slices are legal and never routed to); the
        first address is the primary, the rest are failover replicas.
    info:
        The parent store's description
        (:func:`fleet_info_from_manifest`) — the fleet answers ``hello`` /
        ``subgraph`` naming with the *parent* identity, not a slice's.
    timeout:
        Per-call socket timeout applied to every worker channel.
    max_fanout_threads:
        Cap on concurrent worker calls across all in-flight requests.
    registry:
        :class:`~repro.obs.MetricsRegistry` the per-worker channel
        counters register into (a private one by default).  The router
        adopts it via the store's ``registry`` attribute, so the
        ``metrics`` op exposes fleet and server series together.
    """

    def __init__(self, slices: Sequence[dict], info: dict, *,
                 timeout: Optional[float] = 30.0,
                 max_fanout_threads: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.manifest = {"name": info.get("name") or ""}
        self.n_vertices = int(info["n_vertices"])
        self.total_edges = int(info["total_edges"])
        self.n_shards = int(info["n_shards"])
        self.payload_columns = tuple(info["payload_columns"])
        self._width = 2 + len(self.payload_columns)
        self.registry = registry if registry is not None else MetricsRegistry()
        # One flight recorder for the whole fleet façade: every channel's
        # failover / replica-death events land here, and the router adopts
        # it (the same way it adopts the registry) so its own events share
        # the timeline.
        self.events = EventLog()
        self._channels = [
            _WorkerChannel(index, entry["src_lo"], entry["src_hi"],
                           entry["addresses"], timeout=timeout,
                           registry=self.registry, events=self.events)
            for index, entry in enumerate(slices)
        ]
        expected = 0
        for channel in self._channels:
            if channel.src_lo != expected or channel.src_hi < channel.src_lo:
                raise ValueError(
                    "worker ranges must tile [0, n_vertices) contiguously; "
                    f"worker {channel.index} covers [{channel.src_lo}, "
                    f"{channel.src_hi}) after [0, {expected})")
            expected = channel.src_hi
        if expected != self.n_vertices:
            raise ValueError(
                f"worker ranges cover [0, {expected}) but the store has "
                f"{self.n_vertices} vertices")
        # Exclusive upper bounds, for owner lookup by searchsorted: empty
        # slices repeat the previous bound and side="right" skips them.
        self._his = np.asarray([c.src_hi for c in self._channels],
                               dtype=np.int64)
        if max_fanout_threads is None:
            max_fanout_threads = max(8, 2 * len(self._channels))
        self._fanout = ThreadPoolExecutor(
            max_workers=max_fanout_threads, thread_name_prefix="fleet-fanout")

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------
    def _owners(self, vs: np.ndarray) -> np.ndarray:
        """Index of the worker whose assigned range contains each vertex."""
        return np.searchsorted(self._his, vs, side="right")

    def _scatter(self, calls: List) -> List:
        """Run ``(channel, fn)`` pairs concurrently; results in call order.
        The first worker failure propagates (the router turns it into one
        error frame); remaining calls still complete in the background.

        Under an active trace each submission carries a fresh
        ``contextvars`` copy onto its fan-out thread (one copy per future
        — a shared ``Context`` cannot be entered concurrently), so the
        per-worker spans parent correctly under the routed request."""
        if len(calls) == 1:
            channel, fn = calls[0]
            return [channel.call(fn)]
        if trace.current() is not None:
            futures = [
                self._fanout.submit(
                    contextvars.copy_context().run, channel.call, fn)
                for channel, fn in calls]
        else:
            futures = [self._fanout.submit(channel.call, fn)
                       for channel, fn in calls]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Batch primitives (split by owner → fan out → merge in source order)
    # ------------------------------------------------------------------
    def degrees(self, vs: Sequence[int]) -> np.ndarray:
        vs = self._check_vertices(np.atleast_1d(np.asarray(vs, dtype=np.int64)))
        out = np.zeros(vs.shape[0], dtype=np.int64)
        if vs.size == 0:
            return out
        owners = self._owners(vs)
        calls, masks = [], []
        for index, channel in enumerate(self._channels):
            mask = owners == index
            if mask.any():
                sub = vs[mask]
                calls.append((channel, lambda c, sub=sub: c.degrees(sub)))
                masks.append(mask)
        for mask, values in zip(masks, self._scatter(calls)):
            out[mask] = values
        return out

    def edges_for_sources(self, vs: Sequence[int], *,
                          with_payload: bool = False) -> np.ndarray:
        if with_payload:
            self._require_payload()
        vs = np.unique(self._check_vertices(np.asarray(vs, dtype=np.int64)))
        if vs.size == 0:
            return self._finish_rows([], with_payload)
        owners = self._owners(vs)
        calls = []
        for index, channel in enumerate(self._channels):
            mask = owners == index
            if mask.any():
                sub = vs[mask]
                calls.append((channel, lambda c, sub=sub, wp=with_payload:
                              c.edges_for_sources(sub, with_payload=wp)))
        # Ranges are contiguous and each worker answers (src, dst)-sorted,
        # so worker order *is* global source order.
        parts = [part for part in self._scatter(calls) if part.shape[0]]
        return self._finish_rows(parts, with_payload)

    def edges_in_range(self, lo: int, hi: int, *,
                       with_payload: bool = False) -> np.ndarray:
        if with_payload:
            self._require_payload()
        lo, hi = int(lo), int(hi)
        calls = []
        for channel in self._channels:
            sub_lo = max(lo, channel.src_lo)
            sub_hi = min(hi, channel.src_hi)
            if sub_lo < sub_hi:
                # Slice fetches ride the binary bulk plane worker-side —
                # raw int64 bytes, no per-row JSON decode on the merge path.
                calls.append((channel,
                              lambda c, a=sub_lo, b=sub_hi, wp=with_payload:
                              c.edges_in_range(a, b, with_payload=wp,
                                               binary=True)))
        parts = [part for part in self._scatter(calls) if part.shape[0]]
        return self._finish_rows(parts, with_payload)

    def edge_payloads(self, ps: Sequence[int], qs: Sequence[int]) -> np.ndarray:
        self._require_payload()
        ps = self._check_vertices(np.atleast_1d(np.asarray(ps, dtype=np.int64)))
        qs = self._check_vertices(np.atleast_1d(np.asarray(qs, dtype=np.int64)))
        if ps.shape != qs.shape:
            raise ValueError(f"ps and qs must have matching shapes, "
                             f"got {ps.shape} and {qs.shape}")
        out = np.zeros((ps.shape[0], len(self.payload_columns)),
                       dtype=np.int64)
        if ps.size == 0:
            return out
        owners = self._owners(ps)  # an edge lives with its source's owner
        calls, masks = [], []
        for index, channel in enumerate(self._channels):
            mask = owners == index
            if mask.any():
                sub_ps, sub_qs = ps[mask], qs[mask]
                calls.append((channel, lambda c, p=sub_ps, q=sub_qs:
                              c.edge_payloads(p, q)))
                masks.append(mask)
        for mask, values in zip(masks, self._scatter(calls)):
            out[mask] = values
        return out

    # ------------------------------------------------------------------
    # Operational surface
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._channels)

    def describe(self) -> dict:
        """The ``fleet`` description shape (ranges, addresses, channel
        counters)."""
        return shaping.fleet_shape(
            [(c.src_lo, c.src_hi) for c in self._channels],
            [c.addresses for c in self._channels],
            calls=[c.calls for c in self._channels],
            failovers=[c.failovers for c in self._channels])

    def worker_reports(self) -> List[dict]:
        """One ``stats`` probe per worker, concurrently; a dead worker
        yields an error report instead of failing the rollup."""
        def probe(channel):
            try:
                stats = channel.call(lambda c: c.request("stats"))
                return shaping.fleet_worker_report(
                    channel.index, channel.src_lo, channel.src_hi,
                    stats=stats)
            except Exception as exc:
                return shaping.fleet_worker_report(
                    channel.index, channel.src_lo, channel.src_hi,
                    error=str(exc))
        futures = [self._fanout.submit(probe, channel)
                   for channel in self._channels]
        return [future.result() for future in futures]

    def stats(self) -> dict:
        """Fleet-level ``"store"`` counter section (summed worker
        counters) — what :meth:`ShardStoreServer.stats` would embed if it
        served this façade directly."""
        reports = self.worker_reports()
        sections = [report["stats"]["store"] for report in reports
                    if report.get("ok")]
        return shaping.fleet_store_counters(sections, n_shards=self.n_shards)

    def reset_stats(self) -> int:
        """Fan the ``reset_stats`` op out to every worker (fleet-wide
        counter reset — e.g. clearing benchmark warmup) and return the
        worker count for the answer shape.  A dead worker propagates as
        the usual channel :class:`ConnectionError`."""
        futures = [
            self._fanout.submit(
                channel.call, lambda c: c.request("reset_stats"))
            for channel in self._channels]
        for future in futures:
            future.result()
        return len(self._channels)

    def collect_profiles(self, action: str,
                         hz: Optional[float] = None) -> List[ProfileStats]:
        """Apply one ``profile`` *action* on every worker, concurrently,
        and return their resulting aggregates.  A worker that cannot
        answer contributes an empty aggregate rather than failing the
        merge — the fleet profile covers whoever is alive."""
        def fetch(channel):
            args = {"action": action}
            if hz is not None:
                args["hz"] = hz
            try:
                answer = channel.call(lambda c: c.request("profile", args))
                return ProfileStats.from_dict(answer.get("profile") or {})
            except Exception:
                return ProfileStats()
        futures = [self._fanout.submit(fetch, channel)
                   for channel in self._channels]
        return [future.result() for future in futures]

    def collect_events(self, limit: Optional[int] = None,
                       kind: Optional[str] = None):
        """Every worker's flight-recorder tail, concurrently —
        ``(per-worker event lists, summed drop counter)``.  A dead worker
        contributes nothing; its events are simply missing from the
        merged timeline."""
        def fetch(channel):
            args = {}
            if limit is not None:
                args["limit"] = limit
            if kind is not None:
                args["kind"] = kind
            try:
                answer = channel.call(lambda c: c.request("events", args))
                return (list(answer.get("events", ())),
                        int(answer.get("dropped", 0)))
            except Exception:
                return [], 0
        futures = [self._fanout.submit(fetch, channel)
                   for channel in self._channels]
        results = [future.result() for future in futures]
        return ([events for events, _ in results],
                sum(dropped for _, dropped in results))

    def health_reports(self) -> List[dict]:
        """One ``health`` probe per worker, concurrently; a dead worker
        yields an error report — naming it and its assigned range — and
        the rollup keeps serving."""
        def probe(channel):
            try:
                health = channel.call(lambda c: c.request("health"))
                return shaping.fleet_worker_report(
                    channel.index, channel.src_lo, channel.src_hi,
                    health=health)
            except Exception as exc:
                return shaping.fleet_worker_report(
                    channel.index, channel.src_lo, channel.src_hi,
                    error=str(exc))
        futures = [self._fanout.submit(probe, channel)
                   for channel in self._channels]
        return [future.result() for future in futures]

    def collect_trace(self, trace_id: str) -> List[dict]:
        """Every worker's recorded spans for *trace_id*, concurrently; a
        worker that cannot answer contributes nothing rather than failing
        the merge (its spans are simply missing from the tree)."""
        def fetch(channel):
            try:
                answer = channel.call(
                    lambda c: c.request("trace", {"id": trace_id}))
                return list(answer.get("spans", ()))
            except Exception:
                return []
        futures = [self._fanout.submit(fetch, channel)
                   for channel in self._channels]
        spans: List[dict] = []
        for future in futures:
            spans.extend(future.result())
        return spans

    def close(self) -> None:
        self._fanout.shutdown(wait=True)
        for channel in self._channels:
            channel.close()

    def __repr__(self) -> str:
        return (f"FleetStore(workers={len(self._channels)}, "
                f"n_vertices={self.n_vertices}, "
                f"total_edges={self.total_edges}, "
                f"payload_columns={list(self.payload_columns)})")


class RangeRouter(ShardStoreServer):
    """A :class:`ShardStoreServer` whose store is a :class:`FleetStore`.

    Everything protocol-facing — framing, coalescing, the binary plane,
    error frames — is inherited; the router only adds the fleet sections to
    ``hello``, replaces ``stats`` with the per-worker rollup, and widens
    ``trace`` to merge each worker's spans into its own (both do wire I/O
    and therefore run on the executor, never the event loop).  The fleet's
    registry is adopted as the router's, so ``metrics`` serves the
    ``fleet.worker_*`` series alongside the inherited ``serve.*`` ones,
    and the inherited ``reset_stats`` fans out to every worker through
    :meth:`FleetStore.reset_stats`.
    """

    def __init__(self, fleet: FleetStore, **kwargs):
        if not isinstance(fleet, FleetStore):
            raise TypeError(
                f"RangeRouter serves a FleetStore, got {type(fleet).__name__}")
        super().__init__(fleet, **kwargs)

    @property
    def fleet(self) -> FleetStore:
        return self.store

    async def _op_hello(self, args: dict) -> dict:
        return shaping.hello_shape(self._ops,
                                   shaping.shape_store_info(self.store),
                                   fleet=self.store.describe(),
                                   started_at=self._started_at_wall,
                                   uptime_s=self._uptime_s())

    async def _op_stats(self, args: dict) -> dict:
        # Unlike the base class the rollup talks to N workers — executor
        # work, not event-loop work.
        return await self._run_store(
            lambda: shaping.stats_answer_shape(self.stats()))

    async def _op_trace(self, args: dict) -> dict:
        trace_id = _arg(args, "id")
        if not isinstance(trace_id, str):
            raise ValueError("request arg 'id' must be a string trace id")
        worker_spans = await self._run_store(
            lambda: self.store.collect_trace(trace_id))
        return shaping.trace_answer_shape(
            trace_id, self.recorder.spans(trace_id) + worker_spans)

    def _profile(self, action: str, hz, collapsed: bool) -> dict:
        """The fleet ``profile`` rollup (already on the executor via the
        inherited ``_op_profile``): apply the action on every worker, then
        on the router itself, and answer with the merged aggregate.

        The workers act *before* the router, so after a fleet-wide
        ``stop`` every aggregate in the sum is frozen — the merged answer
        equals the router's own profile plus each worker's directly
        fetched snapshot, exactly."""
        worker_profiles = self.store.collect_profiles(action, hz=hz)
        self._apply_profile_action(action, hz)
        own = self.profiler.snapshot()
        merged = own + sum(worker_profiles, ProfileStats())
        return shaping.profile_shape(
            action, merged.as_dict(), running=self.profiler.running,
            hz=self.profiler.hz,
            collapsed=merged.collapsed() if collapsed else None,
            router=own.as_dict(), workers=self.store.n_workers)

    async def _op_events(self, args: dict) -> dict:
        limit, kind = self._events_args(args)
        return await self._run_store(self._fleet_events, limit, kind)

    def _fleet_events(self, limit, kind) -> dict:
        worker_events, worker_dropped = self.store.collect_events(
            limit=limit, kind=kind)
        own = self.events.tail(limit, kind=kind)
        merged = merge_events([own, *worker_events], limit=limit)
        return shaping.events_shape(
            merged, dropped=self.events.dropped + worker_dropped,
            workers=self.store.n_workers)

    async def _op_health(self, args: dict) -> dict:
        return await self._run_store(self._fleet_health)

    def _fleet_health(self) -> dict:
        reports = self.store.health_reports()
        down = [{"worker": report["worker"], "src_lo": report["src_lo"],
                 "src_hi": report["src_hi"], "error": report["error"]}
                for report in reports if not report.get("ok")]
        return shaping.health_shape(
            status="degraded" if down else "ok",
            fleet={"workers": self.store.n_workers, "down": len(down)},
            workers=reports, down=down, **self._health_sections())

    def stats(self) -> dict:
        return shaping.fleet_stats_shape(
            self._server_stats(), self.store.describe(),
            self.store.worker_reports(), n_shards=self.store.n_shards)


class ThreadedRouter(ThreadedServer):
    """A :class:`RangeRouter` on a background thread (the
    :class:`~repro.serve.ThreadedServer` lifecycle, router construction)."""

    def __init__(self, fleet: FleetStore, **kwargs):
        super().__init__(fleet, server_cls=RangeRouter, **kwargs)
