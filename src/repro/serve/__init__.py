"""Network query service over compacted shard stores.

The serving layer of the "millions of users" story: PRs 2–4 built the
out-of-core side (streaming spill → compaction → :class:`~repro.store.ShardStore`
range queries with exact per-edge ground truth); this package puts that
store behind a socket so consumers no longer run in-process:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, one response
  per request, error frames carrying the store's exception messages
  verbatim, the version rules recorded in the ROADMAP, and (v2) the opt-in
  binary bulk frame that ships ``edges_in_range`` rows as raw mmapped
  bytes instead of JSON lists;
* :mod:`repro.serve.shaping` — the single definition of every query's JSON
  answer shape, shared with the CLI's ``query --json`` so the two surfaces
  cannot drift;
* :class:`ShardStoreServer` — the asyncio front-end: one concurrent-safe
  store per worker, store work on a bounded thread pool, concurrent scalar
  ``degree`` / ``neighbors`` requests coalesced into the store's batch-first
  entry points, ``stats`` / graceful-shutdown operational surface
  (:class:`ThreadedServer` runs it on a background thread for synchronous
  callers);
* :class:`QueryClient` — the blocking wire client: reused connection, batch
  helpers, and answers reconstructed to byte-equality with the in-process
  store (``int64`` rows, rebuilt :class:`~repro.graphs.egonet.Egonet` /
  :class:`~repro.graphs.Graph` objects);
* :mod:`repro.serve.router` — the horizontal-scale tier:
  :class:`RangeRouter` fronts N vertex-range slice workers
  (:func:`~repro.store.partition_manifest` slices), splitting batch
  requests by manifest ranges, fanning out concurrently with one replica
  failover retry, and merging answers in source order — byte-equal to a
  single store, over the same protocol.

CLI: ``repro-kron serve STORE`` stands a server up (``--fleet N`` serves a
router over N in-process slice workers);
``repro-kron query --connect HOST:PORT ...`` runs the same query surface
remotely against either.
"""

from repro.serve.client import QueryClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    ProtocolError,
    ServerError,
)
from repro.serve.router import (
    FleetStore,
    RangeRouter,
    ThreadedRouter,
    fleet_info_from_manifest,
)
from repro.serve.server import ShardStoreServer, ThreadedServer

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "FleetStore",
    "ProtocolError",
    "QueryClient",
    "RangeRouter",
    "ServerError",
    "ShardStoreServer",
    "ThreadedRouter",
    "ThreadedServer",
    "fleet_info_from_manifest",
]
