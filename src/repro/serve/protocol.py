"""Length-prefixed JSON wire protocol for the shard-store query service.

One frame = a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding a single object.  Requests are::

    {"v": 2, "op": "degree", "args": {"vertex": 12345}}

and every request gets exactly one JSON response frame::

    {"ok": true,  "result": {...}}                      # success
    {"ok": false, "error": {"kind": "ValueError",       # failure
                            "message": "..."}}

The ``result`` shapes are produced by :mod:`repro.serve.shaping` — the same
helpers behind the CLI's ``query --json`` output, so the wire and the CLI
cannot drift.  Error frames carry the *store's* exception text verbatim
(``kind`` names the exception class), and :func:`raise_error` re-raises the
matching Python exception on the client side: a served
``store.edge_payloads`` miss raises the same :class:`ValueError` message a
local call would.

**Binary bulk plane (protocol v2).**  A v2 request may opt in to raw-rows
transfer (``"binary": true`` in its ``args``).  The success response is then
*two* frames: the usual JSON control frame, whose ``result`` carries a
``"rows"`` descriptor ``{"shape": [m, w], "dtype": "int64", "nbytes": N}``,
immediately followed by **one length-prefixed binary frame** — the same
4-byte big-endian length header, but the body is the raw little-endian
C-order array bytes (a ``memoryview`` of the server's mmapped shard rows,
never a Python-list encode).  A binary frame follows a JSON frame *only*
when that frame is a success whose ``result`` contains ``"rows"``; error
responses are always a single JSON frame.  JSON stays the control and error
plane.  v1 requests never receive a binary frame — a v1 request with
``"binary": true`` is rejected with a ``ProtocolError`` frame (connection
kept; the framing is intact).

Framing rules (recorded in the ROADMAP's serving conventions):

* ``v`` must be in :data:`SUPPORTED_PROTOCOL_VERSIONS`; a server rejects any
  other value with a ``ProtocolError`` frame but keeps the connection (the
  framing is intact).  Clients stamp :data:`PROTOCOL_VERSION`, and discover
  a server's ceiling via the ``hello`` op before relying on v2 features.
* Unknown ``op`` / bad ``args`` → error frame, connection stays open.
* A frame that cannot be trusted — oversized length prefix, non-JSON body,
  non-object body, a binary frame whose length disagrees with its
  descriptor's ``nbytes`` — gets one ``ProtocolError`` frame (server side)
  or raises :class:`ProtocolError` (client side) and the connection is
  closed (the byte stream may be desynchronized).
* Adding optional response keys or new ops does **not** bump the version;
  changing an existing shape or the framing does.  v2 added a second frame
  *after* an opt-in success response — a framing change — but v1 request
  streams are served byte-identically to a v1 server.
* The same additive rule covers optional *request* keys: a traced client
  stamps ``"trace": {"id": <hex>, "span": <hex>}`` beside ``op``/``args``
  (PR 8) and the server parents its spans under it, but the key is
  optional and ignored by older servers — no version bump, and v1
  requests may carry it too.
* Worked examples of the additive-op rule: PR 10's observability ops —
  ``profile`` (drive the sampling profiler), ``events`` (the flight
  recorder's tail), ``health`` (liveness rollup) — are ordinary
  single-JSON-frame request/response ops and ship with **no** version
  bump; an older client simply never sends them, and an older server
  answers them with the standard unknown-``op`` error frame.

The sync helpers (:func:`write_frame` / :func:`read_frame`) serve the
blocking client; the server uses :func:`read_frame_async` over an
:class:`asyncio.StreamReader`.  Both directions enforce a frame-size cap so
a corrupt or hostile length prefix cannot trigger an unbounded allocation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "MAX_FRAME_BYTES",
    "DEFAULT_MAX_REQUEST_BYTES",
    "ProtocolError",
    "ServerError",
    "encode_frame",
    "decode_body",
    "request_frame",
    "result_frame",
    "error_frame",
    "raise_error",
    "write_frame",
    "read_frame",
    "read_frame_async",
    "binary_frame_header",
    "read_binary_frame",
]

#: Version stamped into every request; bumped only for incompatible shape or
#: framing changes (additive keys and new ops ride on the same version).
#: v2 added the opt-in binary bulk frame after a success response.
PROTOCOL_VERSION = 2

#: Request versions the server accepts.  v1 requests are served exactly as a
#: v1 server would serve them (single JSON frame per response, never binary).
SUPPORTED_PROTOCOL_VERSIONS = (1, 2)

_HEADER = struct.Struct(">I")

#: Hard ceiling on any frame in either direction — a length prefix beyond
#: this is treated as stream corruption, not a large result.
MAX_FRAME_BYTES = 1 << 30

#: Default server-side cap on *request* frames.  Requests are small (op name
#: plus index arrays); responses may be large, so the caps are asymmetric.
DEFAULT_MAX_REQUEST_BYTES = 16 << 20


class ProtocolError(ValueError):
    """A frame violated the wire protocol (size, encoding, or shape)."""


class ServerError(RuntimeError):
    """Server-side failure of a kind the client cannot map to a local
    exception class (the error frame's ``kind`` is in the message)."""


# ----------------------------------------------------------------------
# Frame encode / decode
# ----------------------------------------------------------------------
def encode_frame(obj: Any, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one JSON object into a length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte cap")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body, mapping every failure to :class:`ProtocolError`."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


# ----------------------------------------------------------------------
# Canonical frame shapes
# ----------------------------------------------------------------------
def request_frame(op: str, args: Optional[dict] = None) -> dict:
    """The request object for one operation (version stamped in)."""
    return {"v": PROTOCOL_VERSION, "op": op, "args": args or {}}


def result_frame(result: Any) -> dict:
    """A success response wrapping a :mod:`repro.serve.shaping` shape."""
    return {"ok": True, "result": result}


#: Exception classes an error frame round-trips exactly; anything else
#: surfaces as :class:`ServerError` on the client.
_ERROR_KINDS = {
    "ValueError": ValueError,
    "IndexError": IndexError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "NotImplementedError": NotImplementedError,
    "ProtocolError": ProtocolError,
}


def error_frame(exc: BaseException) -> dict:
    """An error response carrying the exception's class name and message."""
    kind = type(exc).__name__
    if kind not in _ERROR_KINDS:
        kind = "InternalError"
    return {"ok": False, "error": {"kind": kind, "message": str(exc)}}


def raise_error(error: dict) -> None:
    """Re-raise the exception an error frame describes (client side)."""
    kind = error.get("kind", "InternalError")
    message = error.get("message", "")
    cls = _ERROR_KINDS.get(kind)
    if cls is None:
        raise ServerError(f"{kind}: {message}")
    raise cls(message)


# ----------------------------------------------------------------------
# Blocking socket I/O (the synchronous client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; ``None`` on a clean EOF at a frame boundary,
    :class:`ProtocolError` on EOF mid-frame."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, obj: Any, *,
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(obj, max_bytes=max_bytes))


def read_frame(sock: socket.socket, *,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the {max_bytes}-byte cap")
    body = _recv_exactly(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_body(body)


# ----------------------------------------------------------------------
# Binary bulk frames (protocol v2)
# ----------------------------------------------------------------------
def binary_frame_header(nbytes: int, *,
                        max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """The 4-byte length header for a binary frame of *nbytes* body bytes.

    The caller writes this header followed by the raw array bytes (a
    ``memoryview`` of the mmapped rows on the server) — the body is never
    copied into a Python-level frame buffer the way JSON bodies are.
    """
    if not 0 <= nbytes <= max_bytes:
        raise ProtocolError(
            f"binary frame of {nbytes} bytes exceeds the {max_bytes}-byte cap")
    return _HEADER.pack(nbytes)


def read_binary_frame(sock: socket.socket, *,
                      max_bytes: int = MAX_FRAME_BYTES) -> bytearray:
    """Read one binary frame from a blocking socket into a ``bytearray``.

    Unlike :func:`read_frame` there is no clean-EOF case: a binary frame is
    only ever read immediately after a control frame announced it, so EOF
    anywhere is mid-response desynchronization and raises
    :class:`ProtocolError`.  The mutable buffer lets the client wrap it with
    ``np.frombuffer`` into a *writable* array without another copy.
    """
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        raise ProtocolError("connection closed before announced binary frame")
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming binary frame of {length} bytes exceeds the "
            f"{max_bytes}-byte cap")
    buf = bytearray(length)
    view = memoryview(buf)
    received = 0
    while received < length:
        n = sock.recv_into(view[received:], length - received)
        if not n:
            raise ProtocolError(
                f"connection closed mid-binary-frame "
                f"({received} of {length} bytes)")
        received += n
    return buf


# ----------------------------------------------------------------------
# Asyncio stream I/O (the server)
# ----------------------------------------------------------------------
async def read_frame_async(reader: asyncio.StreamReader, *,
                           max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the middle of a frame — the mid-request-disconnect case — raises
    :class:`ProtocolError` so the connection handler can drop the peer
    without tearing down the server.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the {max_bytes}-byte cap")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(exc.partial)} of {length} bytes)") from None
    return decode_body(body)
