"""Length-prefixed JSON wire protocol for the shard-store query service.

One frame = a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding a single object.  Requests are::

    {"v": 1, "op": "degree", "args": {"vertex": 12345}}

and every request gets exactly one response frame::

    {"ok": true,  "result": {...}}                      # success
    {"ok": false, "error": {"kind": "ValueError",       # failure
                            "message": "..."}}

The ``result`` shapes are produced by :mod:`repro.serve.shaping` — the same
helpers behind the CLI's ``query --json`` output, so the wire and the CLI
cannot drift.  Error frames carry the *store's* exception text verbatim
(``kind`` names the exception class), and :func:`raise_error` re-raises the
matching Python exception on the client side: a served
``store.edge_payloads`` miss raises the same :class:`ValueError` message a
local call would.

Framing rules (recorded in the ROADMAP's serving conventions):

* ``v`` is :data:`PROTOCOL_VERSION`; a server rejects any other value with a
  ``ProtocolError`` frame but keeps the connection (the framing is intact).
* Unknown ``op`` / bad ``args`` → error frame, connection stays open.
* A frame that cannot be trusted — oversized length prefix, non-JSON body,
  non-object body — gets one ``ProtocolError`` frame and the connection is
  closed (the byte stream may be desynchronized).
* Adding optional response keys or new ops does **not** bump the version;
  changing an existing shape or the framing does.

The sync helpers (:func:`write_frame` / :func:`read_frame`) serve the
blocking client; the server uses :func:`read_frame_async` over an
:class:`asyncio.StreamReader`.  Both directions enforce a frame-size cap so
a corrupt or hostile length prefix cannot trigger an unbounded allocation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "DEFAULT_MAX_REQUEST_BYTES",
    "ProtocolError",
    "ServerError",
    "encode_frame",
    "decode_body",
    "request_frame",
    "result_frame",
    "error_frame",
    "raise_error",
    "write_frame",
    "read_frame",
    "read_frame_async",
]

#: Version stamped into every request; bumped only for incompatible shape or
#: framing changes (additive keys and new ops ride on the same version).
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")

#: Hard ceiling on any frame in either direction — a length prefix beyond
#: this is treated as stream corruption, not a large result.
MAX_FRAME_BYTES = 1 << 30

#: Default server-side cap on *request* frames.  Requests are small (op name
#: plus index arrays); responses may be large, so the caps are asymmetric.
DEFAULT_MAX_REQUEST_BYTES = 16 << 20


class ProtocolError(ValueError):
    """A frame violated the wire protocol (size, encoding, or shape)."""


class ServerError(RuntimeError):
    """Server-side failure of a kind the client cannot map to a local
    exception class (the error frame's ``kind`` is in the message)."""


# ----------------------------------------------------------------------
# Frame encode / decode
# ----------------------------------------------------------------------
def encode_frame(obj: Any, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one JSON object into a length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte cap")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body, mapping every failure to :class:`ProtocolError`."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


# ----------------------------------------------------------------------
# Canonical frame shapes
# ----------------------------------------------------------------------
def request_frame(op: str, args: Optional[dict] = None) -> dict:
    """The request object for one operation (version stamped in)."""
    return {"v": PROTOCOL_VERSION, "op": op, "args": args or {}}


def result_frame(result: Any) -> dict:
    """A success response wrapping a :mod:`repro.serve.shaping` shape."""
    return {"ok": True, "result": result}


#: Exception classes an error frame round-trips exactly; anything else
#: surfaces as :class:`ServerError` on the client.
_ERROR_KINDS = {
    "ValueError": ValueError,
    "IndexError": IndexError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "NotImplementedError": NotImplementedError,
    "ProtocolError": ProtocolError,
}


def error_frame(exc: BaseException) -> dict:
    """An error response carrying the exception's class name and message."""
    kind = type(exc).__name__
    if kind not in _ERROR_KINDS:
        kind = "InternalError"
    return {"ok": False, "error": {"kind": kind, "message": str(exc)}}


def raise_error(error: dict) -> None:
    """Re-raise the exception an error frame describes (client side)."""
    kind = error.get("kind", "InternalError")
    message = error.get("message", "")
    cls = _ERROR_KINDS.get(kind)
    if cls is None:
        raise ServerError(f"{kind}: {message}")
    raise cls(message)


# ----------------------------------------------------------------------
# Blocking socket I/O (the synchronous client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; ``None`` on a clean EOF at a frame boundary,
    :class:`ProtocolError` on EOF mid-frame."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, obj: Any, *,
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(obj, max_bytes=max_bytes))


def read_frame(sock: socket.socket, *,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the {max_bytes}-byte cap")
    body = _recv_exactly(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_body(body)


# ----------------------------------------------------------------------
# Asyncio stream I/O (the server)
# ----------------------------------------------------------------------
async def read_frame_async(reader: asyncio.StreamReader, *,
                           max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the middle of a frame — the mid-request-disconnect case — raises
    :class:`ProtocolError` so the connection handler can drop the peer
    without tearing down the server.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the {max_bytes}-byte cap")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(exc.partial)} of {length} bytes)") from None
    return decode_body(body)
