"""One JSON shape per query, shared by the CLI and the wire protocol.

``repro-kron query --json`` and the :mod:`repro.serve` server answer the
same questions from the same :class:`~repro.store.ShardStore`; this module
is the single place their answer *shapes* are defined, so the two surfaces
cannot drift.  Every function takes the store plus plain-Python arguments
and returns a JSON-serializable dict whose scalars are built-in ``int`` /
``str`` — never numpy types, which :mod:`json` rejects.

The CLI uses :func:`shape_degree` / :func:`shape_neighbors` /
:func:`shape_egonet` / :func:`shape_range` directly.  The server adds the
batch and reconstruction-oriented shapes (:func:`shape_degrees`,
:func:`shape_subgraph`, :func:`shape_edge_payloads`) and passes
``include_members=True`` to :func:`shape_egonet` so a remote client can
rebuild the full :class:`~repro.graphs.egonet.Egonet`;
:func:`induced_adjacency` is the client-side inverse (identical relabelling
to :meth:`ShardStore.subgraph_adjacency`, so the reconstructed adjacency is
exactly the in-process answer).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.obs import render_prometheus
from repro.serve.protocol import PROTOCOL_VERSION, SUPPORTED_PROTOCOL_VERSIONS

__all__ = [
    "metrics_shape",
    "trace_answer_shape",
    "reset_stats_shape",
    "profile_shape",
    "events_shape",
    "health_shape",
    "degree_shape",
    "neighbors_shape",
    "shape_degree",
    "shape_degrees",
    "shape_neighbors",
    "shape_egonet",
    "range_shape",
    "shape_range",
    "shape_range_binary",
    "binary_rows_descriptor",
    "rows_from_binary",
    "edges_for_sources_shape",
    "shape_edges_for_sources",
    "shape_subgraph",
    "shape_edge_payloads",
    "shape_store_info",
    "hello_shape",
    "stats_answer_shape",
    "shutdown_shape",
    "fleet_shape",
    "fleet_worker_report",
    "fleet_store_counters",
    "fleet_stats_shape",
    "induced_adjacency",
]


def _int_list(values) -> list:
    return [int(x) for x in values]


def _rows_list(rows: np.ndarray) -> list:
    return [[int(x) for x in row] for row in rows]


def _induced_edges_from_graph(vertices: np.ndarray, adjacency) -> np.ndarray:
    """Global-id ``(src, dst)``-sorted edge list of an induced subgraph whose
    adjacency was already gathered — avoids a second shard pass when serving
    an egonet (the stored rows and the adjacency carry the same entries)."""
    counts = np.diff(adjacency.indptr)
    local_src = np.repeat(np.arange(vertices.shape[0]), counts)
    edges = np.column_stack([vertices[local_src],
                             vertices[adjacency.indices]]).astype(np.int64)
    return edges[np.lexsort((edges[:, 1], edges[:, 0]))]


def degree_shape(vertex: int, degree: int) -> dict:
    """Assemble a ``degree`` answer from an already-computed value — the
    entry point the server's request coalescer shares with
    :func:`shape_degree`, so batched and direct answers cannot differ."""
    return {"query": "degree", "vertex": int(vertex), "degree": int(degree)}


def shape_degree(store, vertex: int) -> dict:
    """``degree`` answer: self loop excluded, the
    :meth:`repro.core.KroneckerGraph.degree` convention."""
    vertex = int(vertex)
    return degree_shape(vertex, store.degree(vertex))


def shape_degrees(store, vertices: Sequence[int]) -> dict:
    """Batch ``degrees`` answer (array-in / array-out, PR 1 conventions)."""
    vs = np.asarray(vertices, dtype=np.int64)
    return {"query": "degrees",
            "vertices": _int_list(vs),
            "degrees": _int_list(store.degrees(vs))}


def neighbors_shape(vertex: int, rows: np.ndarray,
                    payload_columns: Sequence[str], *,
                    with_payload: bool) -> dict:
    """Assemble a ``neighbors`` answer from the stored rows of one source
    vertex — shared by :func:`shape_neighbors` and the server's coalesced
    batch path (which slices one ``edges_for_sources`` gather per batch)."""
    vertex = int(vertex)
    rows = rows[rows[:, 1] != vertex]  # store convention: self loop excluded
    result = {"query": "neighbors", "vertex": vertex,
              "neighbors": _int_list(rows[:, 1])}
    if with_payload:
        result["payload"] = {
            name: _int_list(rows[:, 2 + offset])
            for offset, name in enumerate(payload_columns)
        }
    result["count"] = len(result["neighbors"])
    return result


def shape_neighbors(store, vertex: int, *, with_payload: bool = False) -> dict:
    """``neighbors`` answer: sorted neighbour ids, self loop excluded; with
    ``with_payload`` the store's ground-truth columns ride along, keyed by
    column name."""
    vertex = int(vertex)
    rows = store.edges_for_sources([vertex], with_payload=with_payload)
    return neighbors_shape(vertex, rows, store.payload_columns,
                           with_payload=with_payload)


def shape_egonet(store, vertex: int, *, with_payload: bool = False,
                 include_members: bool = False) -> dict:
    """``egonet`` answer: the Figure 7 summary statistics, plus (server mode,
    ``include_members=True``) the vertex list and induced edges a remote
    client needs to rebuild the :class:`~repro.graphs.egonet.Egonet`."""
    vertex = int(vertex)
    if with_payload:
        ego, rows = store.egonet(vertex, with_payload=True)
    else:
        ego, rows = store.egonet(vertex), None
    result = {
        "query": "egonet",
        "vertex": vertex,
        "n_vertices": int(ego.n_vertices),
        "centre_degree": int(ego.degree_of_center()),
        "triangles_at_centre": int(ego.triangles_at_center()),
    }
    if rows is not None:
        result["n_induced_edges"] = int(rows.shape[0])
        result["payload_totals"] = {
            name: int(rows[:, 2 + offset].sum())
            for offset, name in enumerate(store.payload_columns)
        }
    if include_members:
        result["vertices"] = _int_list(ego.vertices)
        if with_payload:
            # The payload rows already carry the topology in their first two
            # columns — shipping a separate "edges" list would double the
            # frame on a JSON-serialization-bound path.
            result["rows"] = _rows_list(rows)
            result["columns"] = ["src", "dst", *store.payload_columns]
        else:
            result["edges"] = _rows_list(_induced_edges_from_graph(
                ego.vertices, ego.graph.adjacency))
    return result


def range_shape(lo: int, hi: int, rows: np.ndarray,
                columns: Sequence[str], *,
                limit: Optional[int] = None) -> dict:
    """Assemble an ``edges_in_range`` answer from already-gathered rows —
    shared by :func:`shape_range` and the CLI's ``--binary`` path, which
    fetches the rows over the bulk plane and must display the exact shape
    the JSON plane would have produced."""
    lo, hi = int(lo), int(hi)
    shown = rows if limit is None else rows[:limit]
    return {
        "query": "edges_in_range",
        "lo": lo,
        "hi": hi,
        "n_edges": int(rows.shape[0]),
        "columns": list(columns),
        "edges": _rows_list(shown),
    }


def shape_range(store, lo: int, hi: int, *, with_payload: bool = False,
                limit: Optional[int] = None) -> dict:
    """``edges_in_range`` answer: ``[lo, hi)`` source range, ``(src, dst)``
    sorted rows.  ``limit`` truncates the listed rows (the CLI's terminal
    default); ``None`` — the wire default — returns every row, and
    ``n_edges`` always counts the full answer."""
    rows = store.edges_in_range(int(lo), int(hi), with_payload=with_payload)
    columns = ["src", "dst"]
    if with_payload:
        columns += list(store.payload_columns)
    return range_shape(lo, hi, rows, columns, limit=limit)


def binary_rows_descriptor(rows: np.ndarray) -> dict:
    """The ``"rows"`` descriptor a v2 control frame uses to announce the
    binary frame that follows: shape, dtype name, and exact byte count.
    *rows* must already be the contiguous array whose raw bytes will be
    sent."""
    return {
        "shape": [int(d) for d in rows.shape],
        "dtype": str(rows.dtype),
        "nbytes": int(rows.nbytes),
    }


def shape_range_binary(store, lo: int, hi: int, *,
                       with_payload: bool = False):
    """Binary-plane ``edges_in_range`` answer: ``(control, rows)`` where
    *control* is the JSON control frame's ``result`` (descriptor in
    ``"rows"``, no ``"edges"`` list) and *rows* is the contiguous ``int64``
    array whose raw bytes travel as the follow-up binary frame.

    ``np.ascontiguousarray`` is a no-op when the store's answer is already
    a contiguous slice of a mapped shard — the common warm-cache case — so
    the server sends a ``memoryview`` straight over the mapping; only
    non-contiguous views (payload stores queried without payload) pay one
    gather."""
    lo, hi = int(lo), int(hi)
    rows = np.ascontiguousarray(
        store.edges_in_range(lo, hi, with_payload=with_payload))
    columns = ["src", "dst"]
    if with_payload:
        columns += list(store.payload_columns)
    control = {
        "query": "edges_in_range",
        "lo": lo,
        "hi": hi,
        "n_edges": int(rows.shape[0]),
        "columns": columns,
        "rows": binary_rows_descriptor(rows),
    }
    return control, rows


def rows_from_binary(descriptor: dict, buffer) -> np.ndarray:
    """Rebuild the rows array a binary frame carried (client side).

    Validates the buffer length against the descriptor's ``nbytes`` before
    wrapping — a mismatch means the stream is desynchronized and raises
    :class:`ValueError` (the client maps it to a protocol failure and drops
    the connection).  Passing a mutable *buffer* (``bytearray``) yields a
    writable array with zero extra copies."""
    shape = tuple(int(d) for d in descriptor["shape"])
    dtype = np.dtype(str(descriptor["dtype"]))
    nbytes = int(descriptor["nbytes"])
    if len(buffer) != nbytes:
        raise ValueError(
            f"binary frame carried {len(buffer)} bytes but the descriptor "
            f"announced {nbytes}")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != nbytes:
        raise ValueError(
            f"descriptor is inconsistent: shape {shape} × {dtype} needs "
            f"{expected} bytes, descriptor says {nbytes}")
    return np.frombuffer(buffer, dtype=dtype).reshape(shape)


def edges_for_sources_shape(vertices: np.ndarray, rows: np.ndarray,
                            columns: Sequence[str]) -> dict:
    """Assemble an ``edges_for_sources`` answer from already-gathered rows."""
    return {
        "query": "edges_for_sources",
        "vertices": _int_list(vertices),
        "n_edges": int(rows.shape[0]),
        "columns": list(columns),
        "edges": _rows_list(rows),
    }


def shape_edges_for_sources(store, vertices: Sequence[int], *,
                            with_payload: bool = False) -> dict:
    """``edges_for_sources`` answer: every stored row whose source is in
    *vertices* (deduplicated), ``(src, dst)``-sorted — the batch gather the
    range router splits by worker ranges, exposed on the wire so remote
    callers (and the router itself) can compose subgraph-style queries from
    one round trip per slice."""
    vs = np.asarray(vertices, dtype=np.int64)
    rows = store.edges_for_sources(vs, with_payload=with_payload)
    columns = ["src", "dst"]
    if with_payload:
        columns += list(store.payload_columns)
    return edges_for_sources_shape(vs, rows, columns)


def shape_subgraph(store, vertices: Sequence[int], *,
                   with_payload: bool = False) -> dict:
    """``subgraph`` answer: the induced stored rows plus the vertex list in
    the caller's order, from which :func:`induced_adjacency` rebuilds the
    exact :meth:`ShardStore.subgraph_adjacency` matrix."""
    vs = np.asarray(vertices, dtype=np.int64)
    if np.unique(vs).size != vs.size:
        # Reject before the gather: decoding shards for a request that is
        # doomed anyway would be free denial-of-work.
        raise ValueError("subgraph vertex selection contains duplicates")
    rows = store.subgraph_edges(vs, with_payload=with_payload)
    result = {
        "query": "subgraph",
        "vertices": _int_list(vs),
        "n_vertices": int(vs.size),
        "n_edges": int(rows.shape[0]),
        "name": f"{store.manifest.get('name') or 'store'}[sub]",
    }
    if with_payload:
        result["rows"] = _rows_list(rows)
        result["columns"] = ["src", "dst", *store.payload_columns]
    else:
        result["edges"] = _rows_list(rows)
    return result


def shape_edge_payloads(store, ps: Sequence[int], qs: Sequence[int]) -> dict:
    """``edge_payloads`` answer: per-edge ground-truth rows for the queried
    ``(ps[t], qs[t])`` pairs (every pair must be a stored edge)."""
    values = store.edge_payloads(np.asarray(ps, dtype=np.int64),
                                 np.asarray(qs, dtype=np.int64))
    return {
        "query": "edge_payloads",
        "columns": list(store.payload_columns),
        "payloads": _rows_list(values),
    }


def shape_store_info(store) -> dict:
    """The ``hello`` answer: what a client needs to know about the store."""
    return {
        "n_vertices": int(store.n_vertices),
        "total_edges": int(store.total_edges),
        "n_shards": int(store.n_shards),
        "payload_columns": list(store.payload_columns),
        "name": store.manifest.get("name"),
    }


def hello_shape(ops: Sequence[str], store_info: dict, *,
                binary_ops: Sequence[str] = ("edges_in_range",),
                fleet: Optional[dict] = None,
                started_at: Optional[float] = None,
                uptime_s: Optional[float] = None) -> dict:
    """The ``hello`` answer envelope: protocol capabilities plus the store
    description.  A range router adds a ``"fleet"`` section describing its
    worker slices; everything else is identical to a single server, which is
    what makes routing transparent to ``query --connect``.

    ``started_at`` (wall-clock epoch seconds) / ``uptime_s`` are additive
    server-metadata keys — omitted when unknown, never version-bumping —
    so an operator's first round trip already answers "how long has this
    been up"; a router reports its own lifetime here and rolls worker
    uptimes up through the ``health`` op."""
    result = {
        "query": "hello",
        "protocol": PROTOCOL_VERSION,
        "protocol_versions": list(SUPPORTED_PROTOCOL_VERSIONS),
        "binary_ops": list(binary_ops),
        "ops": sorted(ops),
        "store": store_info,
    }
    if started_at is not None:
        result["started_at"] = round(float(started_at), 3)
    if uptime_s is not None:
        result["uptime_s"] = round(float(uptime_s), 3)
    if fleet is not None:
        result["fleet"] = fleet
    return result


def stats_answer_shape(stats: dict) -> dict:
    """The ``stats`` answer envelope around a server's counter sections."""
    return {"query": "stats", **stats}


def shutdown_shape() -> dict:
    """The ``shutdown`` acknowledgement."""
    return {"query": "shutdown", "stopping": True}


def metrics_shape(snapshot: dict) -> dict:
    """The ``metrics`` answer: one registry snapshot, two renderings.

    ``"metrics"`` carries the raw series
    (:meth:`repro.obs.MetricsRegistry.snapshot`) and ``"prometheus"`` the
    text exposition of the *same* snapshot
    (:func:`repro.obs.render_prometheus`) — both surfaces are derived here
    from one snapshot, so they round-trip the same numbers by construction.
    """
    return {
        "query": "metrics",
        "metrics": snapshot,
        "prometheus": render_prometheus(snapshot),
    }


def trace_answer_shape(trace_id: str, spans: Sequence[dict]) -> dict:
    """The ``trace`` answer: every recorded span of one trace, ordered by
    wall-clock start so the fan-out reads top-down.  A router merges its own
    spans with its workers' before shaping, so the client sees one tree."""
    ordered = sorted(spans, key=lambda s: (s.get("start_us", 0), s.get("span", "")))
    return {
        "query": "trace",
        "id": str(trace_id),
        "n_spans": len(ordered),
        "spans": list(ordered),
    }


def reset_stats_shape(*, workers: Optional[int] = None) -> dict:
    """The ``reset_stats`` acknowledgement; a router reports how many
    workers the reset fanned out to."""
    result = {"query": "reset_stats", "reset": True}
    if workers is not None:
        result["workers"] = int(workers)
    return result


def profile_shape(action: str, profile: dict, *, running: bool, hz: float,
                  collapsed: Optional[str] = None,
                  router: Optional[dict] = None,
                  workers: Optional[int] = None) -> dict:
    """The ``profile`` answer: the (possibly merged) folded-stack
    aggregate after *action* was applied.

    *profile* is a :meth:`repro.obs.ProfileStats.as_dict` payload;
    ``running`` / ``hz`` describe the answering server's own profiler.  A
    router answers with the fleet-merged aggregate in ``"profile"``, its
    own (unmerged) aggregate in ``"router"``, and the worker count — so
    ``profile == router + sum(worker profiles)`` is checkable from the
    answer.  ``collapsed`` carries the flamegraph text when the request
    asked for it."""
    result = {
        "query": "profile",
        "action": str(action),
        "running": bool(running),
        "hz": float(hz),
        "profile": profile,
    }
    if collapsed is not None:
        result["collapsed"] = collapsed
    if router is not None:
        result["router"] = router
    if workers is not None:
        result["workers"] = int(workers)
    return result


def events_shape(events: Sequence[dict], *, dropped: int = 0,
                 workers: Optional[int] = None) -> dict:
    """The ``events`` answer: the flight recorder's retained events,
    oldest first.  A router answers with its own and every worker's
    events interleaved by wall-clock timestamp
    (:func:`repro.obs.merge_events`), ``dropped`` summed across the
    fleet, and the worker count."""
    result = {
        "query": "events",
        "n_events": len(events),
        "dropped": int(dropped),
        "events": list(events),
    }
    if workers is not None:
        result["workers"] = int(workers)
    return result


def health_shape(*, status: str, started_at: Optional[float],
                 uptime_s: float, profiler: dict, events: dict,
                 traces: int, connections_open: Optional[int] = None,
                 fleet: Optional[dict] = None,
                 workers: Optional[Sequence[dict]] = None,
                 down: Optional[Sequence[dict]] = None) -> dict:
    """The ``health`` answer: one server's liveness roll-up.

    ``status`` is ``"ok"`` or ``"degraded"``; ``profiler`` / ``events`` /
    ``traces`` summarize the observability state (is the profiler armed,
    how full is the flight recorder, how many traces are retained).  A
    router rolls the fleet in: per-worker reports
    (:func:`fleet_worker_report` with their ``health`` answers), the
    ``down`` list naming every unreachable worker **and its assigned
    range** — the fleet keeps serving the surviving ranges, and this is
    where an operator reads which vertices went dark."""
    result = {
        "query": "health",
        "status": str(status),
        "uptime_s": round(float(uptime_s), 3),
        "profiler": dict(profiler),
        "events": dict(events),
        "traces": int(traces),
    }
    if started_at is not None:
        result["started_at"] = round(float(started_at), 3)
    if connections_open is not None:
        result["connections_open"] = int(connections_open)
    if fleet is not None:
        result["fleet"] = fleet
    if workers is not None:
        result["workers"] = list(workers)
    if down is not None:
        result["down"] = list(down)
    return result


def fleet_shape(ranges: Sequence, addresses: Sequence, *,
                failovers: Optional[Sequence[int]] = None,
                calls: Optional[Sequence[int]] = None) -> dict:
    """Describe a fleet: one entry per worker slice, in range order.

    *ranges* are the assigned half-open ``(src_lo, src_hi)`` vertex ranges,
    *addresses* the per-slice replica address lists; *failovers* / *calls*
    add the router's per-slice channel counters when known.
    """
    slices = []
    for index, ((lo, hi), addrs) in enumerate(zip(ranges, addresses)):
        entry = {"worker": index, "src_lo": int(lo), "src_hi": int(hi),
                 "addresses": [str(a) for a in addrs]}
        if calls is not None:
            entry["calls"] = int(calls[index])
        if failovers is not None:
            entry["failovers"] = int(failovers[index])
        slices.append(entry)
    return {"workers": len(slices), "slices": slices}


def fleet_worker_report(index: int, src_lo: int, src_hi: int, *,
                        stats: Optional[dict] = None,
                        health: Optional[dict] = None,
                        error: Optional[str] = None) -> dict:
    """One worker's entry in a fleet rollup: its full per-worker ``stats``
    (or ``health``) answer when it responded, or the error string when it
    did not (a fleet-level rollup must not fail just because one worker is
    down — the error entry names the worker *and its assigned range*, so
    an operator reads which vertices went dark straight off the answer).
    """
    report = {"worker": int(index), "src_lo": int(src_lo),
              "src_hi": int(src_hi), "ok": error is None}
    if error is not None:
        report["error"] = str(error)
    elif health is not None:
        report["health"] = health
    else:
        report["stats"] = stats
    return report


def fleet_store_counters(store_sections: Sequence[dict], *,
                         n_shards: int) -> dict:
    """Fleet-level ``"store"`` counter section: the single-store keys with
    additive counters summed across the responding workers, so CLI / client
    consumers of ``stats()["store"]`` read a router exactly like a single
    server.  ``n_shards`` is the *parent* store's count (boundary shards are
    listed by two slices and must not be double-counted)."""
    summed = {key: sum(int(section[key]) for section in store_sections)
              for key in ("shard_reads", "cache_hits", "cached_shards",
                          "cache_shards", "resident_bytes", "mapped_bytes")}
    return {
        **summed,
        "n_shards": int(n_shards),
        "mmap": all(bool(section["mmap"]) for section in store_sections),
        "workers": len(store_sections),
    }


def fleet_stats_shape(server: dict, fleet: dict, reports: Sequence[dict], *,
                      n_shards: int) -> dict:
    """A router's ``stats()`` sections: the router's own ``server`` counters,
    the fleet description, the per-worker reports
    (:func:`fleet_worker_report`), and the summed ``store`` section."""
    sections = [report["stats"]["store"] for report in reports
                if report.get("ok")]
    return {
        "server": server,
        "fleet": fleet,
        "workers": list(reports),
        "store": fleet_store_counters(sections, n_shards=n_shards),
    }


def induced_adjacency(vertices: np.ndarray, edges: np.ndarray) -> sp.csr_matrix:
    """Rebuild an induced adjacency from global-id *edges* over *vertices*.

    Local vertex *i* is ``vertices[i]`` (caller order preserved) — the same
    relabelling :meth:`ShardStore.subgraph_adjacency` applies, so a client
    reconstructing a served subgraph or egonet gets a matrix exactly equal
    to the in-process answer.  Every edge endpoint must be in *vertices*.
    """
    vs = np.asarray(vertices, dtype=np.int64)
    k = vs.shape[0]
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0] == 0 or k == 0:
        return sp.csr_matrix((k, k), dtype=np.int64)
    order = np.argsort(vs, kind="stable")
    sorted_vs = vs[order]
    local_src = order[np.searchsorted(sorted_vs, edges[:, 0])]
    local_dst = order[np.searchsorted(sorted_vs, edges[:, 1])]
    data = np.ones(edges.shape[0], dtype=np.int64)
    return sp.csr_matrix((data, (local_src, local_dst)), shape=(k, k))
