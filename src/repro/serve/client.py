"""Blocking wire-level client for the shard-store query service.

:class:`QueryClient` speaks the :mod:`repro.serve.protocol` framing over one
reused TCP connection and turns the JSON answer shapes back into the exact
objects the in-process :class:`~repro.store.ShardStore` returns — ``int64``
numpy arrays for edge rows and payload values, reconstructed
:class:`~repro.graphs.Graph` / :class:`~repro.graphs.egonet.Egonet` objects
for ``subgraph`` / ``egonet`` — so a consumer can swap a local store for a
served one without changing a line downstream, and the equivalence tests can
assert byte-level equality against the local answers.

Error frames re-raise the matching Python exception with the server's
message verbatim (a served ``edge_payloads`` miss raises the same
:class:`ValueError` a local call would).  The connection is opened lazily,
reused across requests, and re-opened once per request if the server closed
it in between; batch helpers (:meth:`degrees`, :meth:`edge_payloads`) follow
the repo's array-in / array-out conventions.

Bulk fetches can ride the protocol-v2 **binary plane**:
``edges_in_range(lo, hi, binary=True)`` asks the server for a raw-rows
response — JSON control frame plus one binary frame — and rebuilds the
exact ``int64`` array from the raw bytes (one ``recv_into`` pass into a
mutable buffer, one ``np.frombuffer`` wrap; no per-row JSON decode).  The
answer is byte-equal to the JSON plane's and to the in-process store's.
Every socket operation honours the constructor *timeout*, and
:meth:`connection_stats` reports connects, reconnect retries, and binary
transfer volume for operational visibility.

Distributed tracing (PR 8): when a :mod:`repro.obs.trace` context is
active (``start_trace``), every request runs under a ``client.<op>`` span
and stamps the additive ``"trace"`` key on its frame — the server adopts
the trace and parents its own spans under the client's, so
:meth:`trace_spans` afterwards returns the full cross-process tree.
Without an active trace nothing is stamped and nothing is timed.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.egonet import Egonet
from repro.obs import trace
from repro.serve import protocol
from repro.serve.shaping import induced_adjacency, rows_from_binary

__all__ = ["QueryClient"]


def _rows_array(rows, width: int) -> np.ndarray:
    """JSON row lists back to the store's ``(m, width)`` ``int64`` layout."""
    out = np.asarray(rows, dtype=np.int64)
    if out.size == 0:
        return np.zeros((0, width), dtype=np.int64)
    return out.reshape(-1, width)


class QueryClient:
    """Synchronous client for one :class:`~repro.serve.ShardStoreServer`.

    Parameters
    ----------
    host, port:
        Server address (``QueryClient.from_address("host:port")`` parses the
        CLI's ``--connect`` form).
    timeout:
        Per-operation socket timeout in seconds (``None`` blocks forever —
        opt-in only; the default keeps a hung server from blocking the
        client indefinitely).  Applies to connect and to every send/recv,
        including binary-frame bodies.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._store_info: Optional[dict] = None
        self._connects = 0
        self._reconnect_retries = 0
        self._requests_sent = 0
        self._binary_frames = 0
        self._binary_bytes = 0

    @classmethod
    def from_address(cls, address: str, **kwargs) -> "QueryClient":
        """Build a client from a ``HOST:PORT`` string."""
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"expected HOST:PORT, got {address!r}")
        return cls(host or "127.0.0.1", int(port), **kwargs)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._connects += 1
        return self._sock

    def close(self) -> None:
        """Close the reused connection (it reopens on the next request)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def request(self, op: str, args: Optional[dict] = None) -> dict:
        """Send one request and return the raw ``result`` shape.

        The reused connection is re-opened once if the server closed it
        between requests (idle-timeout, restart); a failure on the fresh
        connection propagates.
        """
        result, _ = self._request(op, args, binary=False)
        return result

    def _request(self, op: str, args: Optional[dict], *, binary: bool):
        """Request plumbing shared by the JSON and binary planes: returns
        ``(result, binary_buffer_or_None)`` with the retry-once-on-a-dead-
        reused-connection behaviour of :meth:`request`.

        Under an active trace the round trip runs inside a
        ``client.<op>`` span whose id is stamped on the frame's additive
        ``"trace"`` key, making the span the parent of everything the
        server records for this request."""
        frame = protocol.request_frame(op, args)
        active = trace.current()
        if active is not None:
            # A *leaf* span: the socket round trip opens no nested spans,
            # so skipping the contextvar switch keeps the traced scalar
            # hot path inside the ≤ 5% overhead budget.
            client_span = trace.adopt_leaf_span(
                active.recorder, active.trace_id, active.span_id,
                f"client.{op}", op=op)
            with client_span:
                frame["trace"] = {"id": active.trace_id,
                                  "span": client_span.span_id}
                return self._send_with_retry(frame, binary=binary)
        return self._send_with_retry(frame, binary=binary)

    def _send_with_retry(self, frame: dict, *, binary: bool):
        reused = self._sock is not None
        try:
            return self._roundtrip(frame, binary=binary)
        except (BrokenPipeError, ConnectionResetError, ConnectionAbortedError):
            # Retry once, and only when a *reused* connection died (the
            # server dropped it between requests).  A server-*reported*
            # error frame (re-raised by raise_error) is never retried — the
            # server already executed and refused that request.
            if not reused:
                raise
            self._reconnect_retries += 1
        return self._roundtrip(frame, binary=binary)

    def _roundtrip(self, frame: dict, *, binary: bool = False):
        sock = self._connect()
        buffer = None
        self._requests_sent += 1
        try:
            protocol.write_frame(sock, frame)
            response = protocol.read_frame(sock)
            if (binary and response is not None and response.get("ok")
                    and isinstance(response.get("result"), dict)
                    and "rows" in response["result"]):
                # The control frame announced a binary follow-up; read it
                # inside this try so a timeout or truncation mid-body drops
                # the (desynchronized) socket like any transport failure.
                buffer = protocol.read_binary_frame(sock)
                announced = int(response["result"]["rows"]["nbytes"])
                if len(buffer) != announced:
                    raise protocol.ProtocolError(
                        f"binary frame carried {len(buffer)} bytes but the "
                        f"control frame announced {announced}")
                self._binary_frames += 1
                self._binary_bytes += len(buffer)
        except Exception:
            # Any transport-level failure — timeout mid-response included —
            # leaves the byte stream desynchronized: a later request could
            # otherwise read THIS request's late response as its answer.
            # Never reuse the socket.
            self.close()
            raise
        if response is None:
            self.close()
            raise ConnectionResetError(
                f"server at {self.host}:{self.port} closed the connection "
                "without answering")
        if not response.get("ok"):
            # One frame per request even on failure: the stream stays in
            # sync, so the connection remains reusable (no binary frame
            # ever follows an error frame).
            protocol.raise_error(response.get("error", {}))
        return response.get("result", {}), buffer

    # ------------------------------------------------------------------
    # Store metadata
    # ------------------------------------------------------------------
    def hello(self) -> dict:
        """Server/store handshake info (cached after the first call)."""
        if self._store_info is None:
            self._store_info = self.request("hello")
        return self._store_info

    @property
    def payload_columns(self) -> Tuple[str, ...]:
        """The served store's payload column names (from ``hello``)."""
        return tuple(self.hello()["store"]["payload_columns"])

    @property
    def n_vertices(self) -> int:
        return int(self.hello()["store"]["n_vertices"])

    # ------------------------------------------------------------------
    # Queries (mirror the ShardStore surface)
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Degree of one vertex, self loop excluded."""
        return int(self.request("degree", {"vertex": int(v)})["degree"])

    def degrees(self, vs: Sequence[int]) -> np.ndarray:
        """Batch degrees (array-in / array-out, one request)."""
        result = self.request(
            "degrees", {"vertices": [int(v) for v in np.asarray(vs)]})
        return np.asarray(result["degrees"], dtype=np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of *v*, self loop excluded."""
        result = self.request("neighbors", {"vertex": int(v)})
        return np.asarray(result["neighbors"], dtype=np.int64)

    def neighbors_with_payload(self, v: int) -> Tuple[np.ndarray, dict]:
        """Neighbour ids plus ``{column: int64 array}`` ground truth."""
        result = self.request("neighbors",
                              {"vertex": int(v), "with_payload": True})
        payload = {name: np.asarray(values, dtype=np.int64)
                   for name, values in result["payload"].items()}
        return np.asarray(result["neighbors"], dtype=np.int64), payload

    def edges_for_sources(self, vs: Sequence[int], *,
                          with_payload: bool = False) -> np.ndarray:
        """All stored rows whose source is in *vs* (deduplicated,
        ``(src, dst)``-sorted) — the batch gather mirroring
        :meth:`ShardStore.edges_for_sources`."""
        result = self.request("edges_for_sources", {
            "vertices": [int(v) for v in np.atleast_1d(np.asarray(vs))],
            "with_payload": with_payload,
        })
        return _rows_array(result["edges"], len(result["columns"]))

    def edges_in_range(self, lo: int, hi: int, *,
                       with_payload: bool = False,
                       binary: bool = False) -> np.ndarray:
        """All stored rows with source in ``[lo, hi)`` — the full answer;
        the wire shape's ``limit`` is left unset.

        ``binary=True`` fetches the rows over the protocol-v2 bulk plane
        (raw bytes, no JSON row lists) and returns the identical writable
        ``int64`` array — same values, dtype, and shape as the JSON path
        and the in-process store."""
        args = {"lo": int(lo), "hi": int(hi), "with_payload": with_payload}
        if binary:
            args["binary"] = True
            result, buffer = self._request("edges_in_range", args,
                                           binary=True)
            try:
                return rows_from_binary(result["rows"], buffer)
            except ValueError as exc:
                # A descriptor/byte-count contradiction means the stream
                # cannot be trusted; drop the socket before surfacing it.
                self.close()
                raise protocol.ProtocolError(str(exc)) from exc
        result = self.request("edges_in_range", args)
        return _rows_array(result["edges"], len(result["columns"]))

    def egonet(self, v: int, *, with_payload: bool = False):
        """Egonet of *v*, reconstructed to match the in-process
        :meth:`ShardStore.egonet` answer exactly (vertex order, adjacency,
        and — with ``with_payload=True`` — the induced payload rows)."""
        result = self.request("egonet", {"vertex": int(v),
                                         "with_payload": with_payload,
                                         "include_members": True})
        vertices = np.asarray(result["vertices"], dtype=np.int64)
        if with_payload:
            # The payload rows carry the topology in their first two columns
            # (the wire does not ship it twice).
            rows = _rows_array(result["rows"], len(result["columns"]))
            edges = rows[:, :2]
        else:
            edges = _rows_array(result["edges"], 2)
        name = f"{self.hello()['store'].get('name') or 'store'}[sub]"
        graph = Graph(induced_adjacency(vertices, edges), name=name,
                      validate=False)
        ego = Egonet(center=int(v), vertices=vertices, graph=graph)
        if not with_payload:
            return ego
        return ego, rows

    def subgraph(self, vertices: Sequence[int], *,
                 with_payload: bool = False):
        """Induced subgraph on *vertices* (caller order preserved), equal to
        the in-process :meth:`ShardStore.subgraph` answer."""
        vs = [int(v) for v in np.asarray(vertices)]
        result = self.request("subgraph", {"vertices": vs,
                                           "with_payload": with_payload})
        order = np.asarray(result["vertices"], dtype=np.int64)
        if with_payload:
            rows = _rows_array(result["rows"], len(result["columns"]))
            edges = rows[:, :2]
        else:
            edges = _rows_array(result["edges"], 2)
        graph = Graph(induced_adjacency(order, edges),
                      name=result["name"], validate=False)
        if not with_payload:
            return graph
        return graph, rows

    def edge_payloads(self, ps: Sequence[int], qs: Sequence[int]) -> np.ndarray:
        """Batched payload point lookups — ``(m, k)`` ``int64`` rows in the
        store's :attr:`payload_columns` order."""
        result = self.request("edge_payloads", {
            "ps": [int(p) for p in np.atleast_1d(np.asarray(ps))],
            "qs": [int(q) for q in np.atleast_1d(np.asarray(qs))],
        })
        return _rows_array(result["payloads"], len(result["columns"]))

    def edge_payload(self, p: int, q: int) -> dict:
        """Payload of one stored edge as ``{column: value}``."""
        result = self.request("edge_payloads",
                              {"ps": [int(p)], "qs": [int(q)]})
        return {name: int(value)
                for name, value in zip(result["columns"],
                                       result["payloads"][0])}

    # ------------------------------------------------------------------
    # Operational surface
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The server's ``stats`` answer (request counts, latency
        histograms, coalescing, and store cache counters), with this
        client's own :meth:`connection_stats` under ``"client"``."""
        result = self.request("stats")
        result["client"] = self.connection_stats()
        return result

    def metrics(self) -> dict:
        """The server's ``metrics`` answer: the full registry snapshot
        plus its Prometheus-text rendering (same numbers, two surfaces)."""
        return self.request("metrics")

    def trace_spans(self, trace_id: str) -> List[dict]:
        """Every span the server recorded for *trace_id*, start-ordered
        (a router answers with its workers' spans merged in)."""
        return self.request("trace", {"id": str(trace_id)})["spans"]

    def reset_stats(self) -> dict:
        """Zero the server's registry counters (a router fans the reset
        out fleet-wide; the answer then carries the worker count)."""
        return self.request("reset_stats")

    def profile(self, action: str = "snapshot", *,
                hz: Optional[float] = None,
                collapsed: bool = False) -> dict:
        """Drive the server's sampling profiler: ``"start"`` (optionally
        at *hz* samples/s), ``"stop"``, ``"snapshot"``, or ``"reset"`` —
        every action answers with the current aggregate (a router answers
        with the fleet-merged one).  ``collapsed=True`` additionally
        returns the folded-stack flamegraph text."""
        args: dict = {"action": str(action)}
        if hz is not None:
            args["hz"] = float(hz)
        if collapsed:
            args["collapsed"] = True
        return self.request("profile", args)

    def events(self, limit: Optional[int] = None, *,
               kind: Optional[str] = None) -> dict:
        """The server's flight-recorder tail, oldest first (a router
        answers with router and worker events interleaved by wall-clock
        timestamp)."""
        args: dict = {}
        if limit is not None:
            args["limit"] = int(limit)
        if kind is not None:
            args["kind"] = str(kind)
        return self.request("events", args)

    def health(self) -> dict:
        """The server's liveness surface: uptime, profiler / recorder
        state, open connections — and, from a router, per-worker reports
        with any down worker named alongside its vertex range."""
        return self.request("health")

    def connection_stats(self) -> dict:
        """Local connection counters: sockets opened (``connects``),
        transparent retries after a reused connection died
        (``reconnect_retries``), requests written, and binary-plane
        transfer volume."""
        return {
            "connects": self._connects,
            "reconnect_retries": self._reconnect_retries,
            "requests_sent": self._requests_sent,
            "binary_frames": self._binary_frames,
            "binary_bytes": self._binary_bytes,
        }

    def shutdown_server(self) -> dict:
        """Ask the server to stop gracefully."""
        result = self.request("shutdown")
        self.close()
        return result
