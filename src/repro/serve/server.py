"""Asyncio query server: one :class:`~repro.store.ShardStore` per worker.

The serving half of the out-of-core story: a compacted shard store is owned
by one :class:`ShardStoreServer`, which accepts length-prefixed JSON frames
(:mod:`repro.serve.protocol`), dispatches ``degree`` / ``degrees`` /
``neighbors`` / ``edges_for_sources`` / ``edges_in_range`` / ``egonet`` /
``subgraph`` / ``edge_payloads`` requests (with their ``with_payload``
variants), and
answers with the :mod:`repro.serve.shaping` shapes the CLI's
``query --json`` also emits.

Protocol v2 adds the **binary bulk plane**: an ``edges_in_range`` request
carrying ``"binary": true`` is answered with a JSON control frame (the
``rows`` descriptor) followed by one binary frame whose body is a
``memoryview`` over the store's decoded — normally memory-mapped — shard
rows, so a warm bulk fetch moves bytes from the page cache to the socket
without a Python-list encode or a private copy.  v1 requests are served
exactly as before (single JSON frame, never binary).

Design rules:

* **One store, many connections.**  Every connection shares the server's
  single :class:`ShardStore`; its decoded-shard LRU is concurrent-safe
  (a lock guards cache mutation), so hot shards are decoded once no matter
  which connection asked first.
* **The event loop never touches a shard.**  All store work runs on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor`
  (``decode_threads``); the loop only frames bytes and schedules work, so a
  cold multi-megabyte decode cannot stall unrelated connections.
* **Scalar requests coalesce into batch calls.**  Concurrent ``degree`` /
  ``neighbors`` requests that land in the same event-loop tick are folded
  into one ``store.degrees`` / ``store.edges_for_sources`` call (the PR 1
  batch-first entry points) and the answers are fanned back out — under
  many clients the store sees a few array calls, not a scalar call storm.
* **Errors are frames, not disconnects.**  A store ``ValueError`` /
  ``IndexError`` travels back as an error frame carrying the exact message;
  only an untrustworthy frame (oversized length prefix, non-JSON body,
  disconnect mid-frame) closes the connection, and then only that one.
* **Operational surface built in.**  A ``stats`` request reports request
  counts, per-op latency histograms, coalescing effectiveness, and the
  store's ``shard_reads`` / ``cache_hits``; ``shutdown`` requests a graceful
  stop (in-flight requests finish, then the listener closes).

:class:`ThreadedServer` runs the whole thing on a background thread for
synchronous callers — the test suite, benchmarks, and examples stand a
server up with ``with ThreadedServer(store) as handle: ...``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from bisect import bisect_left
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from repro.serve import protocol, shaping
from repro.serve.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    SUPPORTED_PROTOCOL_VERSIONS,
    ProtocolError,
)
from repro.store.query import ShardStore

__all__ = ["ShardStoreServer", "ThreadedServer"]

#: Upper bucket bounds (µs) of the per-op latency histograms.
_LATENCY_BOUNDS_US = (100, 250, 500, 1_000, 2_500, 5_000,
                      10_000, 25_000, 50_000, 100_000, 500_000)


class _LatencyHistogram:
    """Fixed-bucket latency histogram (µs), cheap enough for every request."""

    __slots__ = ("counts", "count", "total_us", "max_us")

    def __init__(self):
        self.counts = [0] * (len(_LATENCY_BOUNDS_US) + 1)
        self.count = 0
        self.total_us = 0
        self.max_us = 0

    def record(self, us: int) -> None:
        self.counts[bisect_left(_LATENCY_BOUNDS_US, us)] += 1
        self.count += 1
        self.total_us += us
        self.max_us = max(self.max_us, us)

    def snapshot(self) -> dict:
        buckets = {f"<={bound}us": count
                   for bound, count in zip(_LATENCY_BOUNDS_US, self.counts)}
        buckets[f">{_LATENCY_BOUNDS_US[-1]}us"] = self.counts[-1]
        mean = self.total_us / self.count if self.count else 0.0
        return {"count": self.count, "mean_us": round(mean, 1),
                "max_us": self.max_us, "buckets": buckets}


class _Coalescer:
    """Folds concurrent scalar submissions into one batched store call.

    ``submit(value)`` returns a future; all values submitted before the next
    event-loop tick (or up to ``max_batch``) are handed to *flush_fn* as one
    list on the executor, and the returned per-value results resolve the
    futures in order.  Per-value validation must happen **before** submit —
    a failure inside *flush_fn* fails the whole batch.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 executor: ThreadPoolExecutor,
                 flush_fn: Callable[[List], List], *, max_batch: int = 1024):
        self._loop = loop
        self._executor = executor
        self._flush_fn = flush_fn
        self._max_batch = max_batch
        self._pending: List = []  # (value, future) pairs
        self._flush_scheduled = False
        self.batches = 0
        self.requests = 0
        self.max_batch_seen = 0

    def submit(self, value) -> "asyncio.Future":
        future = self._loop.create_future()
        self._pending.append((value, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)
        return future

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches += 1
        self.requests += len(batch)
        self.max_batch_seen = max(self.max_batch_seen, len(batch))
        values = [value for value, _ in batch]
        task = self._loop.run_in_executor(
            self._executor, self._flush_fn, values)

        def _distribute(done: "asyncio.Future") -> None:
            exc = done.exception()
            for index, (_, future) in enumerate(batch):
                if future.cancelled():
                    continue
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(done.result()[index])

        task.add_done_callback(_distribute)

    def stats(self) -> dict:
        return {"requests": self.requests, "batches": self.batches,
                "max_batch": self.max_batch_seen}


def _arg(args: dict, name: str):
    if name not in args:
        raise ValueError(f"request args missing {name!r}")
    return args[name]


def _arg_int(args: dict, name: str) -> int:
    value = _arg(args, name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"request arg {name!r} must be an integer, "
                         f"got {type(value).__name__}")
    return value


def _arg_int_list(args: dict, name: str) -> List[int]:
    value = _arg(args, name)
    if not isinstance(value, list) or any(
            isinstance(x, bool) or not isinstance(x, int) for x in value):
        raise ValueError(f"request arg {name!r} must be a list of integers")
    return value


def _arg_bool(args: dict, name: str, default: bool = False) -> bool:
    value = args.get(name, default)
    if not isinstance(value, bool):
        raise ValueError(f"request arg {name!r} must be a boolean")
    return value


class ShardStoreServer:
    """Asyncio front-end serving one :class:`~repro.store.ShardStore`.

    Parameters
    ----------
    store:
        A :class:`ShardStore` instance, a compacted store directory (a
        store is then opened with *cache_shards*), or any object exposing
        the same query surface — the range router serves its fleet façade
        through this very class.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port, published as
        :attr:`port` after :meth:`start`.
    decode_threads:
        Size of the thread pool all store work runs on — the bound on
        concurrent shard decodes.
    max_request_bytes:
        Cap on incoming request frames; an oversized length prefix gets one
        error frame and the connection is closed.
    cache_shards:
        LRU size used only when *store* is a directory path.
    """

    def __init__(self, store, *, host: str = "127.0.0.1", port: int = 0,
                 decode_threads: int = 4,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                 max_coalesce_batch: int = 1024,
                 cache_shards: int = 8):
        if isinstance(store, (str, Path)):
            store = ShardStore(store, cache_shards=cache_shards)
        self.store = store
        self.host = host
        self.port = int(port)
        self.decode_threads = int(decode_threads)
        self.max_request_bytes = int(max_request_bytes)
        self.max_coalesce_batch = int(max_coalesce_batch)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: set = set()
        self._tasks: set = set()
        self._degree_coalescer: Optional[_Coalescer] = None
        self._neighbors_coalescers: dict = {}
        self._error_count = 0
        self._protocol_errors = 0
        self._connections_total = 0
        self._binary_frames = 0
        self._binary_bytes = 0
        self._started_at: Optional[float] = None
        self._ops = {
            "hello": self._op_hello,
            "degree": self._op_degree,
            "degrees": self._op_degrees,
            "neighbors": self._op_neighbors,
            "edges_for_sources": self._op_edges_for_sources,
            "edges_in_range": self._op_edges_in_range,
            "egonet": self._op_egonet,
            "subgraph": self._op_subgraph,
            "edge_payloads": self._op_edge_payloads,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }
        # Pre-size both maps with every possible key so they never change
        # size while serving: stats() may be called from another thread
        # (ThreadedServer monitoring) and must not race a dict resize.
        op_keys = [*self._ops, "_invalid"]
        self._request_counts: Counter = Counter({op: 0 for op in op_keys})
        self._latency = {op: _LatencyHistogram() for op in op_keys}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and arm the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.decode_threads, thread_name_prefix="shard-decode")
        self._degree_coalescer = _Coalescer(
            self._loop, self._executor, self._degrees_batch,
            max_batch=self.max_coalesce_batch)
        self._neighbors_coalescers = {
            with_payload: _Coalescer(
                self._loop, self._executor,
                lambda vs, wp=with_payload: self._neighbors_batch(vs, wp),
                max_batch=self.max_coalesce_batch)
            for with_payload in (False, True)
        }
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self, *, grace_s: float = 5.0) -> None:
        """Graceful stop: close the listener, let every in-flight request
        finish and flush its response (handlers watch the stop event and
        exit after the current frame), then — after *grace_s* — abort any
        connection a stalled client is keeping open, and drop the pool."""
        if self._stop_event is not None:
            self._stop_event.set()  # idle handlers wake from their read
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            _, pending = await asyncio.wait(list(self._tasks),
                                            timeout=grace_s)
            if pending:
                # A peer that stopped reading can block drain() forever;
                # abort the transport (close() would wait for the buffer).
                for writer in list(self._writers):
                    writer.transport.abort()
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def request_stop(self) -> None:
        """Ask the serve loop to exit (safe from any thread; a no-op when
        the server already stopped, e.g. via a client ``shutdown``)."""
        if (self._loop is None or self._stop_event is None
                or self._loop.is_closed()):
            return
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop closed between the check and the call

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (or a ``shutdown`` request).

        Stops the server on the way out even when cancelled — Ctrl-C under
        :func:`asyncio.run` cancels this coroutine, and the ``finally``
        still runs the graceful teardown."""
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def __aenter__(self) -> "ShardStoreServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections_total += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        self._tasks.add(task)
        stop_wait = asyncio.ensure_future(self._stop_event.wait())
        try:
            while True:
                # Race the next frame against the stop event: a request that
                # is already in flight always finishes (dispatch and the
                # response write happen below, before this point is reached
                # again), while an *idle* connection closes promptly on stop.
                read_task = asyncio.ensure_future(protocol.read_frame_async(
                    reader, max_bytes=self.max_request_bytes))
                await asyncio.wait({read_task, stop_wait},
                                   return_when=asyncio.FIRST_COMPLETED)
                if not read_task.done():
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, ProtocolError,
                            ConnectionResetError, BrokenPipeError):
                        pass
                    break
                try:
                    frame = read_task.result()
                except ProtocolError as exc:
                    # The byte stream can no longer be trusted: answer once,
                    # then drop this connection (and only this one).
                    self._protocol_errors += 1
                    await self._try_send(writer, protocol.error_frame(exc))
                    break
                if frame is None:  # clean EOF at a frame boundary
                    break
                response, binary_rows = await self._dispatch(frame)
                binary_parts = None
                try:
                    payload = protocol.encode_frame(response)
                    if binary_rows is not None:
                        # Raw bytes over the decoded (mmapped) rows; the
                        # byte-cast is required because a buffering transport
                        # extends a bytearray with the view's *elements*.
                        # (A zero-size ndarray view refuses the cast — an
                        # empty range still gets its zero-length frame.)
                        view = (memoryview(binary_rows).cast("B")
                                if binary_rows.nbytes else memoryview(b""))
                        binary_parts = (
                            protocol.binary_frame_header(view.nbytes), view)
                except ProtocolError as exc:  # response exceeded the cap
                    payload = protocol.encode_frame(protocol.error_frame(exc))
                    binary_parts = None
                if binary_parts is not None:
                    # Count before the bytes can reach a client: a stats
                    # read that races the send must never under-report a
                    # frame the peer has already received.
                    self._binary_frames += 1
                    self._binary_bytes += binary_parts[1].nbytes
                writer.write(payload)
                if binary_parts is not None:
                    writer.write(binary_parts[0])
                    writer.write(binary_parts[1])
                await writer.drain()
                if self._stop_event.is_set():
                    break  # stop requested while we served this frame
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-write; nothing to answer
        finally:
            stop_wait.cancel()
            self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _try_send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        try:
            writer.write(protocol.encode_frame(obj))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _dispatch(self, frame: dict):
        """Serve one request frame → ``(response, binary_rows_or_None)``.

        *binary_rows* is non-``None`` only for a successful v2 request that
        opted into the bulk plane: the caller writes the JSON control frame
        first, then one binary frame over the returned array's bytes.
        Error responses never carry a binary frame.
        """
        op = frame.get("op")
        op_key = op if isinstance(op, str) and op in self._ops else "_invalid"
        start_ns = time.perf_counter_ns()
        binary_rows = None
        try:
            version = frame.get("v")
            if version not in SUPPORTED_PROTOCOL_VERSIONS:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}; this server "
                    f"speaks versions "
                    f"{', '.join(map(str, SUPPORTED_PROTOCOL_VERSIONS))}")
            if op_key == "_invalid":
                raise ProtocolError(
                    f"unknown op {op!r}; available: "
                    f"{', '.join(sorted(self._ops))}")
            args = frame.get("args", {})
            if not isinstance(args, dict):
                raise ValueError("request args must be a JSON object")
            if args.get("binary") and version < 2:
                # A v1 peer must never see a two-frame response; reject the
                # request but keep the connection — the framing is intact.
                raise ProtocolError(
                    "binary responses require protocol version >= 2; "
                    f"this request is v{version}")
            result = await self._ops[op_key](args)
            if isinstance(result, tuple):
                result, binary_rows = result
            response = protocol.result_frame(result)
        except Exception as exc:  # every failure becomes an error frame
            self._error_count += 1
            binary_rows = None
            response = protocol.error_frame(exc)
        finally:
            self._request_counts[op_key] += 1
            elapsed_us = (time.perf_counter_ns() - start_ns) // 1000
            self._latency[op_key].record(int(elapsed_us))
        return response, binary_rows

    async def _run_store(self, fn, *args):
        """Run one store call on the bounded decode pool."""
        return await self._loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------
    # Coalesced batch kernels (run on the executor)
    # ------------------------------------------------------------------
    def _degrees_batch(self, vertices: List[int]) -> List[int]:
        values = self.store.degrees(np.asarray(vertices, dtype=np.int64))
        return [int(d) for d in values]

    def _neighbors_batch(self, vertices: List[int],
                         with_payload: bool) -> List[np.ndarray]:
        """One ``edges_for_sources`` gather for a whole batch, sliced back
        per requested vertex (`rows` is ``(src, dst)``-sorted)."""
        rows = self.store.edges_for_sources(
            np.asarray(vertices, dtype=np.int64), with_payload=with_payload)
        srcs = rows[:, 0]
        lefts = np.searchsorted(srcs, np.asarray(vertices, dtype=np.int64),
                                side="left")
        rights = np.searchsorted(srcs, np.asarray(vertices, dtype=np.int64),
                                 side="right")
        return [rows[lo:hi] for lo, hi in zip(lefts, rights)]

    def _check_vertex(self, vertex: int) -> int:
        """Range-check *before* coalescing so one bad vertex cannot fail an
        entire batch of innocent requests (the store's message, verbatim)."""
        if not 0 <= vertex < self.store.n_vertices:
            raise IndexError("product vertex id out of range")
        return vertex

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_hello(self, args: dict) -> dict:
        return shaping.hello_shape(self._ops,
                                   shaping.shape_store_info(self.store))

    async def _op_degree(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        degree = await self._degree_coalescer.submit(vertex)
        return shaping.degree_shape(vertex, degree)

    async def _op_degrees(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        return await self._run_store(
            lambda: shaping.shape_degrees(self.store, vertices))

    async def _op_neighbors(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        with_payload = _arg_bool(args, "with_payload")
        rows = await self._neighbors_coalescers[with_payload].submit(vertex)
        return shaping.neighbors_shape(vertex, rows,
                                       self.store.payload_columns,
                                       with_payload=with_payload)

    async def _op_edges_for_sources(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        with_payload = _arg_bool(args, "with_payload")
        return await self._run_store(
            lambda: shaping.shape_edges_for_sources(self.store, vertices,
                                                    with_payload=with_payload))

    async def _op_edges_in_range(self, args: dict):
        lo = _arg_int(args, "lo")
        hi = _arg_int(args, "hi")
        with_payload = _arg_bool(args, "with_payload")
        binary = _arg_bool(args, "binary")
        limit = args.get("limit")
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int)):
            raise ValueError("request arg 'limit' must be an integer or null")
        if binary:
            if limit is not None:
                raise ValueError(
                    "request arg 'limit' is not supported with binary "
                    "responses; truncate client-side")
            # (control, rows): _dispatch unpacks the tuple and the handler
            # follows the control frame with the rows' raw bytes.
            return await self._run_store(
                lambda: shaping.shape_range_binary(self.store, lo, hi,
                                                   with_payload=with_payload))
        return await self._run_store(
            lambda: shaping.shape_range(self.store, lo, hi,
                                        with_payload=with_payload,
                                        limit=limit))

    async def _op_egonet(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        with_payload = _arg_bool(args, "with_payload")
        include_members = _arg_bool(args, "include_members")
        return await self._run_store(
            lambda: shaping.shape_egonet(self.store, vertex,
                                         with_payload=with_payload,
                                         include_members=include_members))

    async def _op_subgraph(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        with_payload = _arg_bool(args, "with_payload")
        return await self._run_store(
            lambda: shaping.shape_subgraph(self.store, vertices,
                                           with_payload=with_payload))

    async def _op_edge_payloads(self, args: dict) -> dict:
        ps = _arg_int_list(args, "ps")
        qs = _arg_int_list(args, "qs")
        if len(ps) != len(qs):
            raise ValueError(f"ps and qs must have matching shapes, "
                             f"got ({len(ps)},) and ({len(qs)},)")
        return await self._run_store(
            lambda: shaping.shape_edge_payloads(self.store, ps, qs))

    async def _op_stats(self, args: dict) -> dict:
        return shaping.stats_answer_shape(self.stats())

    async def _op_shutdown(self, args: dict) -> dict:
        # Reply first; the loop notices the event after this response flushes.
        self._loop.call_soon(self._stop_event.set)
        return shaping.shutdown_shape()

    # ------------------------------------------------------------------
    # Operational surface
    # ------------------------------------------------------------------
    def _server_stats(self) -> dict:
        """The ``"server"`` counter section alone — shared with the range
        router, whose ``stats()`` composes it with a fleet rollup instead of
        a single store's counters."""
        neighbors = list(self._neighbors_coalescers.values())
        degree = self._degree_coalescer
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3)
            if self._started_at is not None else 0.0,
            "requests": {op: count
                         for op, count in self._request_counts.items()
                         if count},
            "errors": self._error_count,
            "protocol_errors": self._protocol_errors,
            "connections_open": len(self._writers),
            "connections_total": self._connections_total,
            "decode_threads": self.decode_threads,
            "binary": {"frames": self._binary_frames,
                       "bytes": self._binary_bytes},
            "coalesced": {
                "degree": degree.stats() if degree is not None
                else {"requests": 0, "batches": 0, "max_batch": 0},
                "neighbors": {
                    "requests": sum(c.requests for c in neighbors),
                    "batches": sum(c.batches for c in neighbors),
                    "max_batch": max((c.max_batch_seen for c in neighbors),
                                     default=0),
                },
            },
            "latency_us": {op: hist.snapshot()
                           for op, hist in sorted(self._latency.items())
                           if hist.count},
        }

    def stats(self) -> dict:
        """Request counts, per-op latency, coalescing effectiveness, and the
        store's cache counters — the ``stats`` request returns this."""
        return {
            "server": self._server_stats(),
            "store": self.store.stats(),
        }


class ThreadedServer:
    """A :class:`ShardStoreServer` on a background thread, for synchronous
    callers (tests, benchmarks, examples, and the blocking client).

    ``with ThreadedServer(store_dir) as server:`` starts the event loop on a
    daemon thread, binds an ephemeral port (``server.host`` /
    ``server.port``), and tears everything down — gracefully — on exit.
    """

    def __init__(self, store, *, server_cls=None, **kwargs):
        self._store = store
        self._server_cls = server_cls if server_cls is not None else ShardStoreServer
        self._kwargs = kwargs
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[ShardStoreServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self) -> "ThreadedServer":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="shard-serve", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            # Construction opens the store (manifest read, validation) and
            # can fail just like bind — both must surface to start(), never
            # leave it blocked on the ready event.
            server = self._server_cls(self._store, **self._kwargs)
            await server.start()
        except BaseException as exc:  # surface open/bind errors to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.host, self.port = server.host, server.port
        self._ready.set()
        await server.serve_until_stopped()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self.server is not None:
            self.server.request_stop()
        self._thread.join()
        self._thread = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
