"""Asyncio query server: one :class:`~repro.store.ShardStore` per worker.

The serving half of the out-of-core story: a compacted shard store is owned
by one :class:`ShardStoreServer`, which accepts length-prefixed JSON frames
(:mod:`repro.serve.protocol`), dispatches ``degree`` / ``degrees`` /
``neighbors`` / ``edges_for_sources`` / ``edges_in_range`` / ``egonet`` /
``subgraph`` / ``edge_payloads`` requests (with their ``with_payload``
variants), and
answers with the :mod:`repro.serve.shaping` shapes the CLI's
``query --json`` also emits.

Protocol v2 adds the **binary bulk plane**: an ``edges_in_range`` request
carrying ``"binary": true`` is answered with a JSON control frame (the
``rows`` descriptor) followed by one binary frame whose body is a
``memoryview`` over the store's decoded — normally memory-mapped — shard
rows, so a warm bulk fetch moves bytes from the page cache to the socket
without a Python-list encode or a private copy.  v1 requests are served
exactly as before (single JSON frame, never binary).

Design rules:

* **One store, many connections.**  Every connection shares the server's
  single :class:`ShardStore`; its decoded-shard LRU is concurrent-safe
  (a lock guards cache mutation), so hot shards are decoded once no matter
  which connection asked first.
* **The event loop never touches a shard.**  All store work runs on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor`
  (``decode_threads``); the loop only frames bytes and schedules work, so a
  cold multi-megabyte decode cannot stall unrelated connections.
* **Scalar requests coalesce into batch calls.**  Concurrent ``degree`` /
  ``neighbors`` requests that land in the same event-loop tick are folded
  into one ``store.degrees`` / ``store.edges_for_sources`` call (the PR 1
  batch-first entry points) and the answers are fanned back out — under
  many clients the store sees a few array calls, not a scalar call storm.
* **Errors are frames, not disconnects.**  A store ``ValueError`` /
  ``IndexError`` travels back as an error frame carrying the exact message;
  only an untrustworthy frame (oversized length prefix, non-JSON body,
  disconnect mid-frame) closes the connection, and then only that one.
* **Operational surface built in.**  A ``stats`` request reports request
  counts, per-op latency histograms (with derived p50/p95/p99), coalescing
  effectiveness, and the store's ``shard_reads`` / ``cache_hits``;
  ``metrics`` exposes the same registry as a raw snapshot plus Prometheus
  text; ``reset_stats`` rearms every counter (benchmark warmup exclusion);
  ``shutdown`` requests a graceful stop (in-flight requests finish, then
  the listener closes).  PR 10 adds ``profile`` (start / stop / snapshot /
  reset the continuous :class:`~repro.obs.SamplingProfiler`), ``events``
  (the :class:`~repro.obs.EventLog` flight recorder's tail), and
  ``health`` (liveness: uptime, profiler / recorder state, connections) —
  all additive ops, no protocol version bump.
* **One registry, one recorder (PR 8).**  All telemetry lives on a single
  :class:`repro.obs.MetricsRegistry` shared with the store — ``stats()`` is
  a view over it, never a private dict — and requests carrying the additive
  ``"trace"`` key run under :mod:`repro.obs.trace` spans recorded into the
  server's bounded :class:`~repro.obs.TraceRecorder`, retrievable through
  the ``trace`` op.  Requests above ``slow_query_us`` are appended to a
  structured JSON-lines slow-query log when one is configured.

:class:`ThreadedServer` runs the whole thing on a background thread for
synchronous callers — the test suite, benchmarks, and examples stand a
server up with ``with ThreadedServer(store) as handle: ...``.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from repro.obs import (
    EventLog,
    MetricsRegistry,
    SamplingProfiler,
    TraceRecorder,
    trace,
)
from repro.serve import protocol, shaping
from repro.serve.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    SUPPORTED_PROTOCOL_VERSIONS,
    ProtocolError,
)
from repro.store.query import ShardStore

__all__ = ["ShardStoreServer", "ThreadedServer"]

#: Upper bucket bounds (µs) of the per-op latency histograms
#: (``serve.latency_us`` series on the registry).
_LATENCY_BOUNDS_US = (100, 250, 500, 1_000, 2_500, 5_000,
                      10_000, 25_000, 50_000, 100_000, 500_000)


class _Coalescer:
    """Folds concurrent scalar submissions into one batched store call.

    ``submit(value)`` returns a future; all values submitted before the next
    event-loop tick (or up to ``max_batch``) are handed to *flush_fn* as one
    list on the executor, and the returned per-value results resolve the
    futures in order.  Per-value validation must happen **before** submit —
    a failure inside *flush_fn* fails the whole batch.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 executor: ThreadPoolExecutor,
                 flush_fn: Callable[[List], List], *, max_batch: int = 1024,
                 registry: Optional[MetricsRegistry] = None,
                 kind: str = "adhoc"):
        self._loop = loop
        self._executor = executor
        self._flush_fn = flush_fn
        self._max_batch = max_batch
        self._pending: List = []  # (value, future) pairs
        self._flush_scheduled = False
        # Effectiveness counters are registry series (labelled by the scalar
        # op being coalesced) so the fleet rollup and Prometheus see them;
        # a private registry keeps direct construction (unit tests) working.
        registry = registry if registry is not None else MetricsRegistry()
        self._batches = registry.counter("serve.coalesced_batches", kind=kind)
        self._requests = registry.counter("serve.coalesced_requests", kind=kind)
        self._max_batch_seen = registry.gauge("serve.coalesce_max_batch",
                                              kind=kind)

    def submit(self, value) -> "asyncio.Future":
        future = self._loop.create_future()
        self._pending.append((value, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)
        return future

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._batches.inc()
        self._requests.inc(len(batch))
        self._max_batch_seen.set_max(len(batch))
        values = [value for value, _ in batch]
        task = self._loop.run_in_executor(
            self._executor, self._flush_fn, values)

        def _distribute(done: "asyncio.Future") -> None:
            exc = done.exception()
            for index, (_, future) in enumerate(batch):
                if future.cancelled():
                    continue
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(done.result()[index])

        task.add_done_callback(_distribute)

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def max_batch_seen(self) -> int:
        return self._max_batch_seen.value

    def stats(self) -> dict:
        return {"requests": self.requests, "batches": self.batches,
                "max_batch": self.max_batch_seen}


def _arg(args: dict, name: str):
    if name not in args:
        raise ValueError(f"request args missing {name!r}")
    return args[name]


def _arg_int(args: dict, name: str) -> int:
    value = _arg(args, name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"request arg {name!r} must be an integer, "
                         f"got {type(value).__name__}")
    return value


def _arg_int_list(args: dict, name: str) -> List[int]:
    value = _arg(args, name)
    if not isinstance(value, list) or any(
            isinstance(x, bool) or not isinstance(x, int) for x in value):
        raise ValueError(f"request arg {name!r} must be a list of integers")
    return value


def _arg_bool(args: dict, name: str, default: bool = False) -> bool:
    value = args.get(name, default)
    if not isinstance(value, bool):
        raise ValueError(f"request arg {name!r} must be a boolean")
    return value


class ShardStoreServer:
    """Asyncio front-end serving one :class:`~repro.store.ShardStore`.

    Parameters
    ----------
    store:
        A :class:`ShardStore` instance, a compacted store directory (a
        store is then opened with *cache_shards*), or any object exposing
        the same query surface — the range router serves its fleet façade
        through this very class.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port, published as
        :attr:`port` after :meth:`start`.
    decode_threads:
        Size of the thread pool all store work runs on — the bound on
        concurrent shard decodes.
    max_request_bytes:
        Cap on incoming request frames; an oversized length prefix gets one
        error frame and the connection is closed.
    cache_shards:
        LRU size used only when *store* is a directory path.
    slow_query_us:
        Latency threshold (µs) above which a request is counted in
        ``serve.slow_queries`` and appended to the slow-query log.
        Defaults to 100 000 µs when *slow_query_log* is set, else off.
    slow_query_log:
        Destination for the structured JSON-lines slow-query log — a path
        (opened append at :meth:`start`, closed on :meth:`stop`) or any
        object with a ``write`` method.  Each line records ``ts`` / ``op``
        / ``elapsed_us`` / ``ok`` / ``trace``.
    """

    def __init__(self, store, *, host: str = "127.0.0.1", port: int = 0,
                 decode_threads: int = 4,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                 max_coalesce_batch: int = 1024,
                 cache_shards: int = 8,
                 slow_query_us: Optional[int] = None,
                 slow_query_log=None):
        # One registry per server process view: a store opened here joins
        # it, a pre-opened store (or fleet façade) brings its own, so
        # server and store stats are views over the same series.
        if isinstance(store, (str, Path)):
            self.registry = MetricsRegistry()
            self.events = EventLog()
            store = ShardStore(store, cache_shards=cache_shards,
                               registry=self.registry, events=self.events)
        else:
            self.registry = getattr(store, "registry", None) or MetricsRegistry()
            # One flight recorder per server process view, same adoption
            # rule as the registry: a store (or fleet façade) that brings
            # its own event log shares it, so store evictions and server
            # events land on one timeline.  (Explicit None test: an empty
            # EventLog is len()-falsy and must still be adopted.)
            adopted = getattr(store, "events", None)
            self.events = adopted if adopted is not None else EventLog()
        self.profiler = SamplingProfiler()
        self.store = store
        self.host = host
        self.port = int(port)
        self.decode_threads = int(decode_threads)
        self.max_request_bytes = int(max_request_bytes)
        self.max_coalesce_batch = int(max_coalesce_batch)
        self.recorder = TraceRecorder()
        if slow_query_us is None and slow_query_log is not None:
            slow_query_us = 100_000
        self.slow_query_us = slow_query_us
        self._slow_log_spec = slow_query_log
        self._slow_log = None
        self._slow_log_owned = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: set = set()
        self._tasks: set = set()
        self._degree_coalescer: Optional[_Coalescer] = None
        self._neighbors_coalescers: dict = {}
        self._started_at: Optional[float] = None
        self._started_at_wall: Optional[float] = None
        self._ops = {
            "hello": self._op_hello,
            "degree": self._op_degree,
            "degrees": self._op_degrees,
            "neighbors": self._op_neighbors,
            "edges_for_sources": self._op_edges_for_sources,
            "edges_in_range": self._op_edges_in_range,
            "egonet": self._op_egonet,
            "subgraph": self._op_subgraph,
            "edge_payloads": self._op_edge_payloads,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "trace": self._op_trace,
            "profile": self._op_profile,
            "events": self._op_events,
            "health": self._op_health,
            "reset_stats": self._op_reset_stats,
            "shutdown": self._op_shutdown,
        }
        # Pre-create every per-op series so the maps never change size while
        # serving: stats() may be called from another thread (ThreadedServer
        # monitoring) and must not race a dict resize.
        op_keys = [*self._ops, "_invalid"]
        self._request_counts = {
            op: self.registry.counter("serve.requests", op=op)
            for op in op_keys}
        self._latency = {
            op: self.registry.histogram("serve.latency_us",
                                        _LATENCY_BOUNDS_US, unit="us", op=op)
            for op in op_keys}
        self._error_count = self.registry.counter("serve.errors")
        self._protocol_errors = self.registry.counter("serve.protocol_errors")
        self._connections_total = self.registry.counter(
            "serve.connections_total")
        self._binary_frames = self.registry.counter("serve.binary_frames")
        self._binary_bytes = self.registry.counter("serve.binary_bytes")
        self._slow_queries = self.registry.counter("serve.slow_queries")
        self.registry.gauge("serve.connections_open",
                            fn=lambda: len(self._writers))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and arm the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.decode_threads, thread_name_prefix="shard-decode")
        self._degree_coalescer = _Coalescer(
            self._loop, self._executor, self._degrees_batch,
            max_batch=self.max_coalesce_batch,
            registry=self.registry, kind="degree")
        self._neighbors_coalescers = {
            with_payload: _Coalescer(
                self._loop, self._executor,
                lambda vs, wp=with_payload: self._neighbors_batch(vs, wp),
                max_batch=self.max_coalesce_batch,
                registry=self.registry,
                kind="neighbors_payload" if with_payload else "neighbors")
            for with_payload in (False, True)
        }
        if self._slow_log_spec is not None and self._slow_log is None:
            if hasattr(self._slow_log_spec, "write"):
                self._slow_log = self._slow_log_spec
            else:
                self._slow_log = open(self._slow_log_spec, "a", encoding="utf-8")
                self._slow_log_owned = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._started_at_wall = time.time()

    async def stop(self, *, grace_s: float = 5.0) -> None:
        """Graceful stop: close the listener, let every in-flight request
        finish and flush its response (handlers watch the stop event and
        exit after the current frame), then — after *grace_s* — abort any
        connection a stalled client is keeping open, and drop the pool."""
        if self._server is not None and self._started_at is not None:
            # Guarded on the live listener so a double stop() (context exit
            # after a client-requested shutdown) records one event, not two.
            self.events.emit(
                "serve.shutdown", host=self.host, port=self.port,
                uptime_s=round(time.monotonic() - self._started_at, 3))
        self.profiler.stop()
        if self._stop_event is not None:
            self._stop_event.set()  # idle handlers wake from their read
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            _, pending = await asyncio.wait(list(self._tasks),
                                            timeout=grace_s)
            if pending:
                # A peer that stopped reading can block drain() forever;
                # abort the transport (close() would wait for the buffer).
                for writer in list(self._writers):
                    writer.transport.abort()
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._slow_log is not None and self._slow_log_owned:
            self._slow_log.close()
            self._slow_log = None
            self._slow_log_owned = False

    def request_stop(self) -> None:
        """Ask the serve loop to exit (safe from any thread; a no-op when
        the server already stopped, e.g. via a client ``shutdown``)."""
        if (self._loop is None or self._stop_event is None
                or self._loop.is_closed()):
            return
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop closed between the check and the call

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (or a ``shutdown`` request).

        Stops the server on the way out even when cancelled — Ctrl-C under
        :func:`asyncio.run` cancels this coroutine, and the ``finally``
        still runs the graceful teardown."""
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def __aenter__(self) -> "ShardStoreServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections_total.inc()
        self._writers.add(writer)
        task = asyncio.current_task()
        self._tasks.add(task)
        stop_wait = asyncio.ensure_future(self._stop_event.wait())
        try:
            while True:
                # Race the next frame against the stop event: a request that
                # is already in flight always finishes (dispatch and the
                # response write happen below, before this point is reached
                # again), while an *idle* connection closes promptly on stop.
                read_task = asyncio.ensure_future(protocol.read_frame_async(
                    reader, max_bytes=self.max_request_bytes))
                await asyncio.wait({read_task, stop_wait},
                                   return_when=asyncio.FIRST_COMPLETED)
                if not read_task.done():
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, ProtocolError,
                            ConnectionResetError, BrokenPipeError):
                        pass
                    break
                try:
                    frame = read_task.result()
                except ProtocolError as exc:
                    # The byte stream can no longer be trusted: answer once,
                    # then drop this connection (and only this one).
                    self._protocol_errors.inc()
                    await self._try_send(writer, protocol.error_frame(exc))
                    break
                if frame is None:  # clean EOF at a frame boundary
                    break
                response, binary_rows = await self._dispatch(frame)
                binary_parts = None
                try:
                    payload = protocol.encode_frame(response)
                    if binary_rows is not None:
                        # Raw bytes over the decoded (mmapped) rows; the
                        # byte-cast is required because a buffering transport
                        # extends a bytearray with the view's *elements*.
                        # (A zero-size ndarray view refuses the cast — an
                        # empty range still gets its zero-length frame.)
                        view = (memoryview(binary_rows).cast("B")
                                if binary_rows.nbytes else memoryview(b""))
                        binary_parts = (
                            protocol.binary_frame_header(view.nbytes), view)
                except ProtocolError as exc:  # response exceeded the cap
                    payload = protocol.encode_frame(protocol.error_frame(exc))
                    binary_parts = None
                if binary_parts is not None:
                    # Count before the bytes can reach a client: a stats
                    # read that races the send must never under-report a
                    # frame the peer has already received.
                    self._binary_frames.inc()
                    self._binary_bytes.inc(binary_parts[1].nbytes)
                writer.write(payload)
                if binary_parts is not None:
                    writer.write(binary_parts[0])
                    writer.write(binary_parts[1])
                await writer.drain()
                if self._stop_event.is_set():
                    break  # stop requested while we served this frame
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-write; nothing to answer
        finally:
            stop_wait.cancel()
            self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _try_send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        try:
            writer.write(protocol.encode_frame(obj))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _dispatch(self, frame: dict):
        """Serve one request frame → ``(response, binary_rows_or_None)``.

        *binary_rows* is non-``None`` only for a successful v2 request that
        opted into the bulk plane: the caller writes the JSON control frame
        first, then one binary frame over the returned array's bytes.
        Error responses never carry a binary frame.

        A request carrying the additive ``"trace"`` key
        (``{"id": <trace_id>, "span": <parent_span_id>}``) is served under
        an activated trace context: the ``serve.<op>`` span records into
        this server's recorder and store work inherits the context (so
        shard-decode spans nest under it).  Untraced requests skip the
        tracing machinery entirely.
        """
        trace_ref = frame.get("trace")
        if (isinstance(trace_ref, dict)
                and isinstance(trace_ref.get("id"), str)):
            return await self._dispatch_timed(frame, trace_ref)
        return await self._dispatch_timed(frame, None)

    #: Ops whose handlers provably open no child spans — the coalesced
    #: scalar ops (their batch flush runs on the executor *without* a
    #: copied context) and ``hello``.  Their serve spans skip the
    #: contextvar switch entirely (``adopt_leaf_span``), which keeps the
    #: traced scalar hot path inside the ≤ 5% overhead budget.
    _LEAF_OPS = frozenset({"degree", "neighbors", "hello"})

    async def _dispatch_timed(self, frame: dict, trace_ref: Optional[dict]):
        op = frame.get("op")
        op_key = op if isinstance(op, str) and op in self._ops else "_invalid"
        trace_id = trace_ref["id"] if trace_ref is not None else None
        binary_rows = None
        ok = True
        if trace_ref is not None:
            # adopt_* fuses trace adoption + the serve span into at most
            # one context switch — this is the per-request hot path.
            adopt = (trace.adopt_leaf_span if op_key in self._LEAF_OPS
                     else trace.adopt_span)
            serve_span = adopt(self.recorder, trace_id, trace_ref.get("span"),
                               f"serve.{op_key}", op=op_key)
        else:
            serve_span = trace.span(f"serve.{op_key}", op=op_key)
        with self._latency[op_key].time() as timer:
            try:
                # The span sees handler exceptions (status="error") before
                # they are converted to error frames below.
                with serve_span:
                    version = frame.get("v")
                    if version not in SUPPORTED_PROTOCOL_VERSIONS:
                        raise ProtocolError(
                            f"unsupported protocol version {version!r}; this "
                            f"server speaks versions "
                            f"{', '.join(map(str, SUPPORTED_PROTOCOL_VERSIONS))}")
                    if op_key == "_invalid":
                        raise ProtocolError(
                            f"unknown op {op!r}; available: "
                            f"{', '.join(sorted(self._ops))}")
                    args = frame.get("args", {})
                    if not isinstance(args, dict):
                        raise ValueError("request args must be a JSON object")
                    if args.get("binary") and version < 2:
                        # A v1 peer must never see a two-frame response;
                        # reject the request but keep the connection — the
                        # framing is intact.
                        raise ProtocolError(
                            "binary responses require protocol version >= 2; "
                            f"this request is v{version}")
                    result = await self._ops[op_key](args)
                if isinstance(result, tuple):
                    result, binary_rows = result
                response = protocol.result_frame(result)
            except Exception as exc:  # every failure becomes an error frame
                self._error_count.inc()
                ok = False
                binary_rows = None
                response = protocol.error_frame(exc)
        self._request_counts[op_key].inc()
        if (self.slow_query_us is not None
                and timer.elapsed_us >= self.slow_query_us):
            self._slow_queries.inc()
            self._log_slow_query(op_key, timer.elapsed_us, ok, trace_id)
            # trace_id passed explicitly: the serve span exited above, so
            # the flight recorder's auto-stamp would miss the request's id.
            self.events.emit("serve.slow_request", trace_id=trace_id,
                             op=op_key, elapsed_us=int(timer.elapsed_us),
                             ok=ok)
        return response, binary_rows

    def _log_slow_query(self, op_key: str, elapsed_us: int, ok: bool,
                        trace_id: Optional[str]) -> None:
        if self._slow_log is None:
            return
        line = json.dumps({"ts": round(time.time(), 3), "op": op_key,
                           "elapsed_us": int(elapsed_us), "ok": ok,
                           "trace": trace_id}, sort_keys=True)
        try:
            self._slow_log.write(line + "\n")
            self._slow_log.flush()
        except (OSError, ValueError):
            pass  # a full disk / closed sink must never fail a request

    async def _run_store(self, fn, *args):
        """Run one store call on the bounded decode pool.

        ``run_in_executor`` does *not* carry ``contextvars``; when a trace
        is active the context is copied explicitly so store-side spans
        (shard decodes, fleet fan-out attempts) stay in the request's tree.
        """
        if trace.current() is not None:
            ctx = contextvars.copy_context()
            return await self._loop.run_in_executor(
                self._executor, lambda: ctx.run(fn, *args))
        return await self._loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------
    # Coalesced batch kernels (run on the executor)
    # ------------------------------------------------------------------
    def _degrees_batch(self, vertices: List[int]) -> List[int]:
        values = self.store.degrees(np.asarray(vertices, dtype=np.int64))
        return [int(d) for d in values]

    def _neighbors_batch(self, vertices: List[int],
                         with_payload: bool) -> List[np.ndarray]:
        """One ``edges_for_sources`` gather for a whole batch, sliced back
        per requested vertex (`rows` is ``(src, dst)``-sorted)."""
        rows = self.store.edges_for_sources(
            np.asarray(vertices, dtype=np.int64), with_payload=with_payload)
        srcs = rows[:, 0]
        lefts = np.searchsorted(srcs, np.asarray(vertices, dtype=np.int64),
                                side="left")
        rights = np.searchsorted(srcs, np.asarray(vertices, dtype=np.int64),
                                 side="right")
        return [rows[lo:hi] for lo, hi in zip(lefts, rights)]

    def _check_vertex(self, vertex: int) -> int:
        """Range-check *before* coalescing so one bad vertex cannot fail an
        entire batch of innocent requests (the store's message, verbatim)."""
        if not 0 <= vertex < self.store.n_vertices:
            raise IndexError("product vertex id out of range")
        return vertex

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_hello(self, args: dict) -> dict:
        return shaping.hello_shape(self._ops,
                                   shaping.shape_store_info(self.store),
                                   started_at=self._started_at_wall,
                                   uptime_s=self._uptime_s())

    def _uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    async def _op_degree(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        degree = await self._degree_coalescer.submit(vertex)
        return shaping.degree_shape(vertex, degree)

    async def _op_degrees(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        return await self._run_store(
            lambda: shaping.shape_degrees(self.store, vertices))

    async def _op_neighbors(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        with_payload = _arg_bool(args, "with_payload")
        rows = await self._neighbors_coalescers[with_payload].submit(vertex)
        return shaping.neighbors_shape(vertex, rows,
                                       self.store.payload_columns,
                                       with_payload=with_payload)

    async def _op_edges_for_sources(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        with_payload = _arg_bool(args, "with_payload")
        return await self._run_store(
            lambda: shaping.shape_edges_for_sources(self.store, vertices,
                                                    with_payload=with_payload))

    async def _op_edges_in_range(self, args: dict):
        lo = _arg_int(args, "lo")
        hi = _arg_int(args, "hi")
        with_payload = _arg_bool(args, "with_payload")
        binary = _arg_bool(args, "binary")
        limit = args.get("limit")
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int)):
            raise ValueError("request arg 'limit' must be an integer or null")
        if binary:
            if limit is not None:
                raise ValueError(
                    "request arg 'limit' is not supported with binary "
                    "responses; truncate client-side")
            # (control, rows): _dispatch unpacks the tuple and the handler
            # follows the control frame with the rows' raw bytes.
            return await self._run_store(
                lambda: shaping.shape_range_binary(self.store, lo, hi,
                                                   with_payload=with_payload))
        return await self._run_store(
            lambda: shaping.shape_range(self.store, lo, hi,
                                        with_payload=with_payload,
                                        limit=limit))

    async def _op_egonet(self, args: dict) -> dict:
        vertex = self._check_vertex(_arg_int(args, "vertex"))
        with_payload = _arg_bool(args, "with_payload")
        include_members = _arg_bool(args, "include_members")
        return await self._run_store(
            lambda: shaping.shape_egonet(self.store, vertex,
                                         with_payload=with_payload,
                                         include_members=include_members))

    async def _op_subgraph(self, args: dict) -> dict:
        vertices = _arg_int_list(args, "vertices")
        with_payload = _arg_bool(args, "with_payload")
        return await self._run_store(
            lambda: shaping.shape_subgraph(self.store, vertices,
                                           with_payload=with_payload))

    async def _op_edge_payloads(self, args: dict) -> dict:
        ps = _arg_int_list(args, "ps")
        qs = _arg_int_list(args, "qs")
        if len(ps) != len(qs):
            raise ValueError(f"ps and qs must have matching shapes, "
                             f"got ({len(ps)},) and ({len(qs)},)")
        return await self._run_store(
            lambda: shaping.shape_edge_payloads(self.store, ps, qs))

    async def _op_stats(self, args: dict) -> dict:
        return shaping.stats_answer_shape(self.stats())

    async def _op_metrics(self, args: dict) -> dict:
        # Snapshot on the pool: fn-gauges may take the store's cache lock.
        snapshot = await self._run_store(self.registry.snapshot)
        return shaping.metrics_shape(snapshot)

    async def _op_trace(self, args: dict) -> dict:
        trace_id = _arg(args, "id")
        if not isinstance(trace_id, str):
            raise ValueError("request arg 'id' must be a string trace id")
        return shaping.trace_answer_shape(trace_id,
                                          self.recorder.spans(trace_id))

    #: Actions the ``profile`` op accepts.
    _PROFILE_ACTIONS = frozenset({"start", "stop", "snapshot", "reset"})

    @staticmethod
    def _profile_args(args: dict):
        """Validate and unpack a ``profile`` request's arguments."""
        action = args.get("action", "snapshot")
        if action not in ShardStoreServer._PROFILE_ACTIONS:
            raise ValueError(
                f"request arg 'action' must be one of "
                f"{', '.join(sorted(ShardStoreServer._PROFILE_ACTIONS))}; "
                f"got {action!r}")
        hz = args.get("hz")
        if hz is not None and (isinstance(hz, bool)
                               or not isinstance(hz, (int, float))):
            raise ValueError("request arg 'hz' must be a number or null")
        collapsed = _arg_bool(args, "collapsed", False)
        return action, hz, collapsed

    async def _op_profile(self, args: dict) -> dict:
        action, hz, collapsed = self._profile_args(args)
        # On the pool: ``stop`` joins the sampling thread and must never
        # stall the event loop mid-sample.
        return await self._run_store(self._profile, action, hz, collapsed)

    def _apply_profile_action(self, action: str, hz) -> None:
        if action == "start":
            self.profiler.start(hz=float(hz) if hz is not None else None)
        elif action == "stop":
            self.profiler.stop()
        elif action == "reset":
            self.profiler.reset()

    def _profile(self, action: str, hz, collapsed: bool) -> dict:
        self._apply_profile_action(action, hz)
        stats = self.profiler.snapshot()
        return shaping.profile_shape(
            action, stats.as_dict(), running=self.profiler.running,
            hz=self.profiler.hz,
            collapsed=stats.collapsed() if collapsed else None)

    @staticmethod
    def _events_args(args: dict):
        """Validate and unpack an ``events`` request's arguments."""
        limit = args.get("limit")
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int)):
            raise ValueError("request arg 'limit' must be an integer or null")
        kind = args.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ValueError("request arg 'kind' must be a string or null")
        return limit, kind

    async def _op_events(self, args: dict) -> dict:
        limit, kind = self._events_args(args)
        return shaping.events_shape(self.events.tail(limit, kind=kind),
                                    dropped=self.events.dropped)

    async def _op_health(self, args: dict) -> dict:
        return shaping.health_shape(status="ok", **self._health_sections())

    def _health_sections(self) -> dict:
        """The liveness facts shared by a single server's ``health`` answer
        and the router's rollup: lifetime, profiler / flight-recorder /
        trace-recorder state, open connections."""
        return {
            "started_at": self._started_at_wall,
            "uptime_s": self._uptime_s(),
            "profiler": {"running": self.profiler.running,
                         "hz": self.profiler.hz,
                         "samples": self.profiler.snapshot().samples},
            "events": {"recorded": len(self.events),
                       "dropped": self.events.dropped,
                       "max_events": self.events.max_events},
            "traces": len(self.recorder.trace_ids()),
            "connections_open": len(self._writers),
        }

    async def _op_reset_stats(self, args: dict) -> dict:
        details = await self._run_store(self._reset_stats)
        return shaping.reset_stats_shape(workers=details)

    def _reset_stats(self) -> Optional[int]:
        """Zero every registry series; a store with its own reset hook (the
        fleet façade fans the reset out to its workers) runs it too, and
        its worker count rides back on the answer shape."""
        self.registry.reset()
        reset_hook = getattr(self.store, "reset_stats", None)
        return reset_hook() if reset_hook is not None else None

    async def _op_shutdown(self, args: dict) -> dict:
        # Reply first; the loop notices the event after this response flushes.
        self._loop.call_soon(self._stop_event.set)
        return shaping.shutdown_shape()

    # ------------------------------------------------------------------
    # Operational surface
    # ------------------------------------------------------------------
    def _server_stats(self) -> dict:
        """The ``"server"`` counter section alone — shared with the range
        router, whose ``stats()`` composes it with a fleet rollup instead of
        a single store's counters.  Every number is read off the registry
        series; the dict is a *view*, not a second set of books.  Latency
        summaries carry p50/p95/p99 derived from the histogram buckets."""
        neighbors = list(self._neighbors_coalescers.values())
        degree = self._degree_coalescer
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3)
            if self._started_at is not None else 0.0,
            "requests": {op: counter.value
                         for op, counter in self._request_counts.items()
                         if counter.value},
            "errors": self._error_count.value,
            "protocol_errors": self._protocol_errors.value,
            "connections_open": len(self._writers),
            "connections_total": self._connections_total.value,
            "decode_threads": self.decode_threads,
            "slow_queries": self._slow_queries.value,
            "binary": {"frames": self._binary_frames.value,
                       "bytes": self._binary_bytes.value},
            "coalesced": {
                "degree": degree.stats() if degree is not None
                else {"requests": 0, "batches": 0, "max_batch": 0},
                "neighbors": {
                    "requests": sum(c.requests for c in neighbors),
                    "batches": sum(c.batches for c in neighbors),
                    "max_batch": max((c.max_batch_seen for c in neighbors),
                                     default=0),
                },
            },
            "latency_us": {op: hist.summary()
                           for op, hist in sorted(self._latency.items())
                           if hist.count},
        }

    def stats(self) -> dict:
        """Request counts, per-op latency, coalescing effectiveness, and the
        store's cache counters — the ``stats`` request returns this."""
        return {
            "server": self._server_stats(),
            "store": self.store.stats(),
        }


class ThreadedServer:
    """A :class:`ShardStoreServer` on a background thread, for synchronous
    callers (tests, benchmarks, examples, and the blocking client).

    ``with ThreadedServer(store_dir) as server:`` starts the event loop on a
    daemon thread, binds an ephemeral port (``server.host`` /
    ``server.port``), and tears everything down — gracefully — on exit.
    """

    def __init__(self, store, *, server_cls=None, **kwargs):
        self._store = store
        self._server_cls = server_cls if server_cls is not None else ShardStoreServer
        self._kwargs = kwargs
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[ShardStoreServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self) -> "ThreadedServer":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="shard-serve", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            # Construction opens the store (manifest read, validation) and
            # can fail just like bind — both must surface to start(), never
            # leave it blocked on the ready event.
            server = self._server_cls(self._store, **self._kwargs)
            await server.start()
        except BaseException as exc:  # surface open/bind errors to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.host, self.port = server.host, server.port
        self._ready.set()
        await server.serve_until_stopped()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self.server is not None:
            self.server.request_stop()
        self._thread.join()
        self._thread = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
