"""Graph input/output: edge lists and compressed Kronecker-factor bundles.

One of the paper's motivating observations is that a Kronecker product graph
with :math:`|E_C| = |E_A|\\,|E_B|` edges is represented exactly by its two
small factors — ``O(|E_C|^{1/2})`` storage — and can therefore be *shared* in
compressed form and re-expanded (or queried implicitly) by any consumer.
This module implements that interchange format plus plain edge-list I/O for
the factors themselves.

Formats
-------
* **Edge list** (``.tsv`` / ``.txt``): one ``u<TAB>v`` pair per line,
  0-based, ``#`` comment lines ignored.  Undirected graphs store each edge
  once with ``u <= v``.
* **Kronecker bundle** (``.npz``): a NumPy archive holding both factors in
  COO form plus metadata, written by :func:`save_kronecker_bundle` and read
  by :func:`load_kronecker_bundle`.  The bundle is the "compressed graph":
  two graphs of a few MB describe a product of trillions of edges.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph
from repro.graphs.labeled import VertexLabeledGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_directed_edge_list",
    "save_kronecker_bundle",
    "load_kronecker_bundle",
]

PathLike = Union[str, Path]


def write_edge_list(graph: Union[Graph, DirectedGraph], path: PathLike, *, header: bool = True) -> None:
    """Write a graph to a tab-separated edge list.

    Undirected graphs write each edge once (``u <= v``); directed graphs write
    every arc.  A comment header records the vertex count so that isolated
    trailing vertices survive a round trip.
    """
    path = Path(path)
    if isinstance(graph, DirectedGraph):
        edges = graph.edges()
        kind = "directed"
    else:
        edges = graph.edges()
        kind = "undirected"
    lines = []
    if header:
        lines.append(f"# kind={kind} n_vertices={graph.n_vertices} n_edges={edges.shape[0]}")
    lines.extend(f"{int(u)}\t{int(v)}" for u, v in edges)
    path.write_text("\n".join(lines) + "\n")


def _parse_edge_lines(path: Path) -> Tuple[np.ndarray, Optional[int]]:
    """Parse edge lines and the ``n_vertices`` header hint, if present."""
    n_vertices: Optional[int] = None
    rows = []
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("n_vertices="):
                    n_vertices = int(token.split("=", 1)[1])
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge line: {raw!r}")
        rows.append((int(parts[0]), int(parts[1])))
    edges = np.asarray(rows, dtype=np.int64) if rows else np.zeros((0, 2), dtype=np.int64)
    return edges, n_vertices


def read_edge_list(path: PathLike, *, n_vertices: Optional[int] = None) -> Graph:
    """Read an undirected graph from a tab/space/comma-separated edge list."""
    edges, header_n = _parse_edge_lines(Path(path))
    n = n_vertices if n_vertices is not None else header_n
    return Graph.from_edges(map(tuple, edges), n_vertices=n, name=Path(path).stem)


def read_directed_edge_list(path: PathLike, *, n_vertices: Optional[int] = None) -> DirectedGraph:
    """Read a directed graph from an edge list (each line is one arc)."""
    edges, header_n = _parse_edge_lines(Path(path))
    n = n_vertices if n_vertices is not None else header_n
    return DirectedGraph.from_edges(map(tuple, edges), n_vertices=n, name=Path(path).stem)


def _matrix_to_arrays(adj: sp.spmatrix, prefix: str) -> dict:
    coo = adj.tocoo()
    return {
        f"{prefix}_row": coo.row.astype(np.int64),
        f"{prefix}_col": coo.col.astype(np.int64),
        f"{prefix}_shape": np.asarray(coo.shape, dtype=np.int64),
    }


def _arrays_to_matrix(data, prefix: str) -> sp.csr_matrix:
    shape = tuple(int(x) for x in data[f"{prefix}_shape"])
    row = data[f"{prefix}_row"]
    col = data[f"{prefix}_col"]
    vals = np.ones(row.shape[0], dtype=np.int64)
    return sp.csr_matrix((vals, (row, col)), shape=shape)


def save_kronecker_bundle(
    path: PathLike,
    factor_a: Union[Graph, DirectedGraph, VertexLabeledGraph],
    factor_b: Union[Graph, DirectedGraph, VertexLabeledGraph],
    *,
    metadata: Optional[dict] = None,
) -> None:
    """Save both Kronecker factors (and optional metadata) into one ``.npz`` bundle.

    The bundle is the compressed representation of ``C = A ⊗ B``: consumers
    reconstruct the factors with :func:`load_kronecker_bundle` and either
    materialize the product or query it implicitly via
    :class:`repro.core.KroneckerGraph`.
    """
    path = Path(path)
    payload: dict = {}
    kinds = []
    for prefix, factor in (("a", factor_a), ("b", factor_b)):
        payload.update(_matrix_to_arrays(factor.adjacency, prefix))
        if isinstance(factor, VertexLabeledGraph):
            kinds.append("labeled")
            payload[f"{prefix}_labels"] = factor.labels
        elif isinstance(factor, DirectedGraph):
            kinds.append("directed")
        else:
            kinds.append("undirected")
    meta = dict(metadata or {})
    meta.setdefault("format_version", 1)
    meta["factor_kinds"] = kinds
    meta["factor_names"] = [factor_a.name, factor_b.name]
    payload["metadata_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_kronecker_bundle(path: PathLike):
    """Load a bundle written by :func:`save_kronecker_bundle`.

    Returns
    -------
    (factor_a, factor_b, metadata):
        The two factors reconstructed with their original types (undirected,
        directed, or vertex-labeled) and the metadata dictionary.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(bytes(data["metadata_json"]).decode("utf-8"))
        kinds = meta.get("factor_kinds", ["undirected", "undirected"])
        names = meta.get("factor_names", ["", ""])
        factors = []
        for prefix, kind, name in zip(("a", "b"), kinds, names):
            adj = _arrays_to_matrix(data, prefix)
            if kind == "labeled":
                factors.append(
                    VertexLabeledGraph(adj, data[f"{prefix}_labels"], name=name, validate=False)
                )
            elif kind == "directed":
                factors.append(DirectedGraph(adj, name=name))
            else:
                factors.append(Graph(adj, name=name, validate=False))
    return factors[0], factors[1], meta
