"""Graph input/output: edge lists and compressed Kronecker-factor bundles.

One of the paper's motivating observations is that a Kronecker product graph
with :math:`|E_C| = |E_A|\\,|E_B|` edges is represented exactly by its two
small factors — ``O(|E_C|^{1/2})`` storage — and can therefore be *shared* in
compressed form and re-expanded (or queried implicitly) by any consumer.
This module implements that interchange format plus plain edge-list I/O for
the factors themselves.

Formats
-------
* **Edge list** (``.tsv`` / ``.txt``): one ``u<TAB>v`` pair per line,
  0-based, ``#`` comment lines ignored.  Undirected graphs store each edge
  once with ``u <= v``.
* **Kronecker bundle** (``.npz``): a NumPy archive holding both factors in
  COO form plus metadata, written by :func:`save_kronecker_bundle` and read
  by :func:`load_kronecker_bundle`.  The bundle is the "compressed graph":
  two graphs of a few MB describe a product of trillions of edges.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph
from repro.graphs.labeled import VertexLabeledGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_directed_edge_list",
    "save_kronecker_bundle",
    "load_kronecker_bundle",
    "NpyShardSink",
    "normalize_payload_columns",
    "write_edge_shards",
    "write_shard_manifest",
    "read_shard_manifest",
    "iter_edge_shards",
    "load_edge_shards",
]

PathLike = Union[str, Path]

#: Manifest file name of a ``.npy`` shard directory.
SHARD_MANIFEST = "manifest.json"

#: Temp-file suffix of an in-flight manifest write (see
#: :func:`write_shard_manifest`); never read, always safe to delete.
_MANIFEST_TMP = SHARD_MANIFEST + ".tmp"

#: The two columns every edge shard starts with.
_ENDPOINT_COLUMNS = ("src", "dst")


def normalize_payload_columns(columns: Sequence[str]) -> Tuple[str, ...]:
    """Canonical *extra* payload column names from either spelling.

    Accepts the extras alone (``("triangles",)``) or the full manifest form
    prefixed with the endpoint columns (``["src", "dst", "triangles"]``) and
    returns just the extras.  Names must be non-empty strings, unique, and
    must not collide with the reserved endpoint columns.
    """
    cols = list(columns)
    if not all(isinstance(c, str) and c for c in cols):
        raise ValueError(f"payload column names must be non-empty strings, got {cols!r}")
    if tuple(cols[:2]) == _ENDPOINT_COLUMNS:
        cols = cols[2:]
    reserved = [c for c in cols if c in _ENDPOINT_COLUMNS]
    if reserved:
        raise ValueError(
            f"payload column names {reserved} are reserved for the edge "
            "endpoints; extras must come after ['src', 'dst']")
    if len(set(cols)) != len(cols):
        raise ValueError(f"duplicate payload column names: {cols!r}")
    return tuple(cols)


def write_shard_manifest(directory: PathLike, manifest: dict) -> None:
    """Durably publish a shard manifest (atomic replace, never a torn file).

    The JSON is written to a temp file *in the same directory*, fsynced, and
    ``os.replace``-d onto ``manifest.json``, so a crash — process kill or
    power loss — leaves either the previous manifest or the new one; readers
    can never observe a truncated manifest that would surface as a raw
    ``JSONDecodeError``.  (Without the fsync the rename could reach disk
    before the temp file's data blocks, resurrecting exactly the torn-file
    state this helper exists to rule out.)
    """
    directory = Path(directory)
    tmp = directory / _MANIFEST_TMP
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / SHARD_MANIFEST)
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory opens
        return
    try:
        os.fsync(dir_fd)  # persist the rename itself
    finally:
        os.close(dir_fd)


def write_edge_list(graph: Union[Graph, DirectedGraph], path: PathLike, *, header: bool = True) -> None:
    """Write a graph to a tab-separated edge list.

    Undirected graphs write each edge once (``u <= v``); directed graphs write
    every arc.  A comment header records the vertex count so that isolated
    trailing vertices survive a round trip.
    """
    path = Path(path)
    if isinstance(graph, DirectedGraph):
        edges = graph.edges()
        kind = "directed"
    else:
        edges = graph.edges()
        kind = "undirected"
    lines = []
    if header:
        lines.append(f"# kind={kind} n_vertices={graph.n_vertices} n_edges={edges.shape[0]}")
    lines.extend(f"{int(u)}\t{int(v)}" for u, v in edges)
    path.write_text("\n".join(lines) + "\n")


def _parse_edge_lines(path: Path) -> Tuple[np.ndarray, Optional[int]]:
    """Parse edge lines and the ``n_vertices`` header hint, if present."""
    n_vertices: Optional[int] = None
    rows = []
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("n_vertices="):
                    n_vertices = int(token.split("=", 1)[1])
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge line: {raw!r}")
        rows.append((int(parts[0]), int(parts[1])))
    edges = np.asarray(rows, dtype=np.int64) if rows else np.zeros((0, 2), dtype=np.int64)
    return edges, n_vertices


def read_edge_list(path: PathLike, *, n_vertices: Optional[int] = None) -> Graph:
    """Read an undirected graph from a tab/space/comma-separated edge list."""
    edges, header_n = _parse_edge_lines(Path(path))
    n = n_vertices if n_vertices is not None else header_n
    return Graph.from_edges(map(tuple, edges), n_vertices=n, name=Path(path).stem)


def read_directed_edge_list(path: PathLike, *, n_vertices: Optional[int] = None) -> DirectedGraph:
    """Read a directed graph from an edge list (each line is one arc)."""
    edges, header_n = _parse_edge_lines(Path(path))
    n = n_vertices if n_vertices is not None else header_n
    return DirectedGraph.from_edges(map(tuple, edges), n_vertices=n, name=Path(path).stem)


class NpyShardSink:
    """Chunked binary spill: one ``.npy`` shard per streamed edge block.

    This is the default disk sink of the streaming generation pipeline — the
    single-node stand-in for "write the trillion-edge graph to a parallel
    file system".  Each rank writes its blocks as independent shard files
    (``edges-r<rank>-b<block>.npy``), so ranks never contend for a shared
    handle and the sink works unchanged under a ``multiprocessing`` pool
    (the object holds only path state and is picklable).  ``finalize()``
    scans the directory and writes a small JSON manifest recording shard
    order and per-shard edge counts; readers go through the manifest, which
    is published atomically (:func:`write_shard_manifest`).

    Compared to the TSV writer this replaces as the default, shards are
    written with one ``np.save`` per block — no per-row formatting at all —
    and round-trip losslessly as ``int64``.

    Shards may carry per-edge ground-truth payload columns beyond the two
    ``(src, dst)`` endpoints: construct the sink with
    ``payload_columns=("triangles", "trussness")`` and feed it
    ``(m, 2 + k)`` blocks whose extra columns hold the named values (the
    streaming pipeline evaluates them per block through one
    :class:`~repro.core.triangle_formulas.TriangleStatsGatherer` per rank
    pass).  The manifest records the column names so every reader — the
    compactor and :class:`repro.store.ShardStore` — knows the row layout.

    Constructing a sink claims the directory for one run: shard files and
    the manifest left over from a previous spill are deleted so a rerun with
    a different block size or rank count can never fold stale shards into
    the new manifest.  (Unpickling — how the sink travels to pool workers —
    does not re-run the constructor, so workers never clean up behind the
    driver.)
    """

    __slots__ = ("directory", "name", "n_vertices", "payload_columns")

    #: Glob matching the shard files this sink writes.
    _SHARD_GLOB = "edges-r*-b*.npy"

    def __init__(self, directory: PathLike, *, name: str = "", n_vertices: int = 0,
                 payload_columns: Sequence[str] = ()):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        for stale in self.directory.glob(self._SHARD_GLOB):
            stale.unlink()
        for stale in (self.directory / SHARD_MANIFEST, self.directory / _MANIFEST_TMP):
            if stale.exists():
                stale.unlink()
        self.name = name
        self.n_vertices = int(n_vertices)
        self.payload_columns = normalize_payload_columns(payload_columns)

    @property
    def block_columns(self) -> int:
        """Width every written block must have: ``2 + len(payload_columns)``."""
        return 2 + len(self.payload_columns)

    def shard_path(self, rank: int, block_index: int) -> Path:
        """Deterministic shard file path for one ``(rank, block)`` pair."""
        return self.directory / f"edges-r{rank:05d}-b{block_index:06d}.npy"

    def write(self, rank: int, block_index: int, edges: np.ndarray) -> None:
        """Spill one ``(m, 2 + k)`` edge block (the streaming sink protocol)."""
        block = np.ascontiguousarray(edges, dtype=np.int64)
        if block.ndim != 2 or block.shape[1] != self.block_columns:
            raise ValueError(
                f"sink expects (m, {self.block_columns}) blocks for "
                f"payload_columns {list(_ENDPOINT_COLUMNS + self.payload_columns)}; "
                f"got shape {block.shape}")
        np.save(self.shard_path(rank, block_index), block)

    def shard_paths(self):
        """All shard files currently in the directory, in (rank, block) order."""
        return sorted(self.directory.glob(self._SHARD_GLOB))

    def finalize(self, metadata: Optional[dict] = None) -> dict:
        """Write the JSON manifest (idempotent, atomic) and return it.

        Shard lengths are read from the ``.npy`` headers via memory mapping —
        finalization never loads edge data.
        """
        shards = []
        total = 0
        for path in self.shard_paths():
            n_edges = int(np.load(path, mmap_mode="r").shape[0])
            shards.append({"file": path.name, "n_edges": n_edges})
            total += n_edges
        manifest = {
            "format_version": 1,
            "kind": "edge-shards",
            "name": self.name,
            "n_vertices": self.n_vertices,
            "total_edges": total,
            "payload_columns": list(_ENDPOINT_COLUMNS + self.payload_columns),
            "shards": shards,
        }
        if metadata:
            manifest["metadata"] = dict(metadata)
        write_shard_manifest(self.directory, manifest)
        return manifest


def write_edge_shards(
    product,
    directory: PathLike,
    *,
    a_edges_per_block: int = 1024,
    max_edges: Optional[int] = None,
    metadata: Optional[dict] = None,
    payload=None,
) -> int:
    """Stream a product's edge list into a ``.npy`` shard directory.

    Single-rank convenience over :class:`NpyShardSink`; *product* is any
    object with ``iter_edge_blocks``/``name``/``n_vertices`` (duck-typed so
    this module never imports :mod:`repro.core`).  Returns the number of
    edges written; the manifest is finalized before returning.

    Parameters
    ----------
    payload:
        Optional per-edge payload evaluator — an object with a ``columns``
        tuple of extra column names and ``attach(edges) -> (m, 2 + k)``
        (:class:`repro.store.PayloadEvaluator` is the canonical one).  Each
        streamed block is widened before it is spilled and the manifest
        records the column names.
    """
    sink = NpyShardSink(directory, name=getattr(product, "name", ""),
                        n_vertices=getattr(product, "n_vertices", 0),
                        payload_columns=payload.columns if payload is not None else ())
    written = 0
    for block_index, block in enumerate(
        product.iter_edge_blocks(a_edges_per_block=a_edges_per_block)
    ):
        if max_edges is not None and written + block.shape[0] > max_edges:
            block = block[: max_edges - written]
        if block.shape[0]:
            if payload is not None:
                block = payload.attach(block)
            sink.write(0, block_index, block)
            written += block.shape[0]
        if max_edges is not None and written >= max_edges:
            break
    sink.finalize(metadata=metadata)
    return written


#: Manifest versions this reader understands.  v1 is the per-block spill
#: written by :class:`NpyShardSink`; v2 adds per-shard source-vertex ranges
#: and is written by :func:`repro.store.compact_shards`.
SUPPORTED_MANIFEST_VERSIONS = (1, 2)

#: Top-level fields every edge-shard manifest must carry.
_MANIFEST_REQUIRED = ("kind", "format_version", "n_vertices", "total_edges", "shards")

#: Extra fields required at format version 2.
_MANIFEST_REQUIRED_V2 = ("sorted_by", "payload_columns")


def _validate_shard_manifest(manifest: object, path: Path) -> dict:
    """Schema-check a decoded manifest, raising :class:`ValueError` that names
    the offending field (never a bare ``KeyError`` deep inside a consumer)."""
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: manifest must be a JSON object, "
                         f"got {type(manifest).__name__}")
    if manifest.get("kind") != "edge-shards":
        raise ValueError(f"{path} is not an edge-shard manifest "
                         f"(kind={manifest.get('kind')!r})")
    for field in _MANIFEST_REQUIRED:
        if field not in manifest:
            raise ValueError(f"{path}: manifest is missing required field {field!r}")
    version = manifest["format_version"]
    if version not in SUPPORTED_MANIFEST_VERSIONS:
        raise ValueError(
            f"{path}: unsupported manifest format_version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_MANIFEST_VERSIONS))})")
    shards = manifest["shards"]
    if not isinstance(shards, list):
        raise ValueError(f"{path}: 'shards' must be a list, "
                         f"got {type(shards).__name__}")
    if version == 2:
        for field in _MANIFEST_REQUIRED_V2:
            if field not in manifest:
                raise ValueError(
                    f"{path}: v2 manifest is missing required field {field!r}")
    if "payload_columns" in manifest:
        _validate_payload_columns(manifest["payload_columns"], path)
    per_shard = ("file", "n_edges") if version == 1 \
        else ("file", "n_edges", "src_min", "src_max")
    prev_min = prev_max = -1
    for index, shard in enumerate(shards):
        if not isinstance(shard, dict):
            raise ValueError(f"{path}: shards[{index}] must be an object")
        for field in per_shard:
            if field not in shard:
                raise ValueError(
                    f"{path}: shards[{index}] is missing required field {field!r}")
        if version == 2:
            # Range sanity lives here — at the single reader — so every
            # consumer (ShardStore, CLI query, iter_edge_shards) fails with
            # the same field-naming error, not a downstream surprise.
            for field in ("src_min", "src_max"):
                value = shard[field]
                if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                    raise ValueError(
                        f"{path}: shards[{index}].{field} must be a "
                        f"non-negative integer, got {value!r}")
            if shard["src_min"] > shard["src_max"]:
                raise ValueError(
                    f"{path}: shards[{index}].src_min ({shard['src_min']}) "
                    f"exceeds src_max ({shard['src_max']})")
            if shard["src_min"] < prev_min or shard["src_max"] < prev_max:
                raise ValueError(
                    f"{path}: shard src_min/src_max vertex ranges are not "
                    f"nondecreasing at shards[{index}]; the store is corrupt "
                    "or was not written by repro.store.compact_shards")
            prev_min, prev_max = shard["src_min"], shard["src_max"]
    return manifest


def _validate_payload_columns(columns: object, path: Path) -> None:
    """Schema rules for the ``payload_columns`` manifest field."""
    if (not isinstance(columns, list)
            or not all(isinstance(c, str) and c for c in columns)):
        raise ValueError(f"{path}: 'payload_columns' must be a list of "
                         f"non-empty strings, got {columns!r}")
    if tuple(columns[:2]) != _ENDPOINT_COLUMNS:
        raise ValueError(f"{path}: 'payload_columns' must begin with "
                         f"['src', 'dst'], got {columns!r}")
    if len(set(columns)) != len(columns):
        raise ValueError(f"{path}: 'payload_columns' contains duplicate "
                         f"names: {columns!r}")


def read_shard_manifest(directory: PathLike) -> dict:
    """Load and validate the manifest of a ``.npy`` shard directory.

    Both manifest versions are accepted: the per-block **v1** spill written by
    :class:`NpyShardSink` and the compacted **v2** store written by
    :func:`repro.store.compact_shards` (whose shard entries carry
    ``src_min``/``src_max`` source-vertex ranges).  v1 manifests are upgraded
    transparently: the returned dictionary always carries ``sorted_by``
    (``None`` for an unsorted block spill) and ``payload_columns``, so
    consumers can branch on one shape.  Corrupted or foreign manifests raise a
    :class:`ValueError` naming the missing or unexpected field; a manifest
    that is not even valid JSON (e.g. a pre-atomic-write truncated file)
    raises a :class:`ValueError` naming the file, never a raw
    ``json.JSONDecodeError``.
    """
    path = Path(directory) / SHARD_MANIFEST
    try:
        decoded = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: manifest is not valid JSON ({exc}); the file looks like "
            "a truncated or interrupted write — re-run the spill or "
            "compaction that produced this directory") from exc
    manifest = _validate_shard_manifest(decoded, path)
    manifest.setdefault("sorted_by", None)
    manifest.setdefault("payload_columns", list(_ENDPOINT_COLUMNS))
    return manifest


def iter_edge_shards(directory: PathLike, *, mmap_mode: Optional[str] = None):
    """Yield the ``(m, 2 + k)`` edge arrays of a shard directory in manifest
    order, where ``k`` is the number of extra ``payload_columns``; a shard
    file whose width disagrees with the manifest raises a :class:`ValueError`
    naming the file.

    ``mmap_mode="r"`` yields read-only memory maps instead of private copies
    — the right mode for read-only sweeps and for feeding compaction, where
    the consumer makes its own copy anyway.  The default (``None``) keeps the
    historical copy-per-shard behaviour for callers that mutate the blocks.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    width = len(manifest["payload_columns"])
    for shard in manifest["shards"]:
        block = np.load(directory / shard["file"], mmap_mode=mmap_mode)
        if block.ndim != 2 or block.shape[1] != width:
            raise ValueError(
                f"{directory / shard['file']}: shard has shape {block.shape} "
                f"but the manifest payload_columns "
                f"{manifest['payload_columns']!r} require {width} columns")
        yield block


def load_edge_shards(directory: PathLike) -> np.ndarray:
    """Concatenate every shard of a directory into one ``(total, 2 + k)`` array.

    The reader-side inverse of the streamed spill; peak memory is the full
    output plus one shard, mirroring ``KroneckerGraph.edges``.  The first two
    columns are always ``(src, dst)``; any extra columns carry the manifest's
    named per-edge payloads.  Shards are memory-mapped while copying into the
    preallocated output, so no shard is ever held as a second private copy.
    """
    manifest = read_shard_manifest(Path(directory))
    total = int(manifest["total_edges"])
    out = np.empty((total, len(manifest["payload_columns"])), dtype=np.int64)
    filled = 0
    for block in iter_edge_shards(directory, mmap_mode="r"):
        out[filled:filled + block.shape[0]] = block
        filled += block.shape[0]
    return out


def _matrix_to_arrays(adj: sp.spmatrix, prefix: str) -> dict:
    coo = adj.tocoo()
    return {
        f"{prefix}_row": coo.row.astype(np.int64),
        f"{prefix}_col": coo.col.astype(np.int64),
        f"{prefix}_shape": np.asarray(coo.shape, dtype=np.int64),
    }


def _arrays_to_matrix(data, prefix: str) -> sp.csr_matrix:
    shape = tuple(int(x) for x in data[f"{prefix}_shape"])
    row = data[f"{prefix}_row"]
    col = data[f"{prefix}_col"]
    vals = np.ones(row.shape[0], dtype=np.int64)
    return sp.csr_matrix((vals, (row, col)), shape=shape)


def save_kronecker_bundle(
    path: PathLike,
    factor_a: Union[Graph, DirectedGraph, VertexLabeledGraph],
    factor_b: Union[Graph, DirectedGraph, VertexLabeledGraph],
    *,
    metadata: Optional[dict] = None,
) -> None:
    """Save both Kronecker factors (and optional metadata) into one ``.npz`` bundle.

    The bundle is the compressed representation of ``C = A ⊗ B``: consumers
    reconstruct the factors with :func:`load_kronecker_bundle` and either
    materialize the product or query it implicitly via
    :class:`repro.core.KroneckerGraph`.
    """
    path = Path(path)
    payload: dict = {}
    kinds = []
    for prefix, factor in (("a", factor_a), ("b", factor_b)):
        payload.update(_matrix_to_arrays(factor.adjacency, prefix))
        if isinstance(factor, VertexLabeledGraph):
            kinds.append("labeled")
            payload[f"{prefix}_labels"] = factor.labels
        elif isinstance(factor, DirectedGraph):
            kinds.append("directed")
        else:
            kinds.append("undirected")
    meta = dict(metadata or {})
    meta.setdefault("format_version", 1)
    meta["factor_kinds"] = kinds
    meta["factor_names"] = [factor_a.name, factor_b.name]
    payload["metadata_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_kronecker_bundle(path: PathLike):
    """Load a bundle written by :func:`save_kronecker_bundle`.

    Returns
    -------
    (factor_a, factor_b, metadata):
        The two factors reconstructed with their original types (undirected,
        directed, or vertex-labeled) and the metadata dictionary.
    """
    path = Path(path)
    # mmap_mode=None stated explicitly: the factors are decompressed and
    # rebuilt into private CSR matrices immediately, so an eager read is
    # the point (and .npz members cannot be mapped anyway).
    with np.load(path, mmap_mode=None, allow_pickle=False) as data:
        meta = json.loads(bytes(data["metadata_json"]).decode("utf-8"))
        kinds = meta.get("factor_kinds", ["undirected", "undirected"])
        names = meta.get("factor_names", ["", ""])
        factors = []
        for prefix, kind, name in zip(("a", "b"), kinds, names):
            adj = _arrays_to_matrix(data, prefix)
            if kind == "labeled":
                factors.append(
                    VertexLabeledGraph(adj, data[f"{prefix}_labels"], name=name, validate=False)
                )
            elif kind == "directed":
                factors.append(DirectedGraph(adj, name=name))
            else:
                factors.append(Graph(adj, name=name, validate=False))
    return factors[0], factors[1], meta
