"""Undirected graph substrate backed by ``scipy.sparse`` adjacency matrices.

The paper works entirely in the language of adjacency matrices: an undirected
graph :math:`G_A` is a symmetric boolean matrix :math:`A \\in \\{0,1\\}^{n\\times n}`,
possibly with self loops on the diagonal.  This module provides the
:class:`Graph` wrapper used throughout :mod:`repro` as the canonical
representation of a Kronecker *factor*.

Conventions
-----------
* Vertices are 0-based integers ``0 .. n-1`` (the paper uses 1-based indices;
  the index-map helpers in :mod:`repro.core.index_maps` expose both).
* ``n_edges`` counts *unordered* vertex pairs, i.e. ``nnz(A)/2`` off-diagonal
  plus one per self loop.  This matches the edge counts reported in the
  paper's experiment table (Section VI).
* Degrees follow the paper's definition ``d_A = (A - I∘A) 1`` — self loops do
  **not** contribute to the degree, but are reported separately.

All heavy operations (degree vectors, Hadamard products, matrix powers) are
vectorized sparse-matrix kernels; no per-edge Python loops occur on hot paths.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro._typing import Edge, MatrixLike
from repro.perf.kernels import csr_has_entry

__all__ = ["Graph", "hadamard", "to_csr", "is_symmetric"]


def to_csr(matrix: MatrixLike, dtype=np.int64) -> sp.csr_matrix:
    """Coerce *matrix* into a canonical CSR adjacency matrix.

    The result has sorted indices, no explicit zeros, duplicate entries summed
    and then clipped back to {0, 1} (an adjacency matrix is boolean: repeating
    an edge does not create a multi-edge).

    Parameters
    ----------
    matrix:
        Dense array, nested sequence, or any SciPy sparse matrix.
    dtype:
        Integer dtype of the stored entries (default ``int64`` so that matrix
        powers used for triangle counting do not overflow).
    """
    if sp.issparse(matrix):
        csr = sp.csr_matrix(matrix, copy=True).astype(dtype)
    else:
        csr = sp.csr_matrix(np.asarray(matrix, dtype=dtype))
    csr.sum_duplicates()
    csr.data = np.minimum(csr.data, 1).astype(dtype)
    csr.eliminate_zeros()
    csr.sort_indices()
    return csr


def is_symmetric(matrix: sp.spmatrix) -> bool:
    """Return ``True`` when the sparse matrix equals its transpose."""
    if matrix.shape[0] != matrix.shape[1]:
        return False
    diff = (matrix != matrix.T)
    # ``!=`` on sparse matrices returns a sparse boolean matrix of mismatches.
    return diff.nnz == 0


def hadamard(a: sp.spmatrix, b: sp.spmatrix) -> sp.csr_matrix:
    """Element-wise (Hadamard) product ``a ∘ b`` of two sparse matrices.

    The paper's Definition 2.  SciPy's ``multiply`` already implements this;
    we wrap it to guarantee a canonical CSR result.
    """
    out = sp.csr_matrix(a).multiply(sp.csr_matrix(b))
    out = sp.csr_matrix(out)
    out.eliminate_zeros()
    out.sort_indices()
    return out


class Graph:
    """An undirected graph stored as a symmetric sparse adjacency matrix.

    Parameters
    ----------
    adjacency:
        Square, symmetric 0/1 matrix.  Self loops (non-zero diagonal) are
        allowed — the paper uses them deliberately to boost triangle counts
        in Kronecker products.
    name:
        Optional human-readable name used in reports and benchmark tables.
    validate:
        When ``True`` (default) the constructor verifies symmetry.  Pass
        ``False`` only when the caller guarantees the invariant (e.g. inside
        generators that build symmetric matrices by construction).
    """

    __slots__ = ("_adj", "name")

    def __init__(self, adjacency: MatrixLike, *, name: str = "", validate: bool = True):
        adj = to_csr(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adj.shape}")
        if validate and not is_symmetric(adj):
            raise ValueError("adjacency matrix of an undirected Graph must be symmetric")
        self._adj = adj
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        n_vertices: Optional[int] = None,
        *,
        name: str = "",
    ) -> "Graph":
        """Build an undirected graph from an iterable of ``(u, v)`` pairs.

        Each pair is symmetrized; duplicates are ignored; ``u == v`` creates a
        self loop.  ``n_vertices`` may be given to include isolated vertices
        beyond the largest endpoint.
        """
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("edges must be pairs of vertex ids")
            if arr.min() < 0:
                raise ValueError("vertex ids must be non-negative")
            implied_n = int(arr.max()) + 1
        else:
            arr = np.zeros((0, 2), dtype=np.int64)
            implied_n = 0
        n = implied_n if n_vertices is None else int(n_vertices)
        if n < implied_n:
            raise ValueError(
                f"n_vertices={n} is smaller than the largest endpoint + 1 ({implied_n})"
            )
        rows = np.concatenate([arr[:, 0], arr[:, 1]])
        cols = np.concatenate([arr[:, 1], arr[:, 0]])
        data = np.ones(rows.shape[0], dtype=np.int64)
        adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        return cls(adj, name=name, validate=False)

    @classmethod
    def from_networkx(cls, nx_graph, *, name: str = "") -> "Graph":
        """Convert a :class:`networkx.Graph` (self loops preserved)."""
        import networkx as nx

        nodes = list(nx_graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        return cls.from_edges(edges, n_vertices=len(nodes), name=name or str(nx_graph))

    @classmethod
    def empty(cls, n_vertices: int, *, name: str = "") -> "Graph":
        """Graph on ``n_vertices`` vertices with no edges."""
        return cls(sp.csr_matrix((n_vertices, n_vertices), dtype=np.int64),
                   name=name, validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> sp.csr_matrix:
        """The underlying CSR adjacency matrix (canonical form, do not mutate)."""
        return self._adj

    @property
    def n_vertices(self) -> int:
        """Number of vertices :math:`n_A = |V_A|`."""
        return self._adj.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (unordered pairs), self loops counted once."""
        nnz = self._adj.nnz
        loops = self.n_self_loops
        return (nnz - loops) // 2 + loops

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros of the adjacency matrix (directed count)."""
        return self._adj.nnz

    @property
    def n_self_loops(self) -> int:
        """Number of vertices carrying a self loop."""
        return int(np.count_nonzero(self._adj.diagonal()))

    @property
    def has_self_loops(self) -> bool:
        """Whether any vertex carries a self loop."""
        return self.n_self_loops > 0

    def self_loop_vector(self) -> np.ndarray:
        """The diagonal ``diag(A)`` as a dense 0/1 vector (paper's ``diag`` operator)."""
        return np.asarray(self._adj.diagonal(), dtype=np.int64)

    def degrees(self) -> np.ndarray:
        """Degree vector ``d_A = (A - I∘A) 1`` — self loops excluded.

        This is the paper's degree definition (Section III.A); a self loop at
        vertex ``i`` does not add to ``d_i`` but does appear in
        :meth:`self_loop_vector`.
        """
        row_sums = np.asarray(self._adj.sum(axis=1)).ravel().astype(np.int64)
        return row_sums - self.self_loop_vector()

    def degree(self, vertex: int) -> int:
        """Degree of a single vertex (self loop excluded)."""
        return int(self.degrees()[vertex])

    def neighbors(self, vertex: int, *, include_self_loop: bool = False) -> np.ndarray:
        """Sorted array of neighbors of *vertex*.

        ``include_self_loop=False`` (default) removes the vertex itself even
        when it carries a self loop, matching the paper's convention that
        triangle/degree statistics are computed on ``A - I∘A``.
        """
        row = self._adj.indices[self._adj.indptr[vertex]:self._adj.indptr[vertex + 1]]
        if include_self_loop:
            return row.copy()
        return row[row != vertex].copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the (undirected) edge ``(u, v)`` is present.

        A single binary search on the row's ``indices`` slice — no 1×1 sparse
        temporary is allocated.
        """
        return csr_has_entry(self._adj, int(u), int(v))

    # ------------------------------------------------------------------
    # Edge iteration / export
    # ------------------------------------------------------------------
    def edges(self, *, include_self_loops: bool = True) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u <= v``."""
        coo = self._adj.tocoo()
        mask = coo.row <= coo.col
        rows, cols = coo.row[mask], coo.col[mask]
        if not include_self_loops:
            keep = rows != cols
            rows, cols = rows[keep], cols[keep]
        out = np.stack([rows, cols], axis=1).astype(np.int64)
        order = np.lexsort((out[:, 1], out[:, 0]))
        return out[order]

    def iter_edges(self, *, include_self_loops: bool = True) -> Iterator[Edge]:
        """Iterate undirected edges as ``(u, v)`` tuples with ``u <= v``."""
        for u, v in self.edges(include_self_loops=include_self_loops):
            yield int(u), int(v)

    def to_dense(self) -> np.ndarray:
        """Dense ``numpy`` copy of the adjacency matrix (small graphs only)."""
        return np.asarray(self._adj.todense(), dtype=np.int64)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (self loops preserved)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_vertices))
        g.add_edges_from(map(tuple, self.edges()))
        return g

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def without_self_loops(self) -> "Graph":
        """Return a copy with every self loop removed (``A - I ∘ A``)."""
        adj = self._adj.copy().tolil()
        adj.setdiag(0)
        return Graph(adj.tocsr(), name=self.name, validate=False)

    def with_self_loops(self) -> "Graph":
        """Return a copy with a self loop added at every vertex (``A + I``).

        This is the paper's ``B = A + I`` construction used in the
        web-NotreDame experiment (Section VI) to boost triangle counts of the
        Kronecker product.
        """
        adj = self._adj + sp.identity(self.n_vertices, dtype=np.int64, format="csr")
        return Graph(adj, name=f"{self.name}+I" if self.name else "", validate=False)

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph on *vertices* (relabeled ``0..len(vertices)-1``)."""
        idx = np.asarray(vertices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_vertices):
            raise IndexError("subgraph vertex id out of range")
        sub = self._adj[idx][:, idx]
        return Graph(sub, name=f"{self.name}[sub]" if self.name else "", validate=False)

    def relabeled(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with vertices permuted: new id ``i`` is old ``permutation[i]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape[0] != self.n_vertices or set(perm.tolist()) != set(range(self.n_vertices)):
            raise ValueError("permutation must be a rearrangement of all vertex ids")
        sub = self._adj[perm][:, perm]
        return Graph(sub, name=self.name, validate=False)

    def union(self, other: "Graph") -> "Graph":
        """Edge-wise union of two graphs on the same vertex set."""
        if other.n_vertices != self.n_vertices:
            raise ValueError("union requires graphs on the same number of vertices")
        return Graph(self._adj + other._adj, validate=False)

    def largest_connected_component(self) -> "Graph":
        """Induced subgraph on the largest connected component."""
        n_comp, labels = sp.csgraph.connected_components(self._adj, directed=False)
        if n_comp <= 1:
            return self
        sizes = np.bincount(labels)
        keep = np.flatnonzero(labels == int(np.argmax(sizes)))
        return self.subgraph(keep)

    def connected_components(self) -> Tuple[int, np.ndarray]:
        """Number of connected components and the per-vertex component label array."""
        n_comp, labels = sp.csgraph.connected_components(self._adj, directed=False)
        return int(n_comp), labels

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n_vertices != other.n_vertices:
            return False
        return (self._adj != other._adj).nnz == 0

    def __hash__(self):  # Graphs are mutable-ish containers; keep them unhashable.
        raise TypeError("Graph objects are not hashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Graph({label} n_vertices={self.n_vertices}, n_edges={self.n_edges}, "
            f"self_loops={self.n_self_loops})"
        )

    def copy(self) -> "Graph":
        """Deep copy."""
        return Graph(self._adj.copy(), name=self.name, validate=False)
