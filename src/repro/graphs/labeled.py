"""Vertex-labeled graph substrate and label-filter projection operators.

Section V of the paper studies undirected graphs whose vertices carry a label
(a "color") from a finite label set :math:`L = \\{1, \\dots, |L|\\}`.  Paths and
triangles are then classified by the colour sequence of their vertices, and
the key algebraic tool is the *label filter* (Definition 12)

.. math::

    \\Pi_{A,q} = \\sum_{i : f_A(i) = q} e_i e_i^t,

a diagonal 0/1 projector selecting the vertices of colour ``q``.  Filtered
matrix products such as :math:`\\Pi_{A,3} A \\Pi_{A,2} A \\Pi_{A,1}` count
colour-constrained paths; the labeled-triangle formulas of Definitions 13/14
and Theorems 6/7 are built from them.

Labels here are 0-based integers ``0 .. n_labels-1``.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, product
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro._typing import MatrixLike
from repro.graphs.adjacency import Graph

__all__ = [
    "VertexLabeledGraph",
    "label_filter",
    "vertex_triangle_label_types",
    "edge_triangle_label_types",
]


def label_filter(labels: np.ndarray, q: int) -> sp.csr_matrix:
    """The projector ``Π_q`` onto vertices with label ``q`` (Definition 12).

    Parameters
    ----------
    labels:
        Length-``n`` integer array of vertex labels.
    q:
        The label to select.
    """
    labels = np.asarray(labels)
    diag = (labels == q).astype(np.int64)
    return sp.diags(diag, format="csr", dtype=np.int64)


def vertex_triangle_label_types(n_labels: int) -> List[Tuple[int, int, int]]:
    """All distinct labeled-triangle types from a vertex's perspective.

    A type is ``(q1, q2, q3)`` where ``q1`` is the label of the central
    vertex and ``{q2, q3}`` is the multiset of labels of the two opposite
    vertices.  Removing the symmetry ``(q1, q2, q3) ~ (q1, q3, q2)`` leaves
    ``|L| * C(|L|+1, 2)`` types; for ``|L| = 3`` each vertex colour has the
    paper's :math:`\\binom{|L|+1}{2} = 6` types (Fig. 6).
    """
    types: List[Tuple[int, int, int]] = []
    for q1 in range(n_labels):
        for q2, q3 in combinations_with_replacement(range(n_labels), 2):
            types.append((q1, q2, q3))
    return types


def edge_triangle_label_types(n_labels: int) -> List[Tuple[int, int, int]]:
    """All labeled-triangle types from an edge's perspective.

    A type is ``(q1, q2, q3)``: the central edge joins a ``q1`` vertex to a
    ``q2`` vertex and the opposite vertex has label ``q3``.  For a fixed
    (ordered) edge-label pair there are ``|L|`` types (Fig. 6, bottom row).
    The full ordered list has ``|L|^2 * |L|`` entries; callers that want the
    unordered-edge view can restrict to ``q1 <= q2``.
    """
    return [(q1, q2, q3) for q1, q2, q3 in product(range(n_labels), repeat=3)]


class VertexLabeledGraph(Graph):
    """An undirected graph whose vertices carry integer labels (colours).

    Parameters
    ----------
    adjacency:
        Symmetric 0/1 adjacency matrix (see :class:`repro.graphs.Graph`).
    labels:
        Length-``n`` array of integer labels in ``0 .. n_labels-1``.
    n_labels:
        Size of the label alphabet.  Defaults to ``max(labels) + 1``.
    """

    __slots__ = ("_labels", "_n_labels")

    def __init__(
        self,
        adjacency: MatrixLike,
        labels: Sequence[int],
        *,
        n_labels: Optional[int] = None,
        name: str = "",
        validate: bool = True,
    ):
        super().__init__(adjacency, name=name, validate=validate)
        labels_arr = np.asarray(labels, dtype=np.int64)
        if labels_arr.ndim != 1 or labels_arr.shape[0] != self.n_vertices:
            raise ValueError(
                f"labels must be a 1-D array of length n_vertices={self.n_vertices}, "
                f"got shape {labels_arr.shape}"
            )
        if labels_arr.size and labels_arr.min() < 0:
            raise ValueError("labels must be non-negative integers")
        inferred = int(labels_arr.max()) + 1 if labels_arr.size else 0
        k = inferred if n_labels is None else int(n_labels)
        if k < inferred:
            raise ValueError(f"n_labels={k} is smaller than max(labels)+1={inferred}")
        self._labels = labels_arr
        self._n_labels = k

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        labels: Sequence[int],
        *,
        n_labels: Optional[int] = None,
    ) -> "VertexLabeledGraph":
        """Attach labels to an existing :class:`Graph`."""
        return cls(graph.adjacency, labels, n_labels=n_labels, name=graph.name, validate=False)

    @property
    def labels(self) -> np.ndarray:
        """The per-vertex label array (a copy; labels are immutable)."""
        return self._labels.copy()

    @property
    def n_labels(self) -> int:
        """Size of the label alphabet ``|L|``."""
        return self._n_labels

    def label_of(self, vertex: int) -> int:
        """Label of a single vertex (the paper's ``f_A(i)``)."""
        return int(self._labels[vertex])

    def label_counts(self) -> np.ndarray:
        """Number of vertices of each label, as a length-``n_labels`` vector."""
        return np.bincount(self._labels, minlength=self._n_labels).astype(np.int64)

    def filter(self, q: int) -> sp.csr_matrix:
        """The label filter ``Π_{A,q}`` (Definition 12)."""
        if not (0 <= q < self._n_labels):
            raise ValueError(f"label {q} out of range [0, {self._n_labels})")
        return label_filter(self._labels, q)

    def filters(self) -> List[sp.csr_matrix]:
        """All label filters ``[Π_0, ..., Π_{|L|-1}]``."""
        return [self.filter(q) for q in range(self._n_labels)]

    def vertices_with_label(self, q: int) -> np.ndarray:
        """Sorted ids of vertices with label ``q``."""
        return np.flatnonzero(self._labels == q).astype(np.int64)

    def filtered_adjacency(self, q_row: int, q_col: int) -> sp.csr_matrix:
        """``Π_{q_row} A Π_{q_col}`` — arcs from colour ``q_col`` into colour ``q_row``.

        The (i, j) entry is non-zero only for edges whose endpoint ``j`` has
        label ``q_col`` and endpoint ``i`` has label ``q_row``; this is the
        building block of the colour-constrained path counts in Section V.
        """
        return (self.filter(q_row) @ self.adjacency @ self.filter(q_col)).tocsr()

    # ------------------------------------------------------------------
    def without_self_loops(self) -> "VertexLabeledGraph":
        """Copy with all self loops removed, labels preserved."""
        stripped = Graph.without_self_loops(self)
        return VertexLabeledGraph(
            stripped.adjacency, self._labels, n_labels=self._n_labels,
            name=self.name, validate=False,
        )

    def subgraph(self, vertices: Sequence[int]) -> "VertexLabeledGraph":
        """Induced subgraph; labels follow the selected vertices."""
        idx = np.asarray(vertices, dtype=np.int64)
        base = Graph.subgraph(self, idx)
        return VertexLabeledGraph(
            base.adjacency, self._labels[idx], n_labels=self._n_labels,
            name=self.name, validate=False,
        )

    def copy(self) -> "VertexLabeledGraph":
        """Deep copy."""
        return VertexLabeledGraph(
            self.adjacency.copy(), self._labels.copy(), n_labels=self._n_labels,
            name=self.name, validate=False,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"VertexLabeledGraph({label} n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, n_labels={self._n_labels})"
        )
