"""Graph substrates: undirected, directed, and vertex-labeled adjacency graphs.

These classes are the inputs ("factors") of the non-stochastic Kronecker
generator in :mod:`repro.core` and the objects on which the direct
triangle-counting baselines in :mod:`repro.triangles` operate.
"""

from repro.graphs.adjacency import Graph, hadamard, is_symmetric, to_csr
from repro.graphs.directed import DirectedGraph
from repro.graphs.egonet import Egonet, egonet, egonet_degree, egonet_triangle_count
from repro.graphs.io import (
    NpyShardSink,
    iter_edge_shards,
    load_edge_shards,
    load_kronecker_bundle,
    normalize_payload_columns,
    read_directed_edge_list,
    read_edge_list,
    read_shard_manifest,
    save_kronecker_bundle,
    write_edge_list,
    write_edge_shards,
    write_shard_manifest,
)
from repro.graphs.labeled import (
    VertexLabeledGraph,
    edge_triangle_label_types,
    label_filter,
    vertex_triangle_label_types,
)

__all__ = [
    "Graph",
    "DirectedGraph",
    "VertexLabeledGraph",
    "Egonet",
    "egonet",
    "egonet_degree",
    "egonet_triangle_count",
    "hadamard",
    "is_symmetric",
    "to_csr",
    "label_filter",
    "vertex_triangle_label_types",
    "edge_triangle_label_types",
    "read_edge_list",
    "read_directed_edge_list",
    "write_edge_list",
    "save_kronecker_bundle",
    "load_kronecker_bundle",
    "NpyShardSink",
    "normalize_payload_columns",
    "write_edge_shards",
    "write_shard_manifest",
    "read_shard_manifest",
    "iter_edge_shards",
    "load_edge_shards",
]
