"""Egonet extraction (Figure 7 machinery).

The paper validates its Kronecker triangle formulas by sampling vertices of
the (never-materialized) product graph ``C = A ⊗ B``, building the *egonet*
of each sampled vertex — the induced subgraph on the vertex and its
neighbours — and counting triangles inside it directly.  Because the egonet
of a vertex contains every triangle that vertex participates in, this gives
an exact, local, laptop-scale cross-check of the formula values even when
``C`` has billions of vertices.

This module provides a generic :func:`egonet` working on any object exposing
``neighbors(v)`` and ``subgraph(vertices)`` (both :class:`repro.graphs.Graph`
and :class:`repro.core.KroneckerGraph` do), plus helpers for the statistics
the paper reads off each egonet: the centre's degree and triangle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = ["Egonet", "egonet", "egonet_triangle_count", "egonet_degree"]


@dataclass(frozen=True)
class Egonet:
    """The induced subgraph on a centre vertex and its neighbours.

    Attributes
    ----------
    center:
        Global id of the centre vertex.
    vertices:
        Global ids of the egonet vertices (centre first, then sorted
        neighbours); local ids in :attr:`graph` follow this ordering.
    graph:
        The induced subgraph as a :class:`repro.graphs.Graph`.
    """

    center: int
    vertices: np.ndarray
    graph: Graph

    @property
    def center_local(self) -> int:
        """Local index of the centre inside :attr:`graph` (always 0)."""
        return 0

    @property
    def n_vertices(self) -> int:
        """Number of vertices in the egonet (centre + neighbours)."""
        return self.graph.n_vertices

    def degree_of_center(self) -> int:
        """Degree of the centre vertex (self loops excluded)."""
        return self.graph.degree(self.center_local)

    def triangles_at_center(self) -> int:
        """Number of triangles the centre participates in.

        Each such triangle is centre + two adjacent neighbours, i.e. an edge
        inside the open neighbourhood.  Self loops are ignored, matching the
        paper's ``(A - I∘A)`` convention.
        """
        adj = self.graph.without_self_loops().adjacency
        # Neighbours of the centre inside the egonet:
        nbrs = adj.indices[adj.indptr[0]:adj.indptr[1]]
        if nbrs.size < 2:
            return 0
        sub = adj[nbrs][:, nbrs]
        return int(sub.nnz // 2)


def egonet(graph, vertex: int) -> Egonet:
    """Extract the egonet of *vertex* from *graph*.

    Parameters
    ----------
    graph:
        Any object with ``neighbors(v) -> array`` and
        ``subgraph(vertices) -> Graph``.  For a
        :class:`repro.core.KroneckerGraph` this never materializes the full
        product: only the rows/columns touching the egonet are formed.
    vertex:
        Global vertex id.
    """
    nbrs = np.asarray(graph.neighbors(vertex), dtype=np.int64)
    nbrs = np.unique(nbrs[nbrs != vertex])
    vertices = np.concatenate([[np.int64(vertex)], nbrs])
    sub = graph.subgraph(vertices)
    if not isinstance(sub, Graph):
        sub = Graph(sub, validate=False)
    return Egonet(center=int(vertex), vertices=vertices, graph=sub)


def egonet_degree(graph, vertex: int) -> int:
    """Degree of *vertex* measured through its egonet (sanity-check helper)."""
    return egonet(graph, vertex).degree_of_center()


def egonet_triangle_count(graph, vertex: int) -> int:
    """Triangles at *vertex* counted directly inside its egonet.

    This is the independent, formula-free count the paper compares against
    the Kronecker-formula value ``t_C[p]`` in Figure 7.
    """
    return egonet(graph, vertex).triangles_at_center()
