"""Directed graph substrate with the reciprocal/directed edge decomposition.

The paper (Section IV) adopts the directed-closure model of Seshadhri et al.
in which the edge set of a directed graph is split into *reciprocal* edges
(``(i, j)`` and ``(j, i)`` both present) and *directed* edges (only one
orientation present).  In matrix form:

.. math::

    A = A_r + A_d, \\qquad A_r = A^t \\circ A, \\qquad A_d = A - A_r,

with the *undirected version* :math:`A_u = A + A_d^t`.  Every directed
triangle formula in the paper (Definitions 10 and 11, Theorems 4 and 5) is
expressed in terms of ``A_r`` and ``A_d``; this module provides the
decomposition plus degree vectors under that model.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from repro._typing import Edge, MatrixLike
from repro.graphs.adjacency import Graph, hadamard, to_csr

__all__ = ["DirectedGraph"]


class DirectedGraph:
    """A directed graph stored as a (generally non-symmetric) 0/1 CSR matrix.

    Parameters
    ----------
    adjacency:
        Square 0/1 matrix; ``adjacency[i, j] == 1`` means the directed edge
        ``i -> j`` is present.  Self loops are allowed but the directed
        triangle formulas of the paper assume ``diag(A) = 0``; use
        :meth:`without_self_loops` before applying them.
    name:
        Optional human-readable name.
    """

    __slots__ = ("_adj", "name")

    def __init__(self, adjacency: MatrixLike, *, name: str = ""):
        adj = to_csr(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adj.shape}")
        self._adj = adj
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        n_vertices: Optional[int] = None,
        *,
        name: str = "",
    ) -> "DirectedGraph":
        """Build from an iterable of directed ``(source, target)`` pairs."""
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("edges must be pairs of vertex ids")
            if arr.min() < 0:
                raise ValueError("vertex ids must be non-negative")
            implied_n = int(arr.max()) + 1
        else:
            arr = np.zeros((0, 2), dtype=np.int64)
            implied_n = 0
        n = implied_n if n_vertices is None else int(n_vertices)
        if n < implied_n:
            raise ValueError("n_vertices smaller than largest endpoint + 1")
        data = np.ones(arr.shape[0], dtype=np.int64)
        adj = sp.csr_matrix((data, (arr[:, 0], arr[:, 1])), shape=(n, n))
        return cls(adj, name=name)

    @classmethod
    def from_undirected(cls, graph: Graph, *, name: str = "") -> "DirectedGraph":
        """View an undirected :class:`Graph` as a directed graph (all edges reciprocal)."""
        return cls(graph.adjacency, name=name or graph.name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> sp.csr_matrix:
        """Underlying CSR adjacency matrix."""
        return self._adj

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._adj.shape[0]

    @property
    def n_arcs(self) -> int:
        """Number of directed arcs (stored non-zeros)."""
        return self._adj.nnz

    @property
    def n_self_loops(self) -> int:
        """Number of self loops."""
        return int(np.count_nonzero(self._adj.diagonal()))

    @property
    def has_self_loops(self) -> bool:
        """Whether any self loop is present."""
        return self.n_self_loops > 0

    @property
    def is_symmetric(self) -> bool:
        """``True`` when every edge is reciprocal (the graph is effectively undirected)."""
        return (self._adj != self._adj.T).nnz == 0

    # ------------------------------------------------------------------
    # Reciprocal / directed decomposition (Def. 9)
    # ------------------------------------------------------------------
    def reciprocal_part(self) -> sp.csr_matrix:
        """``A_r = A^t ∘ A`` — the symmetric matrix of reciprocal edges."""
        return hadamard(self._adj.T, self._adj)

    def directed_part(self) -> sp.csr_matrix:
        """``A_d = A - A_r`` — arcs whose reverse is absent."""
        out = sp.csr_matrix(self._adj - self.reciprocal_part())
        out.eliminate_zeros()
        out.sort_indices()
        return out

    def decompose(self) -> tuple[sp.csr_matrix, sp.csr_matrix]:
        """Return ``(A_r, A_d)`` with ``A = A_r + A_d``."""
        ar = self.reciprocal_part()
        ad = sp.csr_matrix(self._adj - ar)
        ad.eliminate_zeros()
        ad.sort_indices()
        return ar, ad

    def undirected_version(self) -> Graph:
        """``A_u = A + A_d^t`` as an undirected :class:`Graph` (paper's Def. 9).

        Every arc becomes an undirected edge; reciprocal pairs collapse to a
        single edge.
        """
        ad = self.directed_part()
        au = to_csr(self._adj + ad.T)
        return Graph(au, name=f"{self.name}_undirected" if self.name else "", validate=False)

    @property
    def n_reciprocal_edges(self) -> int:
        """Number of reciprocal (undirected) edge pairs, excluding self loops."""
        ar = self.reciprocal_part()
        loops = int(np.count_nonzero(ar.diagonal()))
        return (ar.nnz - loops) // 2

    @property
    def n_directed_edges(self) -> int:
        """Number of one-way arcs."""
        return self.directed_part().nnz

    # ------------------------------------------------------------------
    # Degrees (Section IV.B)
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """``d^out = A 1`` (self loops included, as in the paper's formula)."""
        return np.asarray(self._adj.sum(axis=1)).ravel().astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """``d^in = A^t 1``."""
        return np.asarray(self._adj.sum(axis=0)).ravel().astype(np.int64)

    def reciprocal_degrees(self) -> np.ndarray:
        """``d_{A_r} = A_r 1`` — number of reciprocal neighbours of each vertex."""
        return np.asarray(self.reciprocal_part().sum(axis=1)).ravel().astype(np.int64)

    def directed_out_degrees(self) -> np.ndarray:
        """``d^out_{A_d} = A_d 1``."""
        return np.asarray(self.directed_part().sum(axis=1)).ravel().astype(np.int64)

    def directed_in_degrees(self) -> np.ndarray:
        """``d^in_{A_d} = A_d^t 1``."""
        return np.asarray(self.directed_part().sum(axis=0)).ravel().astype(np.int64)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def without_self_loops(self) -> "DirectedGraph":
        """Copy with the diagonal zeroed out."""
        adj = self._adj.copy().tolil()
        adj.setdiag(0)
        return DirectedGraph(adj.tocsr(), name=self.name)

    def transpose(self) -> "DirectedGraph":
        """The reverse graph ``A^t`` (every arc flipped)."""
        return DirectedGraph(self._adj.T.tocsr(), name=f"{self.name}^t" if self.name else "")

    def subgraph(self, vertices) -> "DirectedGraph":
        """Induced subgraph on *vertices* (relabeled ``0..k-1``)."""
        idx = np.asarray(vertices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_vertices):
            raise IndexError("subgraph vertex id out of range")
        return DirectedGraph(self._adj[idx][:, idx], name=self.name)

    def edges(self) -> np.ndarray:
        """All arcs as an ``(m, 2)`` array of ``(source, target)`` rows."""
        coo = self._adj.tocoo()
        out = np.stack([coo.row, coo.col], axis=1).astype(np.int64)
        order = np.lexsort((out[:, 1], out[:, 0]))
        return out[order]

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Targets of arcs leaving *vertex*."""
        return self._adj.indices[self._adj.indptr[vertex]:self._adj.indptr[vertex + 1]].copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` is present."""
        return bool(self._adj[u, v] != 0)

    def to_dense(self) -> np.ndarray:
        """Dense copy of the adjacency matrix."""
        return np.asarray(self._adj.todense(), dtype=np.int64)

    def copy(self) -> "DirectedGraph":
        """Deep copy."""
        return DirectedGraph(self._adj.copy(), name=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        if self.n_vertices != other.n_vertices:
            return False
        return (self._adj != other._adj).nnz == 0

    def __hash__(self):
        raise TypeError("DirectedGraph objects are not hashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DirectedGraph({label} n_vertices={self.n_vertices}, n_arcs={self.n_arcs}, "
            f"reciprocal_pairs={self.n_reciprocal_edges}, directed_arcs={self.n_directed_edges})"
        )
