"""The zero-copy decode rule: every ``numpy.load`` in the covered layers
states its memory-mode decision.

AST form of the PR 6 grep, with the two blind spots fixed:

* **aliased imports** — ``from numpy import load as ld`` and
  ``import numpy as xp`` resolve through the module's import map, so
  renaming numpy no longer sneaks a bare load past the rule;
* **parenthesis desync** — the old scanner matched parens textually to
  find the call's end, so a ``)`` inside a string-literal argument
  truncated the span and misjudged calls after it.  This rule reads the
  call's keywords off the AST node; a string argument is just a string.

``mmap_mode=None`` is a *statement* (an eager private copy is the
point), so the rule requires the keyword's presence, not any particular
value.  A ``**kwargs`` splat is treated as stating a decision — the
decision just lives at the call's builder, which the AST cannot see
through.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import Finding, Rule, collect_imports, resolve_call_target

__all__ = ["MmapModeRule"]


class MmapModeRule(Rule):
    name = "np-load-mmap-mode"
    description = ("numpy.load in the store/serve layers (and the shard "
                   "readers in graphs/io.py) must pass mmap_mode explicitly "
                   "(mmap_mode=None when an eager copy is intended)")
    #: PR 6 covered store/ and serve/; PR 9 extends the rule to the shard
    #: readers and run-formation loads that feed them.
    layers = ("store/", "serve/", "graphs/io.py")

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        imports = collect_imports(tree)
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call_target(node.func, imports) != "numpy.load":
                continue
            stated = any(kw.arg == "mmap_mode" or kw.arg is None
                         for kw in node.keywords)
            if not stated:
                findings.append(self.finding(
                    rel_path, node,
                    "numpy.load without an explicit mmap_mode (pass "
                    "mmap_mode=None if an eager copy is intended): "
                    + self.source_of(node, text)))
        return findings

    # Exposed for the anti-vacuity self-check in the test driver: the
    # rule is only meaningful while the covered layers actually decode.
    def count_load_calls(self, tree: ast.Module) -> int:
        imports = collect_imports(tree)
        return sum(1 for node in ast.walk(tree)
                   if isinstance(node, ast.Call)
                   and resolve_call_target(node.func, imports) == "numpy.load")
