"""The PR 1 hot-path rule, machine-enforced for the first time: no
scalar per-edge ``matrix[i, j]`` lookups inside Python loops.

PR 1's ~1200× ground-truth speedup came from replacing per-edge scalar
scipy ``__getitem__`` calls (each one allocates a 1×1 sparse result)
with batched CSR gathers (:mod:`repro.perf.kernels`).  The convention
since then: hot layers never index a matrix with two loop-carried
scalars — they gather with index *arrays* (``adj[rows, cols]`` built
outside the loop, or :func:`~repro.perf.kernels.csr_gather`).

A grep cannot express this ("``[u, v]`` is fine unless it is inside a
``for`` over edges"), which is why the rule never existed before the AST
engine.  The heuristic here: a ``Load``-context subscript whose index is
a two-element tuple of plain names/constants, where at least one name is
the target of an enclosing ``for`` (statement or comprehension), is a
scalar per-iteration lookup.  Vectorized gathers pass because their
index arrays are not loop targets; slice/fancy indexing passes because
the index elements are not plain scalars; writes into preallocated
outputs pass because the context is ``Store``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.engine import Finding, Rule

__all__ = ["ScalarSparseGetitemRule"]


def _target_names(target: ast.AST) -> Set[str]:
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


class _HotLoopVisitor(ast.NodeVisitor):
    def __init__(self, rule: "ScalarSparseGetitemRule", rel_path: str,
                 text: str):
        self.rule = rule
        self.rel_path = rel_path
        self.text = text
        self.findings: List[Finding] = []
        self._loop_vars: List[Set[str]] = []

    # ---- loops introduce per-iteration scalars -----------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop_vars.append(_target_names(node.target))
        self.generic_visit(node)
        self._loop_vars.pop()

    visit_AsyncFor = visit_For

    def _visit_comprehension(self, node) -> None:
        names: Set[str] = set()
        for comp in node.generators:
            names |= _target_names(comp.target)
        self._loop_vars.append(names)
        self.generic_visit(node)
        self._loop_vars.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ---- the check ---------------------------------------------------
    def _active(self, name: str) -> bool:
        return any(name in scope for scope in self._loop_vars)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._loop_vars and isinstance(node.ctx, ast.Load):
            index = node.slice
            if isinstance(index, ast.Tuple) and len(index.elts) == 2:
                elts = index.elts
                scalarish = all(isinstance(e, (ast.Name, ast.Constant))
                                for e in elts)
                loop_carried = any(isinstance(e, ast.Name)
                                   and self._active(e.id) for e in elts)
                if scalarish and loop_carried:
                    self.findings.append(self.rule.finding(
                        self.rel_path, node,
                        "scalar matrix lookup with loop-carried indices — "
                        "batch it with an index-array gather (adj[rows, "
                        "cols] / csr_gather) outside the loop: "
                        + self.rule.source_of(node, self.text)))
        self.generic_visit(node)


class ScalarSparseGetitemRule(Rule):
    name = "no-scalar-sparse-getitem"
    description = ("no scalar matrix[i, j] reads with loop-carried indices "
                   "in the hot layers — use batched index-array gathers "
                   "(PR 1 convention)")
    layers = ("core/", "perf/", "triangles/", "truss/", "graphs/")

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        visitor = _HotLoopVisitor(self, rel_path, text)
        visitor.visit(tree)
        return visitor.findings
