"""Core of the convention-lint engine: findings, the rule protocol, and
the tree walker.

The engine replaces the grep-level regexes that used to live in
``tests/test_conventions.py``.  Greps cannot see aliased imports
(``from numpy import load as ld``), cannot tell a call's context (a
scalar lookup in a hot loop vs. a test helper), and desync on a ``)``
inside a string literal; every rule here works on the :mod:`ast` instead
— node extents, resolved import aliases, lexical scopes.

Vocabulary:

* a :class:`Finding` is one violation: rule name, file, line/column, and
  a message that quotes the offending source via the AST node's extent;
* a :class:`Rule` is a stateless checker scoped to *layers* (path
  prefixes or exact files relative to the ``repro`` package root) with a
  ``check(tree, rel_path, text)`` hook;
* the :class:`LintEngine` walks a file or directory, parses each module
  once, fans the tree out to every applicable rule, and aggregates the
  findings into a :class:`LintReport`.

A finding can be silenced in place with a ``# lint: ignore[rule-name]``
comment on the offending line — the escape hatch is deliberate and
greppable, so exemptions are visible in review rather than encoded as
rule special cases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ImportMap",
    "LintEngine",
    "LintReport",
    "Rule",
    "collect_imports",
    "resolve_call_target",
]

#: The pseudo-rule a file that fails to parse is reported under.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # package-relative posix path (e.g. "store/query.py")
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Rule:
    """Base class for convention rules.

    Subclasses set :attr:`name` (kebab-case, the CLI/selection handle),
    :attr:`description`, and :attr:`layers` — path prefixes (ending in
    ``/``) or exact files, relative to the ``repro`` package root — and
    implement :meth:`check`.  Empty ``layers`` means every file.
    """

    name: str = ""
    description: str = ""
    #: Path prefixes ("store/") or exact files ("graphs/io.py") the rule
    #: covers; empty covers the whole tree.
    layers: Tuple[str, ...] = ()
    #: Paths exempt from the rule (exact files or "dir/" prefixes).
    excludes: Tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        if _matches_any(rel_path, self.excludes):
            return False
        if not self.layers:
            return True
        return _matches_any(rel_path, self.layers)

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def finding(self, rel_path: str, node: ast.AST, message: str) -> Finding:
        return Finding(self.name, rel_path, getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0), message)

    @staticmethod
    def source_of(node: ast.AST, text: str, limit: int = 120) -> str:
        """The node's own source text via its AST extent — never a
        hand-rolled parenthesis scan (a ``)`` inside a string literal
        desynced the old grep's span search)."""
        segment = ast.get_source_segment(text, node) or "<source unavailable>"
        segment = " ".join(segment.split())
        if len(segment) > limit:
            segment = segment[:limit - 3] + "..."
        return segment


def _matches_any(rel_path: str, patterns: Sequence[str]) -> bool:
    for pattern in patterns:
        if pattern.endswith("/"):
            if rel_path.startswith(pattern):
                return True
        elif rel_path == pattern:
            return True
    return False


# ----------------------------------------------------------------------
# Import resolution
# ----------------------------------------------------------------------
@dataclass
class ImportMap:
    """What each local name means, resolved from a module's imports.

    ``modules`` maps a local alias to the dotted module it names
    (``np -> numpy``); ``members`` maps a local alias to the
    ``module.member`` it was imported from (``ld -> numpy.load``) — the
    aliasing the old greps could not see.
    """

    modules: Dict[str, str] = field(default_factory=dict)
    members: Dict[str, str] = field(default_factory=dict)


def collect_imports(tree: ast.Module) -> ImportMap:
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # "import a.b" binds "a" to package a; "import a.b as c"
                # binds "c" to module a.b.
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports.modules[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never alias numpy/time/socket
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports.members[local] = f"{node.module}.{alias.name}"
    return imports


def resolve_call_target(func: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical dotted name of a call target, or ``None``.

    ``np.load`` → ``numpy.load`` (via the module alias), ``ld`` →
    ``numpy.load`` (via a from-import alias), ``socket.create_connection``
    → itself.  Attribute chains off non-module values (``self.store.x``)
    resolve to ``None`` — rules that care about those match the attribute
    shape directly.
    """
    if isinstance(func, ast.Name):
        return imports.members.get(func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module = imports.modules.get(func.value.id)
        if module is not None:
            return f"{module}.{func.attr}"
    return None


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Aggregated result of one engine run."""

    root: str
    rules: List[str]
    files_checked: int
    findings: List[Finding]

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.findings],
        }


_IGNORE_MARK = "lint: ignore["


def _suppressed(finding: Finding, lines: List[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    line = lines[finding.line - 1]
    return f"{_IGNORE_MARK}{finding.rule}]" in line


def _package_root_of(path: Path, fallback: Path) -> Path:
    """The directory findings are reported relative to.

    Files inside an (installed or in-tree) ``repro`` package report
    relative to that package directory, so a rule's ``layers`` spec
    ("store/", "graphs/io.py") is stable no matter where the tree lives.
    Anything else — e.g. a lint-fixture corpus — reports relative to the
    walk root, which lets fixtures mimic the package layout.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            candidate = Path(*parts[:index + 1])
            if (candidate / "__init__.py").exists():
                return candidate
    return fallback


class LintEngine:
    """Walks source files and runs every applicable rule over each.

    Parameters
    ----------
    rules:
        The rules to run.  Each file is parsed exactly once; rules see
        the shared tree.
    """

    def __init__(self, rules: Iterable[Rule]):
        self.rules = list(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")

    def run(self, root, *, package_root=None) -> LintReport:
        """Lint *root* (a ``.py`` file or a directory, walked
        recursively) and return the aggregated report.  *package_root*
        overrides the auto-detected base findings are relative to."""
        root = Path(root)
        if root.is_dir():
            files = sorted(p for p in root.rglob("*.py")
                           if "__pycache__" not in p.parts)
            fallback = root
        elif root.is_file():
            files = [root]
            fallback = root.parent
        else:
            raise FileNotFoundError(f"lint target {root} does not exist")
        base_override = Path(package_root) if package_root is not None else None
        findings: List[Finding] = []
        for path in files:
            base = base_override or _package_root_of(path, fallback)
            try:
                rel = path.relative_to(base).as_posix()
            except ValueError:
                rel = path.name
            findings.extend(self.run_file(path, rel))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintReport(root=str(root),
                          rules=[rule.name for rule in self.rules],
                          files_checked=len(files), findings=findings)

    def run_file(self, path, rel_path: str) -> List[Finding]:
        """Parse one file and run every rule whose layers cover it."""
        text = Path(path).read_text()
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            return [Finding(SYNTAX_ERROR_RULE, rel_path, exc.lineno or 0,
                            (exc.offset or 1) - 1, f"file does not parse: "
                            f"{exc.msg}")]
        lines = text.splitlines()
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(rel_path):
                continue
            for finding in rule.check(tree, rel_path, text):
                if not _suppressed(finding, lines):
                    findings.append(finding)
        return findings
