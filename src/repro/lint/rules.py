"""The shipped rule set, in one place.

Adding a rule: subclass :class:`repro.lint.engine.Rule` in the module
that owns its domain (or a new one), give it a kebab-case ``name``,
scope it with ``layers``, add it to :func:`all_rules`, and drop a
known-bad and a known-good snippet under ``tests/lint_fixtures/<name>/``
— the corpus test fails any registered rule that has no fixtures or
never fires on its bad snippet, so a rule cannot ship vacuous.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules_hotpath import ScalarSparseGetitemRule
from repro.lint.rules_mmap import MmapModeRule
from repro.lint.rules_output import BarePrintRule
from repro.lint.rules_serve import AnswerShapeRule, BlockingInAsyncRule
from repro.lint.rules_telemetry import AdHocTelemetryRule, RegistryNameRule

__all__ = ["all_rules", "rules_by_name"]


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule (rules are stateless, but
    fresh instances keep callers from accidentally sharing)."""
    return [
        MmapModeRule(),
        AnswerShapeRule(),
        AdHocTelemetryRule(),
        ScalarSparseGetitemRule(),
        BlockingInAsyncRule(),
        RegistryNameRule(),
        BarePrintRule(),
    ]


def rules_by_name() -> Dict[str, Rule]:
    return {rule.name: rule for rule in all_rules()}
