"""Telemetry rules: the one-registry convention (PR 8) and the metric
naming scheme.

*No ad-hoc telemetry*: the store and serve layers keep no private
tallies — every operational number is a :class:`repro.obs.MetricsRegistry`
series and every timing goes through a registry histogram or a trace
span.  The AST form resolves aliases, so ``from collections import
Counter as C`` and ``from time import perf_counter as clock`` are caught
where the old grep saw nothing.

*Registry names*: metric names are dotted ``layer.noun[_unit]``
snake_case (``serve.latency_us``) so the Prometheus exposition and the
stats surface stay mechanically derivable.  The rule checks every string
literal passed as the first argument of a ``.counter(`` / ``.gauge(`` /
``.histogram(`` call — the same pattern the registry itself enforces at
runtime, pulled forward to lint time so a bad name fails before any
server boots.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.lint.engine import Finding, Rule, collect_imports, \
    resolve_call_target

__all__ = ["AdHocTelemetryRule", "RegistryNameRule"]

#: Call targets banned in the telemetry layers, with the reason shown in
#: the finding.
_BANNED_CALLS = {
    "time.perf_counter": "raw perf_counter timing (use a registry "
                         "histogram's .time() or a trace span)",
    "time.perf_counter_ns": "raw perf_counter_ns timing (use a registry "
                            "histogram's .time() or a trace span)",
    "collections.Counter": "collections.Counter tally (use a registry "
                           "counter series)",
}


class AdHocTelemetryRule(Rule):
    name = "no-ad-hoc-telemetry"
    description = ("no ad-hoc counters or perf_counter timing in store/ and "
                   "serve/ — operational numbers live on the repro.obs "
                   "registry")
    layers = ("store/", "serve/")

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        imports = collect_imports(tree)
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, imports)
            reason = _BANNED_CALLS.get(target)
            if reason is None and target == "collections.defaultdict":
                # Only the counter idiom is banned; defaultdict(list) and
                # friends are ordinary data-structure choices.
                if (node.args and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "int"):
                    reason = ("defaultdict(int) tally (use a registry "
                              "counter series)")
            if reason is not None:
                findings.append(self.finding(
                    rel_path, node,
                    reason + ": " + self.source_of(node, text)))
        return findings


#: Dotted snake_case with at least two segments — the exact pattern
#: MetricsRegistry enforces at runtime (layer.noun[_unit]).
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})


class RegistryNameRule(Rule):
    name = "registry-names-dotted"
    description = ("metric names passed to MetricsRegistry "
                   ".counter/.gauge/.histogram are dotted layer.noun[_unit] "
                   "snake_case")
    layers = ()  # a registry handle can be created anywhere

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INSTRUMENT_METHODS):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue  # dynamic names are the registry's runtime problem
            if not _METRIC_NAME.match(first.value):
                findings.append(self.finding(
                    rel_path, first,
                    f"metric name {first.value!r} is not dotted "
                    "layer.noun[_unit] snake_case (e.g. 'serve.requests'): "
                    + self.source_of(node, text)))
        return findings
