"""Reporters: the human text listing and the machine-readable JSON form.

The JSON form is the automation surface (``repro-kron lint --json``):
stable keys, findings sorted by (path, line, col, rule), so future
tooling can diff two runs' findings mechanically.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport) -> str:
    """One ``path:line:col: rule: message`` line per finding plus a
    summary line — empty-finding runs still report what was covered."""
    lines = [str(finding) for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(f"{len(report.findings)} {noun} in "
                 f"{report.files_checked} files "
                 f"({len(report.rules)} rules)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)
