"""Output-discipline rules: keep operator-facing text on the right surface.

*No bare print*: the library layers never talk to stdout — diagnostics
belong on the metrics registry, the trace recorder, or the flight
recorder (:mod:`repro.obs`), where they are queryable over the wire
instead of interleaving into whatever stream a caller owns.  Only
``cli.py`` — the one module whose *job* is console output — is excluded.
Look-alikes (``file.print(...)`` method calls, a local function named
``print`` shadowing the builtin via import alias) are not the builtin
call and do not fire.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import Finding, Rule

__all__ = ["BarePrintRule"]


class BarePrintRule(Rule):
    name = "no-bare-print"
    description = ("no print() outside cli.py — library diagnostics go "
                   "through repro.obs (metrics, traces, events), not stdout")
    layers = ()  # whole tree; stdout is the CLI's surface alone
    excludes = ("cli.py",)

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                findings.append(self.finding(
                    rel_path, node,
                    "bare print() in a library module (route diagnostics "
                    "through repro.obs or return them to the caller): "
                    + self.source_of(node, text)))
        return findings
