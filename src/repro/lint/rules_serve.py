"""Serving-layer rules: the answer-shape home and the async-handler
blocking discipline.

*Answer shapes* (PR 5): every query answer dict — recognisable by its
``"query": "<op>"`` string-literal discriminator — is built in
``serve/shaping.py`` and nowhere else, so the server, the range router,
and ``query --json`` cannot drift shape by shape.  The AST form checks
dict *literals*, so the CLI's dispatch table (``{"query": _cmd_query}``,
a name value, not a string) is structurally out of scope instead of
special-cased.

*No blocking in async* (PR 5/8): the event loop never touches a shard.
Store query calls, ``time.sleep``, and ``socket`` module calls directly
inside an ``async def`` in ``serve/`` stall every connection; they must
run on the bounded decode pool (``_run_store`` / ``run_in_executor``).
Code inside a nested ``lambda`` or sync ``def`` is exempt — that is
exactly the executor-submission idiom.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import Finding, ImportMap, Rule, collect_imports, \
    resolve_call_target

__all__ = ["AnswerShapeRule", "BlockingInAsyncRule"]


def shape_dict_nodes(tree: ast.Module) -> List[ast.Dict]:
    """Dict literals carrying a ``"query": "<op>"`` discriminator — the
    structural signature of an answer shape."""
    shapes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (isinstance(key, ast.Constant) and key.value == "query"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                shapes.append(node)
                break
    return shapes


class AnswerShapeRule(Rule):
    name = "answer-shapes-in-shaping"
    description = ('answer dicts (a literal with a "query": "<op>" '
                   "discriminator) are built only in serve/shaping.py")
    layers = ()  # the whole tree consumes shapes; only shaping builds them
    excludes = ("serve/shaping.py",)

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        return [self.finding(
            rel_path, node,
            "answer dict hand-built outside serve/shaping.py (add a "
            "shaping function and call it): " + self.source_of(node, text))
            for node in shape_dict_nodes(tree)]


#: Store query-surface methods that decode shards (or take the LRU lock
#: for real work) and therefore belong on the decode pool, never inline
#: in an async handler.
BLOCKING_STORE_METHODS = frozenset({
    "degree", "degrees", "neighbors", "edges_for_sources", "edges_in_range",
    "egonet", "subgraph", "subgraph_edges", "edge_payload", "edge_payloads",
})


def _is_store_attr(node: ast.AST) -> bool:
    """``<anything>.store`` / ``<anything>._store`` / bare ``store``."""
    if isinstance(node, ast.Attribute):
        return node.attr in ("store", "_store")
    if isinstance(node, ast.Name):
        return node.id in ("store", "_store")
    return False


class _AsyncBodyVisitor(ast.NodeVisitor):
    def __init__(self, rule: "BlockingInAsyncRule", imports: ImportMap,
                 rel_path: str, text: str):
        self.rule = rule
        self.imports = imports
        self.rel_path = rel_path
        self.text = text
        self.findings: List[Finding] = []
        self._in_async = False

    # Sync scopes inside an async def run wherever they are *called* —
    # the lambda handed to run_in_executor is the sanctioned idiom — so
    # they reset the flag.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, in_async=False)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node, in_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, in_async=True)

    def _visit_scope(self, node: ast.AST, in_async: bool) -> None:
        previous, self._in_async = self._in_async, in_async
        self.generic_visit(node)
        self._in_async = previous

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_async:
            verdict = self._classify(node)
            if verdict is not None:
                self.findings.append(self.rule.finding(
                    self.rel_path, node,
                    f"{verdict} directly inside an async def — run it on "
                    "the decode pool (_run_store / run_in_executor): "
                    + self.rule.source_of(node, self.text)))
        self.generic_visit(node)

    def _classify(self, node: ast.Call) -> "str | None":
        target = resolve_call_target(node.func, self.imports)
        if target == "time.sleep":
            return "time.sleep blocks the event loop"
        if target is not None and target.startswith("socket."):
            return f"blocking socket call {target}"
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in BLOCKING_STORE_METHODS
                and _is_store_attr(func.value)):
            return f"store decode call .{func.attr}()"
        return None


class BlockingInAsyncRule(Rule):
    name = "no-blocking-in-async"
    description = ("no store decodes, socket calls, or time.sleep directly "
                   "inside async def handlers in serve/ — blocking work "
                   "goes through the decode pool")
    layers = ("serve/",)

    def check(self, tree: ast.Module, rel_path: str,
              text: str) -> List[Finding]:
        visitor = _AsyncBodyVisitor(self, collect_imports(tree), rel_path,
                                    text)
        visitor.visit(tree)
        return visitor.findings
