"""Dependency-free static analysis for the repo's own conventions.

Eight PRs of conventions — batch-first hot paths, zero-copy
``mmap_mode`` decodes, one answer-shape home, one telemetry registry,
the serve layer's decode-pool discipline — used to be enforced by three
grep-level regexes in the test suite.  This package replaces them with a
real AST-driven engine:

* :mod:`repro.lint.engine` — :class:`Finding`, the :class:`Rule`
  protocol, import-alias resolution, and the :class:`LintEngine` walker;
* :mod:`repro.lint.rules` — the shipped rule set (one module per
  domain: mmap, serve, telemetry, hot-path);
* :mod:`repro.lint.reporters` — text and JSON output
  (``repro-kron lint [PATH] [--json] [--rule NAME]`` is the CLI);
* :mod:`repro.lint.runtime` — the *runtime* half: a
  :class:`~repro.lint.runtime.CheckedLock` lock-order sanitizer the test
  suite installs so the concurrency invariants (store LRU before
  instrument leaf locks, registry lock never held across reads) are
  machine-checked, not just reviewed.

Everything here is stdlib-only: the linter must import (and run) even
where numpy/scipy are absent, because it is the tool that gates commits.
"""

from repro.lint.engine import (
    Finding,
    ImportMap,
    LintEngine,
    LintReport,
    Rule,
    collect_imports,
    resolve_call_target,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules, rules_by_name

__all__ = [
    "Finding",
    "ImportMap",
    "LintEngine",
    "LintReport",
    "Rule",
    "all_rules",
    "collect_imports",
    "render_json",
    "render_text",
    "resolve_call_target",
    "rules_by_name",
]
