"""Runtime half of the convention checks: a lock-order sanitizer.

The static rules keep code *shape* honest; the concurrency rules from
PRs 5–8 are about *order*: the store's LRU lock is taken before
instrument leaf locks (``_entry`` bumps counters while holding the LRU
lock), the registry lock guards only series creation and is never held
across an instrument read, fn-gauges may take the store lock at snapshot
time precisely **because** no instrument lock is held then.  Those
invariants hold today by review; this module makes them hold by machine.

:class:`CheckedLock` wraps a :class:`threading.Lock` with a *name* (one
name per lock **class** — ``store.lru``, ``obs.instrument``, …) and
reports every acquisition to the installed
:class:`LockOrderSanitizer`, which maintains the global
first-observed-order digraph between lock names.  An acquisition that
would close a cycle in that digraph — lock *B* acquired while holding
*A* after some thread acquired *A* while holding *B* — raises
:class:`LockOrderError` naming the cycle, turning a once-in-a-blue-moon
deadlock into a deterministic test failure the first time the two orders
are *ever* exhibited, even seconds apart on different threads.

Production code creates its locks through :func:`new_lock`, which
returns a plain ``threading.Lock`` unless a sanitizer is installed —
zero hot-path overhead outside the test suite.  The test suite installs
one session-wide (see ``tests/conftest.py``), so the 16-thread
store-churn and router fault-injection tests double as lock-discipline
tests.

Same-name locks (two ``Counter`` instances) are not ordered against
each other — the discipline is between lock classes; re-acquiring the
*same* (non-reentrant) lock object on one thread is reported
immediately, since that is a guaranteed self-deadlock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "CheckedLock",
    "LockOrderError",
    "LockOrderSanitizer",
    "install",
    "installed",
    "new_lock",
    "uninstall",
]


class LockOrderError(RuntimeError):
    """An acquisition inverted the observed global lock order (or
    re-entered a non-reentrant lock)."""


class LockOrderSanitizer:
    """Records the lock-name acquisition digraph and raises on cycles."""

    def __init__(self):
        # Guards the digraph only.  Deliberately a *plain* lock: the
        # sanitizer must never report on itself.
        self._graph_lock = threading.Lock()
        # name -> set of names acquired while name was held (order edges).
        self._edges: Dict[str, Set[str]] = {}
        # (held, acquired) -> thread name that first exhibited the edge,
        # kept for the error message when the reverse order shows up.
        self._witnesses: Dict[Tuple[str, str], str] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _held(self) -> List["CheckedLock"]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def note_acquire(self, lock: "CheckedLock") -> None:
        """Validate (and record) acquiring *lock* given this thread's
        currently held locks.  Called **before** blocking on the real
        lock, so an order inversion is reported even when it does not
        happen to deadlock this time."""
        held = self._held()
        for other in held:
            if other is lock:
                raise LockOrderError(
                    f"re-acquisition of non-reentrant lock "
                    f"{lock.name!r} on thread "
                    f"{threading.current_thread().name} (self-deadlock)")
        for other in held:
            if other.name != lock.name:
                self._note_edge(other.name, lock.name)

    def note_acquired(self, lock: "CheckedLock") -> None:
        self._held().append(lock)

    def note_release(self, lock: "CheckedLock") -> None:
        held = self._held()
        # Release order may legally differ from acquire order; remove by
        # identity, scanning from the most recent acquisition.
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    # ------------------------------------------------------------------
    def _note_edge(self, before: str, after: str) -> None:
        thread_name = threading.current_thread().name
        with self._graph_lock:
            successors = self._edges.setdefault(before, set())
            if after in successors:
                return  # edge already known and already validated
            cycle = self._path_locked(after, before)
            if cycle is not None:
                chain = " -> ".join(cycle + [after])
                witness = self._witnesses.get((cycle[0], cycle[1]),
                                              "<unknown thread>")
                raise LockOrderError(
                    f"lock-order inversion: thread {thread_name} acquires "
                    f"{after!r} while holding {before!r}, but the opposite "
                    f"order {chain} was established earlier (first witness: "
                    f"thread {witness})")
            successors.add(after)
            self._witnesses[(before, after)] = thread_name

    def _path_locked(self, start: str,
                     goal: str) -> Optional[List[str]]:
        """A path start -> ... -> goal in the observed-order digraph, or
        ``None``.  Tiny graph (one node per lock class), so a plain DFS."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # ------------------------------------------------------------------
    def observed_edges(self) -> Set[Tuple[str, str]]:
        """Every (held, acquired) name pair observed so far — lets tests
        assert the sanitizer actually saw the discipline it guards."""
        with self._graph_lock:
            return {(before, after)
                    for before, afters in self._edges.items()
                    for after in afters}


class CheckedLock:
    """A named ``threading.Lock`` that reports acquisition order to a
    :class:`LockOrderSanitizer`.  Drop-in for the subset of the ``Lock``
    API this codebase uses (``with``, ``acquire``/``release``,
    ``locked``)."""

    __slots__ = ("name", "_lock", "_sanitizer")

    def __init__(self, name: str, sanitizer: LockOrderSanitizer):
        self.name = name
        self._lock = threading.Lock()
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.note_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.note_acquired(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._sanitizer.note_release(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<CheckedLock {self.name!r} {state}>"


_installed: Optional[LockOrderSanitizer] = None


def install(sanitizer: Optional[LockOrderSanitizer] = None) -> LockOrderSanitizer:
    """Arm the sanitizer: every lock created through :func:`new_lock`
    from now on is a :class:`CheckedLock` reporting to it.  Idempotent —
    installing over an existing sanitizer keeps the existing one (locks
    already created hold references to it)."""
    global _installed
    if _installed is None:
        _installed = sanitizer if sanitizer is not None else LockOrderSanitizer()
    return _installed


def uninstall() -> None:
    """Disarm: :func:`new_lock` returns plain locks again.  Existing
    CheckedLocks keep their sanitizer reference and stay functional."""
    global _installed
    _installed = None


def installed() -> Optional[LockOrderSanitizer]:
    return _installed


def new_lock(name: str):
    """The lock factory the store/obs/serve layers use: a plain
    ``threading.Lock`` in production (zero overhead), a
    :class:`CheckedLock` under an installed sanitizer (the test suite)."""
    sanitizer = _installed
    if sanitizer is None:
        return threading.Lock()
    return CheckedLock(name, sanitizer)
