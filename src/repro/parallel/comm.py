"""A minimal simulated communicator for rank-parallel generation.

The paper's distributed implementation targets MPI clusters; this repository
(per the substitution note in ``DESIGN.md``) runs on a single node, so we
provide a small communicator abstraction with the handful of collective
operations the generation and validation pipelines need (``bcast``,
``gather``, ``allreduce``, ``barrier``) and an executor that runs one Python
callable per rank — sequentially by default, or on a process pool when
``use_processes=True``.

The abstraction mirrors ``mpi4py``'s lower-case object API closely enough
that swapping in a real ``MPI.COMM_WORLD`` requires only constructing ranks
from it; nothing else in :mod:`repro.parallel` would change, which is the
point of keeping the communicator explicit instead of hard-coding loops.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["SimulatedComm", "RankContext", "run_on_ranks"]


class SimulatedComm:
    """Shared state for a group of simulated ranks (single-process semantics).

    The collective operations operate on values *submitted per rank* and are
    evaluated eagerly once every rank has contributed, which is all the
    deterministic, sequential rank loop needs.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self._size = size
        self._gather_buffers: Dict[str, Dict[int, Any]] = {}

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._size

    def gather(self, tag: str, rank: int, value: Any) -> Optional[List[Any]]:
        """Submit *value* from *rank* under *tag*; returns the full list once complete."""
        buffer = self._gather_buffers.setdefault(tag, {})
        buffer[rank] = value
        if len(buffer) == self._size:
            return [buffer[r] for r in range(self._size)]
        return None

    def allreduce_sum(self, tag: str, rank: int, value: Any) -> Optional[Any]:
        """Sum-reduce across ranks; returns the total once every rank contributed."""
        gathered = self.gather(tag, rank, value)
        if gathered is None:
            return None
        total = gathered[0]
        for item in gathered[1:]:
            total = total + item
        return total


@dataclass(frozen=True)
class RankContext:
    """Per-rank view handed to rank functions: rank id and communicator size."""

    rank: int
    size: int

    @property
    def is_root(self) -> bool:
        """Whether this is rank 0."""
        return self.rank == 0


def run_on_ranks(
    n_ranks: int,
    fn: Callable[[RankContext], Any],
    *,
    use_processes: bool = False,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Execute ``fn(RankContext(rank, n_ranks))`` for every rank and collect results.

    Sequential by default (deterministic, easiest to debug); with
    ``use_processes=True`` the ranks run on a :class:`ProcessPoolExecutor`,
    in which case *fn* must be picklable (a module-level function).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    contexts = [RankContext(rank=r, size=n_ranks) for r in range(n_ranks)]
    if not use_processes:
        return [fn(ctx) for ctx in contexts]
    with ProcessPoolExecutor(max_workers=max_workers or n_ranks) as pool:
        return list(pool.map(fn, contexts))
