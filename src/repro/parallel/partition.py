"""Partitioners for distributing a Kronecker product graph across ranks.

The generation of ``C = A ⊗ B`` is *communication-free*: every edge of ``C``
is the pairing of one ``A`` edge with one ``B`` edge, so any partition of the
``A``-edge list (or of the product vertex range) lets each rank emit its
slice of ``E_C`` using nothing but the two small factors it already holds.
This module provides the partition arithmetic; the rank simulation lives in
:mod:`repro.parallel.comm` and the actual per-rank generation in
:mod:`repro.parallel.distributed`.

Two layouts are provided:

* **edge partition** — contiguous slices of ``A``'s stored entries; each rank
  owns ``nnz(A)/R × nnz(B)`` product edges (near-perfect balance whenever
  ``nnz(A) ≫ R``).
* **vertex-block partition** — contiguous ranges of product vertices grouped
  by their ``A``-side index, so all edges *out of* a rank's vertices are
  generated locally (the 1-D row distribution used by distributed triangle
  counting codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "EdgePartition",
    "VertexBlockPartition",
    "partition_edges",
    "partition_vertex_blocks",
    "entry_range",
    "balance_statistics",
]


@dataclass(frozen=True)
class EdgePartition:
    """A contiguous slice of the left factor's stored entries owned by one rank.

    Attributes
    ----------
    rank:
        Owning rank id.
    a_entry_start, a_entry_stop:
        Half-open range of stored-entry indices of ``A`` (COO order) owned by
        this rank.
    product_edges:
        Number of product edges this rank will emit
        (``(stop - start) · nnz(B)``).
    """

    rank: int
    a_entry_start: int
    a_entry_stop: int
    product_edges: int

    @property
    def n_a_entries(self) -> int:
        """Number of ``A`` entries owned by this rank."""
        return self.a_entry_stop - self.a_entry_start


@dataclass(frozen=True)
class VertexBlockPartition:
    """A contiguous block of ``A``-side vertex ids owned by one rank.

    The rank owns every product vertex ``p`` with ``p // n_B`` in
    ``[a_row_start, a_row_stop)`` and generates all edges leaving them.
    """

    rank: int
    a_row_start: int
    a_row_stop: int
    product_vertex_start: int
    product_vertex_stop: int
    product_edges: int

    @property
    def n_product_vertices(self) -> int:
        """Number of product vertices owned by this rank."""
        return self.product_vertex_stop - self.product_vertex_start


def _even_splits(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-even half-open ranges."""
    if parts < 1:
        raise ValueError("number of ranks must be >= 1")
    bounds = np.linspace(0, total, parts + 1).astype(np.int64)
    return [(int(bounds[r]), int(bounds[r + 1])) for r in range(parts)]


def partition_edges(nnz_a: int, nnz_b: int, n_ranks: int) -> List[EdgePartition]:
    """Partition the ``A`` entry list evenly across ``n_ranks`` ranks."""
    if nnz_a < 0 or nnz_b < 0:
        raise ValueError("nnz counts must be non-negative")
    out = []
    for rank, (start, stop) in enumerate(_even_splits(nnz_a, n_ranks)):
        out.append(EdgePartition(rank=rank, a_entry_start=start, a_entry_stop=stop,
                                 product_edges=(stop - start) * nnz_b))
    return out


def partition_vertex_blocks(
    a_row_nnz: np.ndarray, n_vertices_b: int, nnz_b: int, n_ranks: int
) -> List[VertexBlockPartition]:
    """Partition ``A``-side rows into contiguous blocks with near-even edge load.

    Parameters
    ----------
    a_row_nnz:
        Stored entries per row of ``A`` (its out-degree profile).
    n_vertices_b, nnz_b:
        Size and entry count of the right factor.
    n_ranks:
        Number of ranks.
    """
    a_row_nnz = np.asarray(a_row_nnz, dtype=np.int64)
    n_a = a_row_nnz.shape[0]
    total_work = int(a_row_nnz.sum()) * nnz_b
    target = total_work / max(1, n_ranks)
    cumulative = np.cumsum(a_row_nnz) * nnz_b

    partitions: List[VertexBlockPartition] = []
    row_start = 0
    for rank in range(n_ranks):
        if rank == n_ranks - 1:
            row_stop = n_a
        else:
            threshold = (rank + 1) * target
            row_stop = int(np.searchsorted(cumulative, threshold, side="left")) + 1
            row_stop = min(max(row_stop, row_start), n_a)
        edges = int(a_row_nnz[row_start:row_stop].sum()) * nnz_b
        partitions.append(
            VertexBlockPartition(
                rank=rank,
                a_row_start=row_start,
                a_row_stop=row_stop,
                product_vertex_start=row_start * n_vertices_b,
                product_vertex_stop=row_stop * n_vertices_b,
                product_edges=edges,
            )
        )
        row_start = row_stop
    return partitions


def entry_range(
    partition: Union["EdgePartition", "VertexBlockPartition"], a_indptr: np.ndarray
) -> Tuple[int, int]:
    """Half-open ``A``-entry range owned by *partition*, for either layout.

    An :class:`EdgePartition` carries its entry slice directly.  A
    :class:`VertexBlockPartition` owns whole rows of ``A``; since the COO view
    of a CSR matrix lists entries in row-major order, those rows are the
    contiguous entry slice ``[indptr[row_start], indptr[row_stop])``.  This is
    the bridge that lets the one per-rank generator serve both layouts.
    """
    if isinstance(partition, EdgePartition):
        return partition.a_entry_start, partition.a_entry_stop
    if isinstance(partition, VertexBlockPartition):
        a_indptr = np.asarray(a_indptr)
        return int(a_indptr[partition.a_row_start]), int(a_indptr[partition.a_row_stop])
    raise TypeError(
        f"expected an EdgePartition or VertexBlockPartition, got {type(partition)!r}"
    )


def balance_statistics(partitions, *, max_atom_load: Optional[int] = None) -> dict:
    """Load-balance summary of a partition list (max/mean edge load, imbalance factor).

    Parameters
    ----------
    max_atom_load:
        Largest indivisible unit of work, in product edges — ``nnz(B)`` for an
        edge partition (one ``A`` entry), ``max_row_nnz(A) · nnz(B)`` for a
        vertex-block partition (one ``A`` row).  When given, the summary also
        reports ``bounded_imbalance = max / max(mean, max_atom_load)``: the
        imbalance measured against the best any contiguous partitioner could
        do, which both layouts keep ≤ 2 even on adversarial degree profiles
        (a greedy cut never overshoots the target by more than one atom),
        whereas the raw ``imbalance`` degenerates whenever
        ``n_ranks`` exceeds the number of atoms.
    """
    loads = np.asarray([p.product_edges for p in partitions], dtype=np.float64)
    if loads.size == 0 or loads.sum() == 0:
        out = {"max": 0.0, "mean": 0.0, "imbalance": 1.0, "n_ranks": int(loads.size)}
        if max_atom_load is not None:
            out["bounded_imbalance"] = 1.0
        return out
    mean = float(loads.mean())
    out = {
        "max": float(loads.max()),
        "mean": mean,
        "imbalance": float(loads.max() / mean) if mean > 0 else 1.0,
        "n_ranks": int(loads.size),
    }
    if max_atom_load is not None:
        bound = max(mean, float(max_atom_load))
        out["bounded_imbalance"] = float(loads.max() / bound) if bound > 0 else 1.0
    return out
