"""Streaming consumers for Kronecker products too large to materialize.

Complements :meth:`repro.core.KroneckerGraph.iter_edge_blocks`: these helpers
fold a bounded-memory pass over the streamed edge blocks into the global
aggregates a benchmark consumer typically wants (edge counts, degree
histograms, triangle-participation histograms via the factored statistics)
and can spill the edge list to disk in chunks — the "write the trillion-edge
graph to a parallel file system" path of the paper's motivating use case [3],
scaled to a single node.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

import numpy as np

from repro.core.kronecker import KroneckerGraph

__all__ = [
    "stream_edge_count",
    "stream_degree_histogram",
    "stream_edges_to_file",
    "stream_apply",
]


def stream_apply(
    product: KroneckerGraph,
    fn: Callable[[np.ndarray], None],
    *,
    a_edges_per_block: int = 1024,
) -> int:
    """Apply *fn* to every streamed edge block; returns the number of edges seen."""
    total = 0
    for block in product.iter_edge_blocks(a_edges_per_block=a_edges_per_block):
        fn(block)
        total += block.shape[0]
    return total


def stream_edge_count(product: KroneckerGraph, *, a_edges_per_block: int = 1024) -> int:
    """Count the directed edges of the product by streaming (equals ``product.nnz``)."""
    return stream_apply(product, lambda block: None, a_edges_per_block=a_edges_per_block)


def stream_degree_histogram(
    product: KroneckerGraph, *, a_edges_per_block: int = 1024
) -> Dict[int, int]:
    """Out-degree histogram ``{degree: #vertices}`` accumulated from the edge stream.

    Degrees here are raw row counts of the adjacency (self loops included),
    matching what a stream consumer that only sees edges can compute; the
    closed-form histogram from the degree formulas is the cross-check.
    """
    counts = np.zeros(product.n_vertices, dtype=np.int64)

    def accumulate(block: np.ndarray) -> None:
        np.add.at(counts, block[:, 0], 1)

    stream_apply(product, accumulate, a_edges_per_block=a_edges_per_block)
    values, frequencies = np.unique(counts, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, frequencies)}


def stream_edges_to_file(
    product: KroneckerGraph,
    path: Union[str, Path],
    *,
    a_edges_per_block: int = 1024,
    max_edges: Optional[int] = None,
) -> int:
    """Write the product edge list to a TSV file in bounded-memory chunks.

    Parameters
    ----------
    product:
        The implicit Kronecker product.
    path:
        Output file path.
    max_edges:
        Optional cap on the number of edges written (useful to sample a
        prefix of an enormous product for inspection).

    Returns
    -------
    int
        Number of edges written.
    """
    path = Path(path)
    written = 0
    with path.open("w") as handle:
        handle.write(f"# kronecker product {product.name} n_vertices={product.n_vertices}\n")
        for block in product.iter_edge_blocks(a_edges_per_block=a_edges_per_block):
            if max_edges is not None and written + block.shape[0] > max_edges:
                block = block[: max_edges - written]
            np.savetxt(handle, block, fmt="%d", delimiter="\t")
            written += block.shape[0]
            if max_edges is not None and written >= max_edges:
                break
    return written
