"""Streaming consumers for Kronecker products too large to materialize.

Complements :meth:`repro.core.KroneckerGraph.iter_edge_blocks`: these helpers
fold a bounded-memory pass over the streamed edge blocks into the global
aggregates a benchmark consumer typically wants (edge counts, degree
histograms, triangle-participation histograms via the factored statistics)
and can spill the edge list to disk in chunks — the "write the trillion-edge
graph to a parallel file system" path of the paper's motivating use case [3],
scaled to a single node.

The :class:`StreamingRankAccumulator` is the per-rank half of the streaming
generation pipeline: each rank folds its
:func:`~repro.parallel.distributed.iter_rank_edge_blocks` stream into one
accumulator (edge count, per-source out-edge counts, triangle-participation
histogram, trussness census — all factor-free aggregates), the accumulators
are sum-reduced across ranks with ``SimulatedComm.allreduce_sum`` (they
support ``+``), and the reduced aggregate is checked against the closed-form
factor statistics by :class:`repro.core.validation.ValidationAccumulator` —
no full edge list is ever merged or even kept.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.kronecker import KroneckerGraph

__all__ = [
    "StreamingRankAccumulator",
    "stream_edge_count",
    "stream_degree_histogram",
    "stream_edges_to_file",
    "stream_apply",
    "format_edge_block_tsv",
]


def _merge_value_counts(
    values_a: np.ndarray, counts_a: np.ndarray,
    values_b: np.ndarray, counts_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two (sorted-unique values, counts) multisets into one."""
    if values_a.size == 0:
        return values_b.astype(np.int64), counts_b.astype(np.int64)
    if values_b.size == 0:
        return values_a.astype(np.int64), counts_a.astype(np.int64)
    values = np.concatenate([values_a, values_b])
    weights = np.concatenate([counts_a, counts_b])
    uniq, inverse = np.unique(values, return_inverse=True)
    out = np.zeros(uniq.shape[0], dtype=np.int64)
    np.add.at(out, inverse, weights)
    return uniq, out


class StreamingRankAccumulator:
    """Bounded-memory aggregates of one rank's (or the whole run's) edge stream.

    Stores **no edges**: only value/count arrays whose sizes are bounded by
    the number of distinct source vertices / statistic values the rank
    touched.  Accumulators add (``acc_a + acc_b`` merges the aggregates), so
    the final cross-rank reduction is a plain
    ``SimulatedComm.allreduce_sum`` — the only communication the streaming
    pipeline performs, mirroring the paper's "essentially communication-free"
    claim.

    Parameters
    ----------
    rank:
        Owning rank id, or ``-1`` for a merged (reduced) accumulator.
    with_statistics:
        Whether triangle payloads will be folded in (affects which checks the
        validation side runs).
    with_trussness:
        Whether per-edge trussness values will be folded in.
    """

    __slots__ = (
        "rank", "n_edges", "n_blocks", "max_block_edges", "triangle_total",
        "with_statistics", "with_trussness",
        "_deg_values", "_deg_counts",
        "_tri_values", "_tri_counts",
        "_truss_values", "_truss_counts",
    )

    def __init__(self, rank: int = -1, *, with_statistics: bool = False,
                 with_trussness: bool = False):
        self.rank = int(rank)
        self.n_edges = 0
        self.n_blocks = 0
        self.max_block_edges = 0
        self.triangle_total = 0
        self.with_statistics = bool(with_statistics)
        self.with_trussness = bool(with_trussness)
        empty = np.zeros(0, dtype=np.int64)
        self._deg_values, self._deg_counts = empty, empty.copy()
        self._tri_values, self._tri_counts = empty.copy(), empty.copy()
        self._truss_values, self._truss_counts = empty.copy(), empty.copy()

    # -- folding ----------------------------------------------------------
    def update(
        self,
        edges: np.ndarray,
        edge_triangles: Optional[np.ndarray] = None,
        trussness: Optional[np.ndarray] = None,
    ) -> None:
        """Fold one edge block (and its optional per-edge payloads) in.

        Everything is tabulated with ``np.unique`` before being merged, so
        the block itself can be released immediately — the accumulator never
        references the input arrays.
        """
        m = int(edges.shape[0])
        self.n_edges += m
        self.n_blocks += 1
        self.max_block_edges = max(self.max_block_edges, m)
        if m == 0:
            return
        sources, source_counts = np.unique(edges[:, 0], return_counts=True)
        self._deg_values, self._deg_counts = _merge_value_counts(
            self._deg_values, self._deg_counts, sources.astype(np.int64), source_counts)
        if edge_triangles is not None and edge_triangles.size:
            self.with_statistics = True
            self.triangle_total += int(edge_triangles.sum())
            tri, tri_counts = np.unique(np.asarray(edge_triangles, dtype=np.int64),
                                        return_counts=True)
            self._tri_values, self._tri_counts = _merge_value_counts(
                self._tri_values, self._tri_counts, tri, tri_counts)
        if trussness is not None and trussness.size:
            self.with_trussness = True
            tr, tr_counts = np.unique(np.asarray(trussness, dtype=np.int64),
                                      return_counts=True)
            self._truss_values, self._truss_counts = _merge_value_counts(
                self._truss_values, self._truss_counts, tr, tr_counts)

    def __add__(self, other: "StreamingRankAccumulator") -> "StreamingRankAccumulator":
        """Merged aggregates of two accumulators (the allreduce combiner)."""
        if not isinstance(other, StreamingRankAccumulator):
            return NotImplemented
        out = StreamingRankAccumulator(
            -1,
            with_statistics=self.with_statistics or other.with_statistics,
            with_trussness=self.with_trussness or other.with_trussness,
        )
        out.n_edges = self.n_edges + other.n_edges
        out.n_blocks = self.n_blocks + other.n_blocks
        out.max_block_edges = max(self.max_block_edges, other.max_block_edges)
        out.triangle_total = self.triangle_total + other.triangle_total
        out._deg_values, out._deg_counts = _merge_value_counts(
            self._deg_values, self._deg_counts, other._deg_values, other._deg_counts)
        out._tri_values, out._tri_counts = _merge_value_counts(
            self._tri_values, self._tri_counts, other._tri_values, other._tri_counts)
        out._truss_values, out._truss_counts = _merge_value_counts(
            self._truss_values, self._truss_counts, other._truss_values, other._truss_counts)
        return out

    # -- views ------------------------------------------------------------
    def source_degree_counts(self) -> Dict[int, int]:
        """Out-edge count per source vertex seen by this accumulator."""
        return {int(v): int(c) for v, c in zip(self._deg_values, self._deg_counts)}

    def degree_histogram(self, n_vertices: int) -> Dict[int, int]:
        """Out-degree histogram ``{degree: #vertices}`` including the zero bin.

        Meaningful on a fully reduced accumulator (a vertex whose edges are
        split across ranks has partial counts in each rank's accumulator).
        Degrees are raw out-entry counts (self loops included), matching
        :func:`stream_degree_histogram`.
        """
        values, counts = np.unique(self._deg_counts, return_counts=True)
        hist = {int(v): int(c) for v, c in zip(values, counts)}
        untouched = int(n_vertices) - int(self._deg_values.size)
        if untouched:
            hist[0] = hist.get(0, 0) + untouched
        return hist

    def triangle_histogram(self) -> Dict[int, int]:
        """Histogram ``{edge triangle count: #directed edges}`` (zero bin kept)."""
        return {int(v): int(c) for v, c in zip(self._tri_values, self._tri_counts)}

    def trussness_census(self) -> Dict[int, int]:
        """Histogram ``{edge trussness: #directed edges}``."""
        return {int(v): int(c) for v, c in zip(self._truss_values, self._truss_counts)}

    def summary(self) -> Dict[str, object]:
        """Canonical aggregate view, independent of the blocking schedule.

        Two runs over the same slice — whatever their block size, layout or
        rank count — produce equal summaries; the equivalence tests compare
        exactly this.
        """
        return {
            "n_edges": self.n_edges,
            "source_degree_counts": self.source_degree_counts(),
            "triangle_total": self.triangle_total,
            "triangle_histogram": self.triangle_histogram(),
            "trussness_census": self.trussness_census(),
        }

    @classmethod
    def from_rank_output(cls, output, *, trussness: Optional[np.ndarray] = None
                         ) -> "StreamingRankAccumulator":
        """Aggregate a materialized :class:`~repro.parallel.distributed.RankOutput`.

        The bridge for equivalence testing: folding a rank's whole edge list
        as one block must produce the same :meth:`summary` as streaming it in
        bounded blocks.
        """
        acc = cls(output.rank)
        edge_triangles = output.edge_triangles if output.edge_triangles.size else None
        acc.update(output.edges, edge_triangles, trussness)
        return acc

    def __repr__(self) -> str:
        return (
            f"StreamingRankAccumulator(rank={self.rank}, n_edges={self.n_edges}, "
            f"n_blocks={self.n_blocks}, max_block_edges={self.max_block_edges}, "
            f"triangle_total={self.triangle_total})"
        )


def stream_apply(
    product: KroneckerGraph,
    fn: Callable[[np.ndarray], None],
    *,
    a_edges_per_block: int = 1024,
) -> int:
    """Apply *fn* to every streamed edge block; returns the number of edges seen."""
    total = 0
    for block in product.iter_edge_blocks(a_edges_per_block=a_edges_per_block):
        fn(block)
        total += block.shape[0]
    return total


def stream_edge_count(product: KroneckerGraph, *, a_edges_per_block: int = 1024) -> int:
    """Count the directed edges of the product by streaming (equals ``product.nnz``)."""
    return stream_apply(product, lambda block: None, a_edges_per_block=a_edges_per_block)


def stream_degree_histogram(
    product: KroneckerGraph, *, a_edges_per_block: int = 1024
) -> Dict[int, int]:
    """Out-degree histogram ``{degree: #vertices}`` accumulated from the edge stream.

    Degrees here are raw row counts of the adjacency (self loops included),
    matching what a stream consumer that only sees edges can compute; the
    closed-form histogram from the degree formulas is the cross-check.
    """
    counts = np.zeros(product.n_vertices, dtype=np.int64)

    def accumulate(block: np.ndarray) -> None:
        np.add.at(counts, block[:, 0], 1)

    stream_apply(product, accumulate, a_edges_per_block=a_edges_per_block)
    values, frequencies = np.unique(counts, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, frequencies)}


def format_edge_block_tsv(block: np.ndarray) -> str:
    """Format an ``(m, 2)`` edge block as TSV, vectorized.

    Byte-identical to the legacy per-row
    ``np.savetxt(handle, block, fmt="%d", delimiter="\\t")`` loop (one
    ``u<TAB>v`` line per edge, trailing newline), but the int→str conversion
    and the column join both run as single array operations.
    """
    if block.shape[0] == 0:
        return ""
    left = block[:, 0].astype("U21")
    right = block[:, 1].astype("U21")
    lines = np.char.add(np.char.add(left, "\t"), right)
    return "\n".join(lines.tolist()) + "\n"


def stream_edges_to_file(
    product: KroneckerGraph,
    path: Union[str, Path],
    *,
    a_edges_per_block: int = 1024,
    max_edges: Optional[int] = None,
) -> int:
    """Write the product edge list to a TSV file in bounded-memory chunks.

    TSV is the opt-in human-readable spill format; the default binary sink
    for large runs is the ``.npy`` shard directory written by
    :class:`repro.graphs.io.NpyShardSink` /
    :func:`repro.graphs.io.write_edge_shards`.  Each block is formatted with
    :func:`format_edge_block_tsv` — one vectorized conversion per block, not
    one ``%``-format call per row.

    Parameters
    ----------
    product:
        The implicit Kronecker product.
    path:
        Output file path.
    max_edges:
        Optional cap on the number of edges written (useful to sample a
        prefix of an enormous product for inspection).

    Returns
    -------
    int
        Number of edges written.
    """
    path = Path(path)
    written = 0
    with path.open("w") as handle:
        handle.write(f"# kronecker product {product.name} n_vertices={product.n_vertices}\n")
        for block in product.iter_edge_blocks(a_edges_per_block=a_edges_per_block):
            if max_edges is not None and written + block.shape[0] > max_edges:
                block = block[: max_edges - written]
            handle.write(format_edge_block_tsv(block))
            written += block.shape[0]
            if max_edges is not None and written >= max_edges:
                break
    return written
