"""Partitioned, communication-free generation and streaming of Kronecker products.

Single-node simulation of the paper's distributed generation path: partition
descriptors (:mod:`repro.parallel.partition`), a minimal communicator
abstraction (:mod:`repro.parallel.comm`), per-rank edge generation with local
ground-truth statistics (:mod:`repro.parallel.distributed`), and
bounded-memory streaming consumers plus the per-rank aggregate accumulator
(:mod:`repro.parallel.streaming`).
"""

from repro.parallel.comm import RankContext, SimulatedComm, run_on_ranks
from repro.parallel.distributed import (
    RankEdgeBlock,
    RankOutput,
    StreamingGenerateResult,
    distributed_generate,
    generate_rank_edges,
    iter_rank_edge_blocks,
    merge_rank_outputs,
    stream_rank_aggregate,
)
from repro.parallel.partition import (
    EdgePartition,
    VertexBlockPartition,
    balance_statistics,
    entry_range,
    partition_edges,
    partition_vertex_blocks,
)
from repro.parallel.streaming import (
    StreamingRankAccumulator,
    format_edge_block_tsv,
    stream_apply,
    stream_degree_histogram,
    stream_edge_count,
    stream_edges_to_file,
)

__all__ = [
    "SimulatedComm",
    "RankContext",
    "run_on_ranks",
    "EdgePartition",
    "VertexBlockPartition",
    "partition_edges",
    "partition_vertex_blocks",
    "entry_range",
    "balance_statistics",
    "RankOutput",
    "RankEdgeBlock",
    "StreamingGenerateResult",
    "generate_rank_edges",
    "iter_rank_edge_blocks",
    "stream_rank_aggregate",
    "distributed_generate",
    "merge_rank_outputs",
    "StreamingRankAccumulator",
    "format_edge_block_tsv",
    "stream_apply",
    "stream_edge_count",
    "stream_degree_histogram",
    "stream_edges_to_file",
]
