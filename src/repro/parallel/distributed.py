"""Communication-free distributed generation of ``C = A ⊗ B`` (simulated ranks).

Each rank holds both (small) factors and a partition descriptor; it emits its
slice of the product edge list, plus — because the Kronecker formulas are
local — the exact triangle ground truth for everything it emitted, without
ever talking to another rank.  The driver verifies that the union of the
per-rank outputs is exactly the product's edge set and that per-rank
statistics sum to the global formula values, which is the property the paper
relies on when calling the generation "essentially communication-free".

Performance contract: the factored statistics object is built **once** per
generation run and shared (read-only) by every rank, and each rank evaluates
its ground-truth payload with the batched
:meth:`~repro.core.triangle_formulas.KroneckerTriangleStats.edge_values`
kernel — no per-edge Python loop anywhere on the generation path.  Ranks run
sequentially by default; pass ``use_processes=True`` to fan them out on a
``multiprocessing`` pool.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.kronecker import KroneckerGraph
from repro.core.triangle_formulas import KroneckerTriangleStats
from repro.graphs.adjacency import Graph
from repro.parallel.partition import EdgePartition, partition_edges

__all__ = ["RankOutput", "generate_rank_edges", "distributed_generate", "merge_rank_outputs"]


@dataclass(frozen=True)
class RankOutput:
    """What one rank produces: its product edges and their ground-truth statistics.

    Attributes
    ----------
    rank:
        Rank id.
    edges:
        ``(m, 2)`` array of directed product edges emitted by this rank.
    edge_triangles:
        Length-``m`` vector with the exact triangle participation of each
        emitted edge (from the factored statistics — no global data needed).
    source_vertex_triangles:
        Exact triangle participation of each emitted edge's source vertex.
    """

    rank: int
    edges: np.ndarray
    edge_triangles: np.ndarray
    source_vertex_triangles: np.ndarray

    @property
    def n_edges(self) -> int:
        """Number of directed product edges emitted by this rank."""
        return int(self.edges.shape[0])


def generate_rank_edges(
    factor_a: Graph,
    factor_b: Graph,
    partition: EdgePartition,
    *,
    with_statistics: bool = True,
    stats: Optional[KroneckerTriangleStats] = None,
) -> RankOutput:
    """Generate the product edges owned by one rank (its slice of ``A``'s entries).

    Every ``A`` entry in the rank's slice is paired with every ``B`` entry;
    the statistics are evaluated from the factored
    :class:`~repro.core.triangle_formulas.KroneckerTriangleStats` — via its
    batched ``edge_values``/``vertex_value`` kernels, never one edge at a
    time — using only factor-sized data.

    Parameters
    ----------
    stats:
        Pre-built factored statistics to share across ranks.  When ``None``
        and ``with_statistics`` is set, the rank builds its own copy — a
        driver generating many ranks should build it once and pass it in
        (:func:`distributed_generate` does exactly that).
    """
    coo_a = factor_a.adjacency.tocoo()
    coo_b = factor_b.adjacency.tocoo()
    n_b = factor_b.n_vertices
    start, stop = partition.a_entry_start, partition.a_entry_stop
    a_rows = coo_a.row[start:stop].astype(np.int64)
    a_cols = coo_a.col[start:stop].astype(np.int64)
    b_rows = coo_b.row.astype(np.int64)
    b_cols = coo_b.col.astype(np.int64)
    rows = (a_rows[:, None] * n_b + b_rows[None, :]).ravel()
    cols = (a_cols[:, None] * n_b + b_cols[None, :]).ravel()
    edges = np.stack([rows, cols], axis=1)

    if not with_statistics:
        empty = np.zeros(0, dtype=np.int64)
        return RankOutput(rank=partition.rank, edges=edges,
                          edge_triangles=empty, source_vertex_triangles=empty)

    if stats is None:
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    vertex_t = np.asarray(stats.vertex_value(rows), dtype=np.int64)
    edge_t = stats.edge_values(rows, cols)
    return RankOutput(rank=partition.rank, edges=edges,
                      edge_triangles=edge_t, source_vertex_triangles=vertex_t)


#: Per-worker shared state (factors + statistics), shipped once per process
#: via the pool initializer instead of being re-pickled into every task.
_WORKER_STATE: Optional[Tuple[Graph, Graph, bool, Optional[KroneckerTriangleStats]]] = None


def _worker_init(factor_a: Graph, factor_b: Graph, with_statistics: bool,
                 stats: Optional[KroneckerTriangleStats]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (factor_a, factor_b, with_statistics, stats)


def _rank_worker(partition: EdgePartition) -> RankOutput:
    """Module-level worker (picklable); reads the shared per-process state."""
    factor_a, factor_b, with_statistics, stats = _WORKER_STATE
    return generate_rank_edges(factor_a, factor_b, partition,
                               with_statistics=with_statistics, stats=stats)


def distributed_generate(
    factor_a: Graph,
    factor_b: Graph,
    n_ranks: int,
    *,
    with_statistics: bool = True,
    use_processes: bool = False,
    max_workers: Optional[int] = None,
) -> List[RankOutput]:
    """Run the communication-free generation over ``n_ranks`` simulated ranks.

    The factored statistics are built exactly once and shared by every rank
    (they are immutable, so sharing is safe in-process and cheap to ship to
    workers).  With ``use_processes=True`` the ranks run concurrently on a
    ``multiprocessing`` pool — the single-node stand-in for the paper's MPI
    ranks; results are returned in rank order either way.
    """
    partitions = partition_edges(factor_a.nnz, factor_b.nnz, n_ranks)
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b) \
        if with_statistics else None
    if not use_processes:
        return [
            generate_rank_edges(factor_a, factor_b, part,
                                with_statistics=with_statistics, stats=stats)
            for part in partitions
        ]
    with ProcessPoolExecutor(
        max_workers=max_workers or min(n_ranks, 8),
        initializer=_worker_init,
        initargs=(factor_a, factor_b, with_statistics, stats),
    ) as pool:
        return list(pool.map(_rank_worker, partitions))


def merge_rank_outputs(outputs: Sequence[RankOutput], n_vertices: int) -> sp.csr_matrix:
    """Union of all per-rank edge lists as a CSR adjacency matrix.

    Used to verify that the distributed generation reproduces exactly the
    materialized product (no missing, duplicated, or spurious edges).
    """
    if not outputs:
        return sp.csr_matrix((n_vertices, n_vertices), dtype=np.int64)
    all_edges = np.concatenate([out.edges for out in outputs], axis=0)
    data = np.ones(all_edges.shape[0], dtype=np.int64)
    adj = sp.csr_matrix((data, (all_edges[:, 0], all_edges[:, 1])),
                        shape=(n_vertices, n_vertices))
    adj.sum_duplicates()
    return adj
