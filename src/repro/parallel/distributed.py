"""Communication-free distributed generation of ``C = A ⊗ B`` (simulated ranks).

Each rank holds both (small) factors and a partition descriptor; it emits its
slice of the product edge list, plus — because the Kronecker formulas are
local — the exact triangle ground truth for everything it emitted, without
ever talking to another rank.  The driver verifies that the union of the
per-rank outputs is exactly the product's edge set and that per-rank
statistics sum to the global formula values, which is the property the paper
relies on when calling the generation "essentially communication-free".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.kronecker import KroneckerGraph
from repro.core.triangle_formulas import KroneckerTriangleStats
from repro.graphs.adjacency import Graph
from repro.parallel.partition import EdgePartition, partition_edges

__all__ = ["RankOutput", "generate_rank_edges", "distributed_generate", "merge_rank_outputs"]


@dataclass(frozen=True)
class RankOutput:
    """What one rank produces: its product edges and their ground-truth statistics.

    Attributes
    ----------
    rank:
        Rank id.
    edges:
        ``(m, 2)`` array of directed product edges emitted by this rank.
    edge_triangles:
        Length-``m`` vector with the exact triangle participation of each
        emitted edge (from the factored statistics — no global data needed).
    source_vertex_triangles:
        Exact triangle participation of each emitted edge's source vertex.
    """

    rank: int
    edges: np.ndarray
    edge_triangles: np.ndarray
    source_vertex_triangles: np.ndarray

    @property
    def n_edges(self) -> int:
        """Number of directed product edges emitted by this rank."""
        return int(self.edges.shape[0])


def generate_rank_edges(
    factor_a: Graph,
    factor_b: Graph,
    partition: EdgePartition,
    *,
    with_statistics: bool = True,
) -> RankOutput:
    """Generate the product edges owned by one rank (its slice of ``A``'s entries).

    Every ``A`` entry in the rank's slice is paired with every ``B`` entry;
    the statistics are evaluated from the factored
    :class:`~repro.core.triangle_formulas.KroneckerTriangleStats`, i.e. using
    only factor-sized data.
    """
    coo_a = factor_a.adjacency.tocoo()
    coo_b = factor_b.adjacency.tocoo()
    n_b = factor_b.n_vertices
    start, stop = partition.a_entry_start, partition.a_entry_stop
    a_rows = coo_a.row[start:stop].astype(np.int64)
    a_cols = coo_a.col[start:stop].astype(np.int64)
    b_rows = coo_b.row.astype(np.int64)
    b_cols = coo_b.col.astype(np.int64)
    rows = (a_rows[:, None] * n_b + b_rows[None, :]).ravel()
    cols = (a_cols[:, None] * n_b + b_cols[None, :]).ravel()
    edges = np.stack([rows, cols], axis=1)

    if not with_statistics:
        empty = np.zeros(0, dtype=np.int64)
        return RankOutput(rank=partition.rank, edges=edges,
                          edge_triangles=empty, source_vertex_triangles=empty)

    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    vertex_t = stats.vertex_value(rows)
    edge_t = np.asarray(
        [stats.edge_value(int(p), int(q)) for p, q in zip(rows, cols)], dtype=np.int64
    )
    return RankOutput(rank=partition.rank, edges=edges,
                      edge_triangles=edge_t, source_vertex_triangles=np.asarray(vertex_t))


def distributed_generate(
    factor_a: Graph,
    factor_b: Graph,
    n_ranks: int,
    *,
    with_statistics: bool = True,
) -> List[RankOutput]:
    """Run the communication-free generation over ``n_ranks`` simulated ranks."""
    partitions = partition_edges(factor_a.nnz, factor_b.nnz, n_ranks)
    return [
        generate_rank_edges(factor_a, factor_b, part, with_statistics=with_statistics)
        for part in partitions
    ]


def merge_rank_outputs(outputs: Sequence[RankOutput], n_vertices: int) -> sp.csr_matrix:
    """Union of all per-rank edge lists as a CSR adjacency matrix.

    Used to verify that the distributed generation reproduces exactly the
    materialized product (no missing, duplicated, or spurious edges).
    """
    if not outputs:
        return sp.csr_matrix((n_vertices, n_vertices), dtype=np.int64)
    all_edges = np.concatenate([out.edges for out in outputs], axis=0)
    data = np.ones(all_edges.shape[0], dtype=np.int64)
    adj = sp.csr_matrix((data, (all_edges[:, 0], all_edges[:, 1])),
                        shape=(n_vertices, n_vertices))
    adj.sum_duplicates()
    return adj
