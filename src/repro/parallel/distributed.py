"""Communication-free distributed generation of ``C = A ⊗ B`` (simulated ranks).

Each rank holds both (small) factors and a partition descriptor; it emits its
slice of the product edge list, plus — because the Kronecker formulas are
local — the exact triangle ground truth for everything it emitted, without
ever talking to another rank.  The driver verifies that the union of the
per-rank outputs is exactly the product's edge set and that per-rank
statistics sum to the global formula values, which is the property the paper
relies on when calling the generation "essentially communication-free".

Two execution modes are provided:

* **materialized** (default) — each rank returns its whole slice as one
  :class:`RankOutput`; peak memory per rank is the full
  ``(stop - start) · nnz(B)`` edge array.
* **streaming** (``streaming=True``) — each rank walks its slice in
  ``a_edges_per_block · nnz(B)``-edge blocks
  (:func:`iter_rank_edge_blocks`), folds them into a
  :class:`~repro.parallel.streaming.StreamingRankAccumulator`, optionally
  spills each block to a sink (e.g.
  :class:`repro.graphs.io.NpyShardSink`), and returns only the aggregates.
  The driver sum-reduces the accumulators through
  :class:`~repro.parallel.comm.SimulatedComm` — the single-node stand-in for
  writing a trillion-edge graph to a parallel file system while validating
  it on the fly, without the product ever existing in memory.

Performance contract: the factored statistics object is built **once** per
generation run and shared (read-only) by every rank; batched payloads go
through :meth:`~repro.core.triangle_formulas.KroneckerTriangleStats.edge_values`
(materialized path) or the cached-key
:class:`~repro.core.triangle_formulas.TriangleStatsGatherer` (streaming path,
one gatherer reused across all blocks) — no per-edge Python loop anywhere.
Ranks run sequentially by default; pass ``use_processes=True`` to fan them
out on a ``multiprocessing`` pool.

Under an active :mod:`repro.obs.trace` context a streaming run records a
``stream.run`` span with one ``stream.rank`` child per in-process rank
(block counts and edge totals attached) — process-pool ranks run in other
interpreters and are not spanned.  Without an active trace the calls are
no-ops.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.kronecker import KroneckerGraph
from repro.core.triangle_formulas import KroneckerTriangleStats, TriangleStatsGatherer
from repro.core.truss_formulas import KroneckerTrussDecomposition, kron_truss_decomposition
from repro.graphs.adjacency import Graph
from repro.graphs.io import normalize_payload_columns
from repro.obs import trace
from repro.parallel.comm import SimulatedComm
from repro.parallel.partition import (
    EdgePartition,
    VertexBlockPartition,
    entry_range,
    partition_edges,
    partition_vertex_blocks,
)
from repro.parallel.streaming import StreamingRankAccumulator

__all__ = [
    "RankOutput",
    "RankEdgeBlock",
    "StreamingGenerateResult",
    "generate_rank_edges",
    "iter_rank_edge_blocks",
    "stream_rank_aggregate",
    "distributed_generate",
    "merge_rank_outputs",
]

PartitionType = Union[EdgePartition, VertexBlockPartition]

#: Sink protocol: either an object with ``write(rank, block_index, edges)``
#: (and optionally ``finalize()``) or a plain callable with that signature.
SinkType = Union[Callable[[int, int, np.ndarray], None], object]


@dataclass(frozen=True)
class RankOutput:
    """What one rank produces: its product edges and their ground-truth statistics.

    Attributes
    ----------
    rank:
        Rank id.
    edges:
        ``(m, 2)`` array of directed product edges emitted by this rank.
    edge_triangles:
        Length-``m`` vector with the exact triangle participation of each
        emitted edge (from the factored statistics — no global data needed).
    source_vertex_triangles:
        Exact triangle participation of each emitted edge's source vertex.
    """

    rank: int
    edges: np.ndarray
    edge_triangles: np.ndarray
    source_vertex_triangles: np.ndarray

    @property
    def n_edges(self) -> int:
        """Number of directed product edges emitted by this rank."""
        return int(self.edges.shape[0])


class RankEdgeBlock(NamedTuple):
    """One bounded block of a rank's stream: edges plus their exact payloads."""

    edges: np.ndarray
    edge_triangles: np.ndarray
    source_vertex_triangles: np.ndarray


def _rank_entry_range(factor_a: Graph, partition: PartitionType) -> Tuple[int, int]:
    return entry_range(partition, factor_a.adjacency.indptr)


def generate_rank_edges(
    factor_a: Graph,
    factor_b: Graph,
    partition: PartitionType,
    *,
    with_statistics: bool = True,
    stats: Optional[KroneckerTriangleStats] = None,
) -> RankOutput:
    """Generate the product edges owned by one rank, as a single slice.

    Every ``A`` entry in the rank's slice is paired with every ``B`` entry;
    the statistics are evaluated from the factored
    :class:`~repro.core.triangle_formulas.KroneckerTriangleStats` — via its
    batched ``edge_values``/``vertex_value`` kernels, never one edge at a
    time — using only factor-sized data.  Both partition layouts are
    accepted: a :class:`~repro.parallel.partition.VertexBlockPartition` is
    mapped to its contiguous CSR entry range first.

    Parameters
    ----------
    stats:
        Pre-built factored statistics to share across ranks.  When ``None``
        and ``with_statistics`` is set, the rank builds its own copy — a
        driver generating many ranks should build it once and pass it in
        (:func:`distributed_generate` does exactly that).
    """
    coo_a = factor_a.adjacency.tocoo()
    coo_b = factor_b.adjacency.tocoo()
    n_b = factor_b.n_vertices
    start, stop = _rank_entry_range(factor_a, partition)
    a_rows = coo_a.row[start:stop].astype(np.int64)
    a_cols = coo_a.col[start:stop].astype(np.int64)
    b_rows = coo_b.row.astype(np.int64)
    b_cols = coo_b.col.astype(np.int64)
    rows = (a_rows[:, None] * n_b + b_rows[None, :]).ravel()
    cols = (a_cols[:, None] * n_b + b_cols[None, :]).ravel()
    edges = np.stack([rows, cols], axis=1)

    if not with_statistics:
        empty = np.zeros(0, dtype=np.int64)
        return RankOutput(rank=partition.rank, edges=edges,
                          edge_triangles=empty, source_vertex_triangles=empty)

    if stats is None:
        stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    vertex_t = np.asarray(stats.vertex_value(rows), dtype=np.int64)
    edge_t = stats.edge_values(rows, cols)
    return RankOutput(rank=partition.rank, edges=edges,
                      edge_triangles=edge_t, source_vertex_triangles=vertex_t)


def iter_rank_edge_blocks(
    factor_a: Graph,
    factor_b: Graph,
    partition: PartitionType,
    *,
    a_edges_per_block: int = 1024,
    with_statistics: bool = True,
    stats: Optional[KroneckerTriangleStats] = None,
    gatherer: Optional[TriangleStatsGatherer] = None,
) -> Iterator[RankEdgeBlock]:
    """Stream one rank's slice as bounded, statistics-annotated blocks.

    The fused streaming sibling of :func:`generate_rank_edges`: at most
    ``a_edges_per_block · nnz(B)`` edges exist at a time, and every block's
    triangle payload is evaluated through a single
    :class:`~repro.core.triangle_formulas.TriangleStatsGatherer` — the
    cached-key :class:`~repro.perf.kernels.CsrGatherer` kernels are built
    once per call (or shared via *gatherer*), then reused for every block.
    """
    product = KroneckerGraph(factor_a, factor_b)
    if with_statistics and gatherer is None:
        if stats is None:
            stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
        gatherer = stats.gatherer()
    empty = np.zeros(0, dtype=np.int64)
    for edges in product.iter_rank_edge_blocks(partition,
                                               a_edges_per_block=a_edges_per_block):
        if not with_statistics:
            yield RankEdgeBlock(edges, empty, empty)
            continue
        edge_t = gatherer.edge_values(edges[:, 0], edges[:, 1])
        vertex_t = gatherer.vertex_values(edges[:, 0])
        yield RankEdgeBlock(edges, edge_t, vertex_t)


def _check_payload_columns(payload_columns: Sequence[str], *,
                           with_statistics: bool, with_trussness: bool
                           ) -> Tuple[str, ...]:
    """Validate spill payload columns against the evaluators this run builds.

    The name registry is :data:`repro.store.KNOWN_PAYLOAD_COLUMNS`; the
    streaming pipeline does not re-evaluate columns through a
    ``PayloadEvaluator`` — it reuses the per-block arrays it already computed
    for the aggregates (see :func:`_payload_extras`), so each known name must
    map to a run flag here.
    """
    from repro.store.payloads import KNOWN_PAYLOAD_COLUMNS

    columns = normalize_payload_columns(payload_columns)
    for name in columns:
        if name not in KNOWN_PAYLOAD_COLUMNS:
            raise ValueError(
                f"unknown payload column {name!r}; evaluable columns are "
                f"{list(KNOWN_PAYLOAD_COLUMNS)}")
        if name == "triangles" and not with_statistics:
            raise ValueError("payload column 'triangles' requires "
                             "with_statistics=True")
        if name == "trussness" and not with_trussness:
            raise ValueError("payload column 'trussness' requires "
                             "with_trussness=True")
    return columns


def _payload_extras(block: "RankEdgeBlock", trussness: Optional[np.ndarray],
                    payload_columns: Sequence[str]) -> List[np.ndarray]:
    """The already-evaluated per-block array behind each payload column."""
    sources = {"triangles": block.edge_triangles, "trussness": trussness}
    try:
        return [sources[name] for name in payload_columns]
    except KeyError as exc:  # a KNOWN_PAYLOAD_COLUMNS entry not wired up here
        raise ValueError(
            f"payload column {exc.args[0]!r} has no streaming evaluation; "
            "wire it into repro.parallel.distributed._payload_extras") from exc


def stream_rank_aggregate(
    factor_a: Graph,
    factor_b: Graph,
    partition: PartitionType,
    *,
    a_edges_per_block: int = 1024,
    with_statistics: bool = True,
    stats: Optional[KroneckerTriangleStats] = None,
    gatherer: Optional[TriangleStatsGatherer] = None,
    truss: Optional[KroneckerTrussDecomposition] = None,
    sink: Optional[SinkType] = None,
    payload_columns: Sequence[str] = (),
) -> StreamingRankAccumulator:
    """Fold one rank's streamed blocks into aggregates (and optionally a sink).

    This is the whole per-rank streaming pipeline: generate a block, evaluate
    its exact payloads, fold it into the
    :class:`~repro.parallel.streaming.StreamingRankAccumulator`, spill it to
    *sink* if given, release it, repeat.  The rank never holds more than one
    block and returns only factor-free aggregates.

    With *payload_columns* the spilled blocks are widened to ``(m, 2 + k)``:
    the named per-edge ground-truth values — already evaluated once per block
    for the aggregates, through the single per-pass gatherer — are stacked
    onto the edges before ``sink.write``, so the spill carries exact payloads
    at no extra evaluation cost.  ``"triangles"`` requires
    ``with_statistics``; ``"trussness"`` requires *truss*.
    """
    payload_columns = _check_payload_columns(
        payload_columns, with_statistics=with_statistics,
        with_trussness=truss is not None)
    acc = StreamingRankAccumulator(partition.rank,
                                   with_statistics=with_statistics,
                                   with_trussness=truss is not None)
    write = getattr(sink, "write", sink)
    for block_index, block in enumerate(
        iter_rank_edge_blocks(factor_a, factor_b, partition,
                              a_edges_per_block=a_edges_per_block,
                              with_statistics=with_statistics, stats=stats,
                              gatherer=gatherer)
    ):
        trussness = None
        if truss is not None:
            trussness = truss.edge_trussness_batch(block.edges[:, 0], block.edges[:, 1])
        acc.update(block.edges,
                   block.edge_triangles if with_statistics else None,
                   trussness)
        if write is not None:
            out = block.edges
            if payload_columns:
                extras = _payload_extras(block, trussness, payload_columns)
                out = np.concatenate([out, np.stack(extras, axis=1)], axis=1)
            write(partition.rank, block_index, out)
    return acc


@dataclass(frozen=True)
class StreamingGenerateResult:
    """Outcome of a ``streaming=True`` distributed run.

    Attributes
    ----------
    rank_aggregates:
        One :class:`~repro.parallel.streaming.StreamingRankAccumulator` per
        rank, in rank order.
    total:
        The allreduced (summed) aggregate across all ranks.
    partitions:
        The partition descriptors the run used.
    stats:
        The factored statistics the run built (``None`` when
        ``with_statistics=False``) — pass them to
        :class:`~repro.core.validation.ValidationAccumulator` so validation
        does not rebuild them.
    """

    rank_aggregates: List[StreamingRankAccumulator]
    total: StreamingRankAccumulator
    partitions: List[PartitionType]
    stats: Optional[KroneckerTriangleStats] = None

    @property
    def n_edges(self) -> int:
        """Total directed product edges generated across all ranks."""
        return self.total.n_edges

    @property
    def max_block_edges(self) -> int:
        """Largest single block any rank ever held (the peak-memory bound)."""
        return self.total.max_block_edges


def _build_partitions(factor_a: Graph, factor_b: Graph, n_ranks: int,
                      layout: str) -> List[PartitionType]:
    if layout == "edges":
        return partition_edges(factor_a.nnz, factor_b.nnz, n_ranks)
    if layout == "vertex-blocks":
        row_nnz = np.diff(factor_a.adjacency.indptr)
        return partition_vertex_blocks(row_nnz, factor_b.n_vertices,
                                       factor_b.nnz, n_ranks)
    raise ValueError(f"unknown layout {layout!r}; choose 'edges' or 'vertex-blocks'")


#: Per-worker shared state (factors + statistics + streaming config), shipped
#: once per process via the pool initializer instead of being re-pickled into
#: every task.
_WORKER_STATE: Optional[tuple] = None


def _worker_init(factor_a: Graph, factor_b: Graph, with_statistics: bool,
                 stats: Optional[KroneckerTriangleStats],
                 truss: Optional[KroneckerTrussDecomposition] = None,
                 sink: Optional[SinkType] = None,
                 a_edges_per_block: int = 1024,
                 payload_columns: Tuple[str, ...] = ()) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (factor_a, factor_b, with_statistics, stats,
                     truss, sink, a_edges_per_block, payload_columns)


def _rank_worker(partition: PartitionType) -> RankOutput:
    """Module-level worker (picklable); reads the shared per-process state."""
    factor_a, factor_b, with_statistics, stats = _WORKER_STATE[:4]
    return generate_rank_edges(factor_a, factor_b, partition,
                               with_statistics=with_statistics, stats=stats)


def _stream_worker(partition: PartitionType) -> StreamingRankAccumulator:
    """Module-level streaming worker; folds a rank's blocks in the pool process."""
    (factor_a, factor_b, with_statistics, stats,
     truss, sink, block, payload_columns) = _WORKER_STATE
    return stream_rank_aggregate(factor_a, factor_b, partition,
                                 a_edges_per_block=block,
                                 with_statistics=with_statistics, stats=stats,
                                 truss=truss, sink=sink,
                                 payload_columns=payload_columns)


def distributed_generate(
    factor_a: Graph,
    factor_b: Graph,
    n_ranks: int,
    *,
    with_statistics: bool = True,
    use_processes: bool = False,
    max_workers: Optional[int] = None,
    layout: str = "edges",
    streaming: bool = False,
    a_edges_per_block: Optional[int] = None,
    sink: Optional[SinkType] = None,
    with_trussness: bool = False,
    payload_columns: Sequence[str] = (),
) -> Union[List[RankOutput], StreamingGenerateResult]:
    """Run the communication-free generation over ``n_ranks`` simulated ranks.

    The factored statistics are built exactly once and shared by every rank
    (they are immutable, so sharing is safe in-process and cheap to ship to
    workers).  With ``use_processes=True`` the ranks run concurrently on a
    ``multiprocessing`` pool — the single-node stand-in for the paper's MPI
    ranks; results are returned in rank order either way.

    Parameters
    ----------
    layout:
        ``"edges"`` (contiguous ``A``-entry slices) or ``"vertex-blocks"``
        (contiguous ``A``-row blocks with near-even edge load).  Both layouts
        cover the product exactly once, so they merge to the same graph.
    streaming:
        When set, ranks fold their slice block-by-block instead of
        materializing it, and a :class:`StreamingGenerateResult` of
        aggregates is returned; the per-rank accumulators are sum-reduced
        through :class:`~repro.parallel.comm.SimulatedComm` collectives.
    a_edges_per_block:
        Streamed block granularity: at most ``a_edges_per_block · nnz(B)``
        edges per rank in memory at a time (default 1024).
    sink:
        Optional spill target for streamed blocks — an object with
        ``write(rank, block_index, edges)`` (its ``finalize()`` is invoked by
        the driver once all ranks are done) or a bare callable.  Must be
        picklable under ``use_processes=True``
        (:class:`repro.graphs.io.NpyShardSink` is).
    with_trussness:
        Streamed runs only: additionally evaluate each edge's trussness via
        the Theorem 3 transfer and fold the census into the aggregates.
        Requires the factors to satisfy the theorem's hypotheses
        (``Δ_B ≤ 1``, loop-free).
    payload_columns:
        Streamed runs with a *sink* only: carry the named per-edge
        ground-truth columns (``"triangles"``, ``"trussness"``) in the
        spilled blocks, which become ``(m, 2 + k)`` — construct the sink
        with the matching ``payload_columns`` so its manifest records the
        layout.  Naming ``"trussness"`` implies ``with_trussness=True``.
    """
    payload_columns = normalize_payload_columns(payload_columns)
    if payload_columns:
        if not streaming or sink is None:
            raise ValueError("payload_columns requires streaming=True and a sink "
                             "(payloads are carried in the spilled shards)")
        # The trussness payload needs the Theorem 3 decomposition anyway;
        # folding the census into the aggregates comes for free.
        with_trussness = with_trussness or "trussness" in payload_columns
    partitions = _build_partitions(factor_a, factor_b, n_ranks, layout)
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b) \
        if with_statistics else None

    if not streaming:
        if with_trussness:
            raise ValueError("with_trussness requires streaming=True")
        if sink is not None:
            raise ValueError("sink requires streaming=True")
        if a_edges_per_block is not None:
            raise ValueError("a_edges_per_block requires streaming=True")
        if not use_processes:
            return [
                generate_rank_edges(factor_a, factor_b, part,
                                    with_statistics=with_statistics, stats=stats)
                for part in partitions
            ]
        with ProcessPoolExecutor(
            max_workers=max_workers or min(n_ranks, 8),
            initializer=_worker_init,
            initargs=(factor_a, factor_b, with_statistics, stats),
        ) as pool:
            return list(pool.map(_rank_worker, partitions))

    truss = kron_truss_decomposition(factor_a, factor_b) if with_trussness else None
    block = 1024 if a_edges_per_block is None else int(a_edges_per_block)
    if block < 1:
        raise ValueError(f"a_edges_per_block must be >= 1, got {block}")
    with trace.span("stream.run", n_ranks=n_ranks, layout=layout,
                    use_processes=use_processes):
        if not use_processes:
            # One cached-key gatherer for the whole run — every rank's
            # blocks reuse the same sorted component keys.
            gatherer = stats.gatherer() if stats is not None else None
            rank_aggregates = []
            for part in partitions:
                with trace.span("stream.rank", rank=part.rank) as record:
                    acc = stream_rank_aggregate(
                        factor_a, factor_b, part,
                        a_edges_per_block=block,
                        with_statistics=with_statistics, stats=stats,
                        gatherer=gatherer, truss=truss, sink=sink,
                        payload_columns=payload_columns)
                    if record is not None:
                        record["n_edges"] = acc.n_edges
                        record["n_blocks"] = acc.n_blocks
                rank_aggregates.append(acc)
        else:
            # Pool ranks run in other interpreters; their work is visible
            # only through the enclosing stream.run span.
            with ProcessPoolExecutor(
                max_workers=max_workers or min(n_ranks, 8),
                initializer=_worker_init,
                initargs=(factor_a, factor_b, with_statistics, stats,
                          truss, sink, block, payload_columns),
            ) as pool:
                rank_aggregates = list(pool.map(_stream_worker, partitions))

        comm = SimulatedComm(n_ranks)
        total = None
        for acc in rank_aggregates:
            total = comm.allreduce_sum("streaming-aggregate", acc.rank, acc)
        if total.rank != -1:
            # A size-1 allreduce hands back the contributed object itself;
            # detach a merged copy so total never aliases a per-rank
            # accumulator.
            total = total + StreamingRankAccumulator(-1)
        finalize = getattr(sink, "finalize", None)
        if finalize is not None:
            finalize()
    return StreamingGenerateResult(rank_aggregates=rank_aggregates,
                                   total=total, partitions=partitions, stats=stats)


def merge_rank_outputs(outputs: Sequence[RankOutput], n_vertices: int) -> sp.csr_matrix:
    """Union of all per-rank edge lists as a CSR adjacency matrix.

    Used to verify that the distributed generation reproduces exactly the
    materialized product (no missing, duplicated, or spurious edges).
    """
    if not outputs:
        return sp.csr_matrix((n_vertices, n_vertices), dtype=np.int64)
    all_edges = np.concatenate([out.edges for out in outputs], axis=0)
    data = np.ones(all_edges.shape[0], dtype=np.int64)
    adj = sp.csr_matrix((data, (all_edges[:, 0], all_edges[:, 1])),
                        shape=(n_vertices, n_vertices))
    adj.sum_duplicates()
    return adj
