"""Named per-edge ground-truth payload columns for edge shards.

The paper's central asset is that every generated edge comes with exact
closed-form ground truth; this module is the registry that maps *column
names* to the factored evaluators that produce those values, so the whole
spill→compact→query pipeline can carry them by name:

* ``"triangles"`` — per-edge triangle participation ``Δ_C[p, q]``, evaluated
  through one :class:`~repro.core.triangle_formulas.TriangleStatsGatherer`
  (cached-key CSR gathers, PR 1/PR 2 conventions — no per-edge Python loop);
* ``"trussness"`` — per-edge trussness under the Theorem 3 transfer,
  evaluated through
  :meth:`~repro.core.truss_formulas.KroneckerTrussDecomposition.edge_trussness_batch`
  (requires the theorem's ``Δ_B ≤ 1`` hypothesis).

:class:`PayloadEvaluator` bundles the evaluators for a chosen column tuple
and widens ``(m, 2)`` edge blocks into the ``(m, 2 + k)`` rows the sinks
spill (:class:`repro.graphs.io.NpyShardSink`) and
:class:`repro.store.ShardStore` later serves.  Sinks and the compactor carry
*any* named columns opaquely; only this evaluator layer needs to know how a
column is computed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.triangle_formulas import KroneckerTriangleStats, TriangleStatsGatherer
from repro.core.truss_formulas import KroneckerTrussDecomposition, kron_truss_decomposition
from repro.graphs.adjacency import Graph
from repro.graphs.io import normalize_payload_columns

__all__ = ["KNOWN_PAYLOAD_COLUMNS", "PayloadEvaluator"]

#: Column names this module knows how to evaluate from Kronecker factors.
KNOWN_PAYLOAD_COLUMNS = ("triangles", "trussness")


class PayloadEvaluator:
    """Evaluate a tuple of named ground-truth columns for product edges.

    Build one per generation/spill pass and reuse it for every block — the
    underlying gatherers amortize their ``O(nnz)`` key setup exactly like the
    streaming rank pipeline's single
    :class:`~repro.core.triangle_formulas.TriangleStatsGatherer` per pass.

    Parameters
    ----------
    columns:
        Extra column names, each from :data:`KNOWN_PAYLOAD_COLUMNS` (the
        ``["src", "dst", ...]``-prefixed manifest spelling is accepted too).
    gatherer:
        Triangle-statistics gatherer; required when ``"triangles"`` is named.
    truss:
        Theorem 3 factored truss decomposition; required when
        ``"trussness"`` is named.
    """

    __slots__ = ("columns", "_gatherer", "_truss")

    def __init__(self, columns: Sequence[str], *,
                 gatherer: Optional[TriangleStatsGatherer] = None,
                 truss: Optional[KroneckerTrussDecomposition] = None):
        self.columns: Tuple[str, ...] = normalize_payload_columns(columns)
        unknown = [c for c in self.columns if c not in KNOWN_PAYLOAD_COLUMNS]
        if unknown:
            raise ValueError(
                f"unknown payload columns {unknown}; evaluable columns are "
                f"{list(KNOWN_PAYLOAD_COLUMNS)}")
        if "triangles" in self.columns and gatherer is None:
            raise ValueError("payload column 'triangles' needs a "
                             "TriangleStatsGatherer (see from_factors)")
        if "trussness" in self.columns and truss is None:
            raise ValueError("payload column 'trussness' needs a "
                             "KroneckerTrussDecomposition (see from_factors)")
        self._gatherer = gatherer
        self._truss = truss

    @classmethod
    def from_factors(
        cls,
        factor_a: Graph,
        factor_b: Graph,
        columns: Sequence[str],
        *,
        stats: Optional[KroneckerTriangleStats] = None,
        truss: Optional[KroneckerTrussDecomposition] = None,
    ) -> "PayloadEvaluator":
        """Build the evaluators a column tuple needs from the two factors.

        Pre-built *stats*/*truss* objects are reused when given (a driver
        that already holds them — e.g. for validation — should pass them in
        rather than paying the factorization twice).
        """
        columns = normalize_payload_columns(columns)
        gatherer = None
        if "triangles" in columns:
            if stats is None:
                stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
            gatherer = stats.gatherer()
        if "trussness" in columns and truss is None:
            truss = kron_truss_decomposition(factor_a, factor_b)
        return cls(columns, gatherer=gatherer, truss=truss)

    def evaluate(self, ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
        """``(m, k)`` payload values for the edges ``(ps[t], qs[t])``."""
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        cols = []
        for name in self.columns:
            if name == "triangles":
                cols.append(self._gatherer.edge_values(ps, qs))
            else:
                cols.append(self._truss.edge_trussness_batch(ps, qs))
        if not cols:
            return np.zeros((ps.shape[0], 0), dtype=np.int64)
        return np.stack(cols, axis=1)

    def attach(self, edges: np.ndarray) -> np.ndarray:
        """Widen an ``(m, 2)`` edge block into ``(m, 2 + k)`` payload rows."""
        edges = np.ascontiguousarray(edges, dtype=np.int64)
        if not self.columns:
            return edges
        return np.concatenate([edges, self.evaluate(edges[:, 0], edges[:, 1])],
                              axis=1)

    def __repr__(self) -> str:
        return f"PayloadEvaluator(columns={list(self.columns)})"
