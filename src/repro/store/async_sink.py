"""Async spill sink: overlap block generation with shard writes.

:class:`AsyncShardSink` implements the streaming sink protocol
(``write(rank, block_index, edges)`` + ``finalize()``) in front of a
:class:`repro.graphs.io.NpyShardSink`, but hands the actual ``np.save`` to a
dedicated writer thread fed through a bounded queue.  A streaming rank calls
``write`` and immediately goes back to generating its next block while the
previous one is still being written — generation and disk I/O overlap, which
is the whole point of the sink protocol taking opaque ``(rank, block, edges)``
triples (:func:`repro.parallel.distributed_generate` needs no change:
``distributed_generate(..., streaming=True, sink=AsyncShardSink(dir))``).

Memory stays bounded: at most ``queue_blocks`` blocks wait in the queue (a
full queue back-pressures the producer), so the peak spill footprint is
``(queue_blocks + 1)`` blocks on top of the one block the rank itself holds.
Disk layout and manifest are identical to the synchronous sink — a compaction
or reader cannot tell which sink wrote the spill.

The sink is deliberately **not picklable**: under
``distributed_generate(use_processes=True)`` each worker would get its own
writer thread whose queue could still be draining after the rank function
returns, racing the driver's ``finalize()`` against in-flight files.  Process
pools already overlap I/O with generation across workers — use the plain
:class:`~repro.graphs.io.NpyShardSink` there.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.graphs.io import NpyShardSink
from repro.obs import MetricsRegistry

__all__ = ["AsyncShardSink"]

PathLike = Union[str, Path]

#: Sentinel telling the writer thread to drain and exit.
_STOP = None

#: Bucket bounds (µs) for the sink's write / back-pressure histograms —
#: coarser than the serve-side latency buckets because one np.save of a
#: block is milliseconds, not microseconds.
_SINK_BOUNDS_US = (100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)


class AsyncShardSink:
    """Threaded ``.npy`` shard writer implementing the streaming sink protocol.

    Parameters
    ----------
    directory, name, n_vertices, payload_columns:
        Forwarded to the inner :class:`~repro.graphs.io.NpyShardSink`
        (which claims the directory, clears stale shards, and — with
        *payload_columns* — expects ``(m, 2 + k)`` payload-carrying blocks).
    queue_blocks:
        Bound on blocks waiting to be written; a full queue blocks ``write``
        (back-pressure) so a fast producer cannot buffer the whole product.
    registry:
        :class:`~repro.obs.MetricsRegistry` the sink's write/back-pressure
        histograms and block counter register into (a private one by
        default).  The legacy attributes below are views over it.

    Attributes
    ----------
    blocks_written:
        Blocks the writer thread has flushed to disk.
    writer_busy_s:
        Wall time the writer thread spent inside ``np.save`` — compare with
        the producer's generation time to see the overlap.
    producer_wait_s:
        Wall time ``write`` spent blocked on a full queue (back-pressure).
    """

    def __init__(self, directory: PathLike, *, name: str = "",
                 n_vertices: int = 0, queue_blocks: int = 8,
                 payload_columns: Sequence[str] = (),
                 registry: Optional[MetricsRegistry] = None):
        if queue_blocks < 1:
            raise ValueError(f"queue_blocks must be >= 1, got {queue_blocks}")
        self._inner = NpyShardSink(directory, name=name, n_vertices=n_vertices,
                                   payload_columns=payload_columns)
        self._payload_columns = self._inner.payload_columns
        self.queue_blocks = int(queue_blocks)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_blocks)
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._blocks = self.registry.counter("store.sink_blocks_written")
        self._write_us = self.registry.histogram("store.sink_write_us",
                                                 _SINK_BOUNDS_US, unit="us")
        self._wait_us = self.registry.histogram("store.sink_wait_us",
                                                _SINK_BOUNDS_US, unit="us")

    @property
    def blocks_written(self) -> int:
        return self._blocks.value

    @property
    def writer_busy_s(self) -> float:
        return self._write_us.snapshot()["sum"] / 1e6

    @property
    def producer_wait_s(self) -> float:
        return self._wait_us.snapshot()["sum"] / 1e6

    # -- passthrough state -------------------------------------------------
    @property
    def directory(self) -> Path:
        """Spill directory (same layout as the synchronous sink)."""
        return self._inner.directory

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def n_vertices(self) -> int:
        return self._inner.n_vertices

    @property
    def payload_columns(self):
        """Extra per-edge payload columns the shards carry (may be empty)."""
        return self._payload_columns

    # -- writer thread -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                if self._error is not None:
                    continue  # keep draining so the producer never deadlocks
                rank, block_index, edges = item
                with self._write_us.time():
                    self._inner.write(rank, block_index, edges)
                self._blocks.inc()
            except BaseException as exc:  # surfaced on the producer side
                self._error = exc
            finally:
                self._queue.task_done()

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._worker, name="async-shard-writer", daemon=True)
            self._thread.start()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise RuntimeError("async shard writer failed") from error

    # -- sink protocol -----------------------------------------------------
    def write(self, rank: int, block_index: int, edges: np.ndarray) -> None:
        """Enqueue one edge block for writing and return immediately.

        The block is snapshotted (copied to a contiguous ``int64`` array)
        before it is queued, so a caller that reuses its block buffer stays
        correct.  Blocks when ``queue_blocks`` writes are already pending.
        """
        self._raise_pending()
        snapshot = np.array(edges, dtype=np.int64, order="C", copy=True)
        width = 2 + len(self._payload_columns)
        if snapshot.ndim != 2 or snapshot.shape[1] != width:
            # Fail on the producer side, synchronously — a width mismatch is
            # a caller bug, not a deferred I/O failure.
            raise ValueError(
                f"sink expects (m, {width}) blocks for payload columns "
                f"{list(self._payload_columns)}; got shape {snapshot.shape}")
        self._ensure_thread()
        with self._wait_us.time():
            self._queue.put((int(rank), int(block_index), snapshot))

    def flush(self) -> None:
        """Block until every queued write has hit disk (thread keeps running)."""
        self._queue.join()
        self._raise_pending()

    def finalize(self, metadata: Optional[dict] = None) -> dict:
        """Drain the queue, stop the writer, and write the JSON manifest.

        Safe to call more than once; matching the synchronous sink, the
        manifest is rebuilt from the shard files on disk.
        """
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(_STOP)
            self._thread.join()
        self._thread = None
        self._raise_pending()
        return self._inner.finalize(metadata=metadata)

    # -- pickling is a deliberate error ------------------------------------
    def __getstate__(self):
        raise TypeError(
            "AsyncShardSink cannot be pickled: a per-process writer thread "
            "could still be draining when the driver finalizes the manifest. "
            "Use NpyShardSink with distributed_generate(use_processes=True); "
            "the process pool already overlaps I/O with generation.")

    def __repr__(self) -> str:
        return (f"AsyncShardSink({str(self.directory)!r}, "
                f"queue_blocks={self.queue_blocks}, "
                f"blocks_written={self.blocks_written})")
