"""Out-of-core shard store: compaction, manifest v2, and range queries.

The storage subsystem behind the paper's never-materialize-``C`` scaling
story.  The streaming pipeline (:mod:`repro.parallel`) spills the product
edge list as write-optimized per-block ``.npy`` shards; this package turns
that spill into a *servable* edge store:

* :func:`compact_shards` — bounded-memory external merge sort of the
  per-block shards into source-sorted, size-targeted shards, recorded in a
  **manifest v2** with per-shard ``[src_min, src_max]`` vertex ranges;
* :func:`partition_manifest` — cut a compacted manifest into per-worker
  vertex-range slice manifests (no shard rewrites; slices reference the
  existing ``.npy`` files) for the range-routed serving fleet
  (:mod:`repro.serve.router`);
* :class:`ShardStore` — range-query layer answering ``degree`` /
  ``neighbors`` / ``edges_in_range`` / ``egonet`` by binary-searching the
  manifest ranges, with an LRU of decoded shards and batch-first entry
  points per the repo's vectorization conventions;
* :class:`AsyncShardSink` — drop-in streaming sink whose writer thread
  overlaps shard I/O with block generation
  (``distributed_generate(streaming=True, sink=AsyncShardSink(dir))``);
* :class:`PayloadEvaluator` — named per-edge ground-truth columns
  (``"triangles"``, ``"trussness"``) that ride along in the shards as
  ``(m, 2 + k)`` rows and are served back by :class:`ShardStore`
  (``with_payload=True`` / ``edge_payloads``), exactly equal to the
  closed-form factor statistics.
"""

from repro.store.async_sink import AsyncShardSink
from repro.store.compaction import MANIFEST_V2, compact_shards
from repro.store.partition import partition_manifest
from repro.store.payloads import KNOWN_PAYLOAD_COLUMNS, PayloadEvaluator
from repro.store.query import ShardStore, StoreQueryMixin

__all__ = [
    "AsyncShardSink",
    "KNOWN_PAYLOAD_COLUMNS",
    "PayloadEvaluator",
    "ShardStore",
    "StoreQueryMixin",
    "compact_shards",
    "partition_manifest",
    "MANIFEST_V2",
]
